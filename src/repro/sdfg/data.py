"""Data descriptors: the SDFG's containers (paper §3.1).

A descriptor describes *what a container is* (element type, shape,
strides, storage location, transience); :class:`~repro.sdfg.nodes.AccessNode`
instances in states reference descriptors by name.  Two container kinds
exist: ``Array`` (a location in memory mapped to a multi-dimensional
array) and ``Stream`` (multi-dimensional arrays of concurrent queues with
push/pop semantics).  ``Scalar`` is a zero-dimensional convenience.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence, Tuple

from repro.sdfg.dtypes import StorageType, typeclass
from repro.symbolic import Expr, Integer, Mul, Subset, sympify


class Data:
    """Base class for container descriptors."""

    def __init__(
        self,
        dtype: typeclass,
        shape: Sequence,
        transient: bool = False,
        storage: StorageType = StorageType.Default,
    ):
        if not isinstance(dtype, typeclass):
            dtype = typeclass(dtype)
        self.dtype = dtype
        self.shape: Tuple[Expr, ...] = tuple(sympify(s) for s in shape)
        self.transient = transient
        self.storage = storage

    @property
    def dims(self) -> int:
        return len(self.shape)

    def total_size(self) -> Expr:
        out: Expr = Integer(1)
        for s in self.shape:
            out = Mul.make(out, s)
        return out

    def size_bytes(self) -> Expr:
        return Mul.make(self.total_size(), Integer(self.dtype.bytes))

    def full_subset(self) -> Subset:
        return Subset.from_array(self.shape)

    @property
    def free_symbols(self) -> frozenset:
        out: frozenset = frozenset()
        for s in self.shape:
            out |= s.free_symbols
        return out

    def clone(self) -> "Data":
        raise NotImplementedError

    def validate(self) -> None:
        if any(isinstance(s, Integer) and s.value <= 0 for s in self.shape):
            raise ValueError(f"descriptor has non-positive dimension: {self.shape}")

    def __repr__(self) -> str:
        t = ", transient" if self.transient else ""
        shape = "x".join(str(s) for s in self.shape)
        return f"{type(self).__name__}({self.dtype}, [{shape}]{t})"


class Array(Data):
    """N-dimensional array container.

    ``strides`` are element strides (row-major by default); ``lifetime``
    of transients is scoped to one SDFG invocation.  ``alignment`` and
    ``start_offset`` exist for vectorization-related layouts.
    """

    def __init__(
        self,
        dtype: typeclass,
        shape: Sequence,
        transient: bool = False,
        storage: StorageType = StorageType.Default,
        strides: Optional[Sequence] = None,
        alignment: int = 0,
    ):
        super().__init__(dtype, shape, transient, storage)
        if strides is not None:
            self.strides: Tuple[Expr, ...] = tuple(sympify(s) for s in strides)
        else:
            self.strides = self.default_strides(self.shape)
        self.alignment = alignment

    @staticmethod
    def default_strides(shape: Sequence[Expr]) -> Tuple[Expr, ...]:
        """C-order (row-major) strides in elements."""
        out: List[Expr] = []
        acc: Expr = Integer(1)
        for dim in reversed(shape):
            out.append(acc)
            acc = Mul.make(acc, dim)
        return tuple(reversed(out))

    def clone(self) -> "Array":
        return Array(
            self.dtype,
            self.shape,
            self.transient,
            self.storage,
            self.strides,
            self.alignment,
        )

    def validate(self) -> None:
        super().validate()
        if len(self.strides) != len(self.shape):
            raise ValueError(
                f"strides rank {len(self.strides)} != shape rank {len(self.shape)}"
            )


class Scalar(Data):
    """Zero-dimensional container (a single element)."""

    def __init__(
        self,
        dtype: typeclass,
        transient: bool = False,
        storage: StorageType = StorageType.Default,
    ):
        super().__init__(dtype, (1,), transient, storage)

    @property
    def dims(self) -> int:
        return 1

    def clone(self) -> "Scalar":
        return Scalar(self.dtype, self.transient, self.storage)


class Stream(Data):
    """Multi-dimensional array of concurrent FIFO queues (paper §3.1).

    ``buffer_size`` bounds each queue's capacity (0 = unbounded in
    software, synthesized depth on FPGA where Streams instantiate FIFO
    interfaces between hardware modules).
    """

    def __init__(
        self,
        dtype: typeclass,
        shape: Sequence = (1,),
        buffer_size: int = 0,
        transient: bool = False,
        storage: StorageType = StorageType.Default,
    ):
        super().__init__(dtype, shape, transient, storage)
        self.buffer_size = sympify(buffer_size)

    def clone(self) -> "Stream":
        return Stream(
            self.dtype, self.shape, self.buffer_size, self.transient, self.storage
        )
