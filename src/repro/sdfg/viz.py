"""Visualization: GraphViz export and textual summaries.

The paper's DIODE IDE renders SDFGs interactively; in this reproduction
the same inspection needs — seeing containers, scopes, memlet volumes,
and state machines — are served by ``sdfg.to_dot()`` (render with any
GraphViz) and ``sdfg.summary()`` (plain text, used in tests and docs).
"""

from __future__ import annotations

from typing import Dict, List

from repro.sdfg.nodes import (
    AccessNode,
    ConsumeEntry,
    ConsumeExit,
    MapEntry,
    MapExit,
    NestedSDFG,
    Reduce,
    Tasklet,
)


def _dot_escape(s: str) -> str:
    return s.replace("\\", "\\\\").replace('"', '\\"')


_NODE_STYLE = {
    AccessNode: ("ellipse", "lightyellow"),
    Tasklet: ("octagon", "white"),
    MapEntry: ("trapezium", "lightblue"),
    MapExit: ("invtrapezium", "lightblue"),
    ConsumeEntry: ("trapezium", "lightpink"),
    ConsumeExit: ("invtrapezium", "lightpink"),
    Reduce: ("invtriangle", "lightgreen"),
    NestedSDFG: ("doubleoctagon", "lightgrey"),
}


def sdfg_to_dot(sdfg) -> str:
    """Render the SDFG as a GraphViz digraph with one cluster per state."""
    lines: List[str] = [f'digraph "{_dot_escape(sdfg.name)}" {{', "  compound=true;"]
    state_anchor: Dict[int, str] = {}
    for si, state in enumerate(sdfg.nodes()):
        lines.append(f"  subgraph cluster_{si} {{")
        lines.append(f'    label="{_dot_escape(state.name)}";')
        ids = {id(n): f"s{si}_n{i}" for i, n in enumerate(state.nodes())}
        for n in state.nodes():
            shape, fill = "box", "white"
            for cls, (sh, fl) in _NODE_STYLE.items():
                if isinstance(n, cls):
                    shape, fill = sh, fl
                    break
            trans = ""
            if isinstance(n, AccessNode) and n.data in sdfg.arrays:
                if sdfg.arrays[n.data].transient:
                    trans = ' style="dashed,filled"'
                else:
                    trans = ' style="filled"'
            else:
                trans = ' style="filled"'
            lines.append(
                f'    {ids[id(n)]} [label="{_dot_escape(n.label)}" '
                f'shape={shape} fillcolor={fill}{trans}];'
            )
        if not state.nodes():
            anchor = f"s{si}_empty"
            lines.append(f'    {anchor} [label="" shape=point];')
            state_anchor[id(state)] = anchor
        else:
            state_anchor[id(state)] = ids[id(state.nodes()[0])]
        for e in state.edges():
            label = "" if e.data.is_empty() else str(e.data)[len("Memlet(") : -1]
            style = ' style="dashed"' if e.data.wcr else ""
            lines.append(
                f'    {ids[id(e.src)]} -> {ids[id(e.dst)]} '
                f'[label="{_dot_escape(label)}"{style}];'
            )
        lines.append("  }")
    states = sdfg.nodes()
    sidx = {id(s): i for i, s in enumerate(states)}
    for e in sdfg.edges():
        label = repr(e.data)[len("InterstateEdge(") : -1]
        lines.append(
            f"  {state_anchor[id(e.src)]} -> {state_anchor[id(e.dst)]} "
            f'[label="{_dot_escape(label)}" ltail=cluster_{sidx[id(e.src)]} '
            f"lhead=cluster_{sidx[id(e.dst)]} penwidth=2];"
        )
    lines.append("}")
    return "\n".join(lines)


def sdfg_summary(sdfg) -> str:
    """Human-readable structural summary of an SDFG."""
    lines: List[str] = [f"SDFG {sdfg.name}"]
    if sdfg.symbols:
        lines.append("  symbols: " + ", ".join(sorted(sdfg.symbols)))
    for name, desc in sdfg.arrays.items():
        lines.append(f"  {name}: {desc!r}")
    for state in sdfg.nodes():
        star = "*" if state is sdfg.start_state else " "
        lines.append(
            f" {star}state {state.name} "
            f"({state.number_of_nodes()} nodes, {state.number_of_edges()} edges)"
        )
        sd = state.scope_dict()
        for node in state.nodes():
            depth = 0
            anc = sd.get(node)
            while anc is not None:
                depth += 1
                anc = sd.get(anc)
            lines.append("    " + "  " * depth + node.label)
    for e in sdfg.edges():
        lines.append(f"  {e.src.name} -> {e.dst.name}: {e.data!r}")
    return "\n".join(lines)
