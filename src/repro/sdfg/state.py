"""SDFG states: named acyclic dataflow multigraphs (paper §3, App. A.1).

A state's nodes are containers and computation; its edges carry memlets.
Execution order within a state is constrained only by dataflow.  This
module provides the builder API used by frontends and transformations
(`add_tasklet`, `add_map`, `add_memlet_path`, `add_mapped_tasklet`, ...)
and the structural queries the rest of the system relies on
(`scope_dict`, `memlet_path`, `scope_subgraph`).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple, Union

from repro.graph import Edge, OrderedMultiDiGraph, topological_sort
from repro.instrumentation.types import InstrumentationType
from repro.sdfg.dtypes import Language, ScheduleType
from repro.sdfg.memlet import Memlet
from repro.sdfg.nodes import (
    AccessNode,
    Consume,
    ConsumeEntry,
    ConsumeExit,
    EntryNode,
    ExitNode,
    Map,
    MapEntry,
    MapExit,
    NestedSDFG,
    Node,
    Reduce,
    Tasklet,
)
from repro.symbolic import Subset


class SDFGState(OrderedMultiDiGraph[Node, Memlet]):
    """One state of an SDFG: an acyclic multigraph of dataflow."""

    def __init__(self, name: str, sdfg=None):
        super().__init__()
        self.name = name
        self.sdfg = sdfg
        #: Instrumentation attached to this state (timed per execution).
        self.instrument = InstrumentationType.NONE

    # ------------------------------------------------------------------ builders
    def add_access(self, data: str) -> AccessNode:
        node = AccessNode(data)
        self.add_node(node)
        return node

    # Reads and writes are both plain access nodes; separate helpers keep
    # call sites self-documenting and allow reuse of an existing node.
    add_read = add_access
    add_write = add_access

    def add_tasklet(
        self,
        name: str,
        inputs: Iterable[str],
        outputs: Iterable[str],
        code: str,
        language: Language = Language.Python,
        code_global: str = "",
    ) -> Tasklet:
        t = Tasklet(name, tuple(inputs), tuple(outputs), code, language, code_global)
        self.add_node(t)
        return t

    def add_map(
        self,
        name: str,
        ndrange: Union[Mapping[str, Union[str, object]], str],
        schedule: ScheduleType = ScheduleType.Default,
        unroll: bool = False,
    ) -> Tuple[MapEntry, MapExit]:
        """Create a Map scope.  ``ndrange`` maps parameter names to range
        strings (``{"i": "0:N", "j": "0:M"}``)."""
        if isinstance(ndrange, str):
            raise TypeError("ndrange must be a mapping of param -> range string")
        params = list(ndrange.keys())
        rng = Subset.from_string(", ".join(str(v) for v in ndrange.values()))
        m = Map(name, params, rng, schedule, unroll)
        entry, exit_ = MapEntry(m), MapExit(m)
        self.add_node(entry)
        self.add_node(exit_)
        return entry, exit_

    def add_consume(
        self,
        name: str,
        pe_tuple: Tuple[str, Union[int, str]],
        condition: Optional[str] = None,
        schedule: ScheduleType = ScheduleType.Default,
    ) -> Tuple[ConsumeEntry, ConsumeExit]:
        param, num_pes = pe_tuple
        c = Consume(name, param, num_pes, condition, schedule)
        entry, exit_ = ConsumeEntry(c), ConsumeExit(c)
        self.add_node(entry)
        self.add_node(exit_)
        return entry, exit_

    def add_reduce(
        self,
        wcr: str,
        axes: Optional[Sequence[int]] = None,
        identity=None,
        label: str = "reduce",
    ) -> Reduce:
        r = Reduce(wcr, axes, identity, label)
        self.add_node(r)
        return r

    def add_nested_sdfg(
        self,
        sdfg,
        inputs: Iterable[str],
        outputs: Iterable[str],
        symbol_mapping: Optional[Mapping] = None,
        name: Optional[str] = None,
    ) -> NestedSDFG:
        node = NestedSDFG(
            name or sdfg.name, sdfg, tuple(inputs), tuple(outputs), symbol_mapping
        )
        sdfg.parent = self
        self.add_node(node)
        return node

    def add_memlet_edge(
        self,
        src: Node,
        src_conn: Optional[str],
        dst: Node,
        dst_conn: Optional[str],
        memlet: Memlet,
    ) -> Edge:
        """Add a single dataflow edge, registering scope connectors."""
        if src_conn is not None and isinstance(src, (EntryNode, ExitNode, Reduce)):
            src.add_out_connector(src_conn)
        if dst_conn is not None and isinstance(dst, (EntryNode, ExitNode, Reduce)):
            dst.add_in_connector(dst_conn)
        return self.add_edge(src, dst, memlet, src_conn, dst_conn)

    def add_nedge(self, src: Node, dst: Node, memlet: Optional[Memlet] = None) -> Edge:
        """Connector-less edge (e.g. empty-memlet ordering dependencies)."""
        return self.add_edge(src, dst, memlet or Memlet.empty(), None, None)

    def add_memlet_path(
        self,
        *path_nodes: Node,
        memlet: Memlet,
        src_conn: Optional[str] = None,
        dst_conn: Optional[str] = None,
    ) -> List[Edge]:
        """Connect ``path_nodes`` with a chain of edges carrying ``memlet``.

        Scope nodes along the path automatically receive fresh paired
        ``IN_k``/``OUT_k`` connectors so the memlet is relayed across
        scope boundaries; outer segments are later tightened by memlet
        propagation.
        """
        if len(path_nodes) < 2:
            raise ValueError("memlet path needs at least two nodes")
        edges: List[Edge] = []
        # Connector to leave each intermediate scope node through.
        pending_out_conn: Optional[str] = None
        for i in range(len(path_nodes) - 1):
            s, d = path_nodes[i], path_nodes[i + 1]
            sc: Optional[str] = None
            dc: Optional[str] = None
            if i == 0:
                sc = src_conn
            elif isinstance(s, (EntryNode, ExitNode)):
                sc = pending_out_conn
                if sc is not None:
                    s.add_out_connector(sc)
            if i == len(path_nodes) - 2:
                dc = dst_conn
                if isinstance(d, (EntryNode, ExitNode)) and dc is None:
                    # Terminating at a scope node: allocate a fresh pair so a
                    # later path segment can continue from OUT_k.
                    inc = d.next_in_connector()
                    d.add_in_connector(inc)
                    dc = inc
            if isinstance(d, (EntryNode, ExitNode)) and i < len(path_nodes) - 2:
                inc = d.next_in_connector()
                d.add_in_connector(inc)
                dc = inc
                pending_out_conn = "OUT_" + inc[len("IN_") :]
            edges.append(self.add_edge(s, d, memlet.clone(), sc, dc))
        return edges

    def add_mapped_tasklet(
        self,
        name: str,
        map_ranges: Mapping[str, str],
        inputs: Mapping[str, Memlet],
        code: str,
        outputs: Mapping[str, Memlet],
        schedule: ScheduleType = ScheduleType.Default,
        external_edges: bool = True,
        input_nodes: Optional[Mapping[str, AccessNode]] = None,
        output_nodes: Optional[Mapping[str, AccessNode]] = None,
        language: Language = Language.Python,
    ) -> Tuple[Tasklet, MapEntry, MapExit]:
        """One-call construction of the ubiquitous map-over-tasklet motif."""
        entry, exit_ = self.add_map(name, map_ranges, schedule)
        tasklet = self.add_tasklet(name, inputs.keys(), outputs.keys(), code, language)
        input_nodes = dict(input_nodes or {})
        output_nodes = dict(output_nodes or {})

        if not inputs:
            self.add_nedge(entry, tasklet)
        for conn, mem in inputs.items():
            if external_edges:
                src = input_nodes.get(mem.data) or self.add_read(mem.data)
                input_nodes.setdefault(mem.data, src)
                self.add_memlet_path(src, entry, tasklet, memlet=mem, dst_conn=conn)
            else:
                self.add_memlet_path(entry, tasklet, memlet=mem, dst_conn=conn)
        if not outputs:
            self.add_nedge(tasklet, exit_)
        for conn, mem in outputs.items():
            if external_edges:
                dst = output_nodes.get(mem.data) or self.add_write(mem.data)
                output_nodes.setdefault(mem.data, dst)
                self.add_memlet_path(tasklet, exit_, dst, memlet=mem, src_conn=conn)
            else:
                self.add_memlet_path(tasklet, exit_, memlet=mem, src_conn=conn)
        return tasklet, entry, exit_

    # ------------------------------------------------------------------- queries
    def data_nodes(self) -> List[AccessNode]:
        return [n for n in self.nodes() if isinstance(n, AccessNode)]

    def entry_nodes(self) -> List[EntryNode]:
        return [n for n in self.nodes() if isinstance(n, EntryNode)]

    def exit_node(self, entry: EntryNode) -> ExitNode:
        """The unique exit node closing ``entry``'s scope."""
        key = entry.map if isinstance(entry, MapEntry) else entry.consume
        for n in self.nodes():
            if isinstance(n, ExitNode):
                nkey = n.map if isinstance(n, MapExit) else n.consume
                if nkey is key:
                    return n
        raise KeyError(f"no exit node for {entry!r}")

    def entry_node_of(self, exit_: ExitNode) -> EntryNode:
        key = exit_.map if isinstance(exit_, MapExit) else exit_.consume
        for n in self.nodes():
            if isinstance(n, EntryNode):
                nkey = n.map if isinstance(n, MapEntry) else n.consume
                if nkey is key:
                    return n
        raise KeyError(f"no entry node for {exit_!r}")

    def scope_dict(self) -> Dict[Node, Optional[EntryNode]]:
        """Map each node to its innermost enclosing scope entry (or None).

        Scope membership follows the paper's definition: the subgraph
        dominated by the entry and post-dominated by the exit.  Exit
        nodes belong to their own scope (scope_dict[exit] = entry).
        """
        scope: Dict[Node, Optional[EntryNode]] = {}
        for node in topological_sort(self):
            in_edges = self.in_edges(node)
            if not in_edges:
                scope.setdefault(node, None)
                continue
            parents = set()
            for e in in_edges:
                src = e.src
                if isinstance(src, EntryNode):
                    if isinstance(node, ExitNode) and self._matching(src, node):
                        parents.add(scope.get(src))
                    else:
                        parents.add(src)
                elif isinstance(src, ExitNode):
                    entry = self.entry_node_of(src)
                    parents.add(scope.get(entry))
                else:
                    parents.add(scope.get(src))
            if len(parents) > 1:
                raise ValueError(
                    f"node {node!r} has inconsistent scopes: {parents}"
                )
            scope[node] = parents.pop() if parents else None
        return scope

    @staticmethod
    def _matching(entry: EntryNode, exit_: ExitNode) -> bool:
        ek = entry.map if isinstance(entry, MapEntry) else entry.consume
        xk = exit_.map if isinstance(exit_, MapExit) else exit_.consume
        return ek is xk

    def scope_children(self) -> Dict[Optional[EntryNode], List[Node]]:
        """Inverse of :meth:`scope_dict`: entry -> nodes directly inside."""
        out: Dict[Optional[EntryNode], List[Node]] = {None: []}
        sd = self.scope_dict()
        for node in self.nodes():
            out.setdefault(sd.get(node), []).append(node)
        for entry in self.entry_nodes():
            out.setdefault(entry, [])
        return out

    def scope_subgraph(
        self, entry: EntryNode, include_scope_nodes: bool = True
    ) -> List[Node]:
        """All nodes in ``entry``'s scope, nested scopes included."""
        sd = self.scope_dict()
        result: List[Node] = []
        for node in self.nodes():
            anc = sd.get(node)
            while anc is not None:
                if anc is entry:
                    result.append(node)
                    break
                anc = sd.get(anc)
        if include_scope_nodes:
            return [entry] + result
        exit_ = self.exit_node(entry)
        return [n for n in result if n is not exit_]

    def memlet_path(self, edge: Edge) -> List[Edge]:
        """The full relay chain of ``edge`` through scope connectors.

        Walks backward over ``OUT_k -> IN_k`` pairs to the originating
        node and forward to the final consumer.  Raises on ambiguous
        fan-out (use the per-branch edges directly in that case).
        """
        chain: List[Edge] = [edge]
        # Backward.
        cur = edge
        while isinstance(cur.src, (EntryNode, ExitNode)) and cur.src_conn:
            if not cur.src_conn.startswith("OUT_"):
                break
            in_conn = "IN_" + cur.src_conn[len("OUT_") :]
            cands = [e for e in self.in_edges(cur.src) if e.dst_conn == in_conn]
            if not cands:
                break
            cur = cands[0]
            chain.insert(0, cur)
        # Forward.
        cur = edge
        while isinstance(cur.dst, (EntryNode, ExitNode)) and cur.dst_conn:
            if not cur.dst_conn.startswith("IN_"):
                break
            out_conn = "OUT_" + cur.dst_conn[len("IN_") :]
            cands = [e for e in self.out_edges(cur.dst) if e.src_conn == out_conn]
            if not cands:
                break
            if len(cands) > 1:
                raise ValueError(
                    f"memlet path of {edge!r} fans out at {cur.dst!r}; "
                    "treat branches individually"
                )
            cur = cands[0]
            chain.append(cur)
        return chain

    def in_edges_by_connector(self, node: Node, conn: str) -> List[Edge]:
        return [e for e in self.in_edges(node) if e.dst_conn == conn]

    def out_edges_by_connector(self, node: Node, conn: str) -> List[Edge]:
        return [e for e in self.out_edges(node) if e.src_conn == conn]

    def degree_report(self) -> str:
        return (
            f"state {self.name}: {self.number_of_nodes()} nodes, "
            f"{self.number_of_edges()} edges"
        )

    def __repr__(self) -> str:
        return f"SDFGState({self.name!r})"
