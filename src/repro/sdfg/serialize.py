"""JSON (de)serialization of SDFGs.

Serialized SDFGs are what DIODE-style tooling exchanges and what
"optimization version control" snapshots; the format is a plain
dictionary so it can be stored, diffed, and inspected.

A *canonical* form (``sdfg_to_json(sdfg, canonical=True)``) additionally
fixes every source of incidental order — edges sorted by endpoint
indices and connectors, transitions sorted, dictionary keys sorted at
dump time — and omits the transformation history, so that two SDFGs
with identical structure serialize to identical bytes.  That form backs
:func:`content_hash`, the content address used by the tuning cache.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List

from repro.instrumentation.types import InstrumentationType
from repro.sdfg import dtypes
from repro.sdfg.data import Array, Data, Scalar, Stream
from repro.sdfg.dtypes import Language, ScheduleType, StorageType, dtype_from_name
from repro.sdfg.memlet import Memlet
from repro.sdfg.nodes import (
    AccessNode,
    Consume,
    ConsumeEntry,
    ConsumeExit,
    Map,
    MapEntry,
    MapExit,
    NestedSDFG,
    Node,
    Reduce,
    Tasklet,
)
from repro.sdfg.state import SDFGState
from repro.symbolic import Subset


def _instrument_from_json(obj: Dict[str, Any]) -> InstrumentationType:
    return InstrumentationType[obj.get("instrument", "NONE")]


def _subset_to_json(s):
    return str(s) if s is not None else None


def _subset_from_json(s):
    return Subset.from_string(s) if s is not None else None


def memlet_to_json(m: Memlet) -> Dict[str, Any]:
    return {
        "data": m.data,
        "subset": _subset_to_json(m.subset),
        "other_subset": _subset_to_json(m.other_subset),
        "volume": str(m._volume) if m._volume is not None else None,
        "dynamic": m.dynamic,
        "wcr": m.wcr,
    }


def memlet_from_json(obj: Dict[str, Any]) -> Memlet:
    return Memlet(
        data=obj["data"],
        subset=_subset_from_json(obj["subset"]),
        other_subset=_subset_from_json(obj["other_subset"]),
        volume=obj["volume"],
        dynamic=obj["dynamic"],
        wcr=obj["wcr"],
    )


def data_to_json(desc: Data) -> Dict[str, Any]:
    out: Dict[str, Any] = {
        "type": type(desc).__name__,
        "dtype": desc.dtype.name,
        "shape": [str(s) for s in desc.shape],
        "transient": desc.transient,
        "storage": desc.storage.name,
    }
    if isinstance(desc, Array):
        out["strides"] = [str(s) for s in desc.strides]
    if isinstance(desc, Stream):
        out["buffer_size"] = str(desc.buffer_size)
    return out


def data_from_json(obj: Dict[str, Any]) -> Data:
    dtype = dtype_from_name(obj["dtype"])
    storage = StorageType[obj["storage"]]
    kind = obj["type"]
    if kind == "Array":
        return Array(dtype, obj["shape"], obj["transient"], storage, obj.get("strides"))
    if kind == "Scalar":
        return Scalar(dtype, obj["transient"], storage)
    if kind == "Stream":
        return Stream(
            dtype, obj["shape"], int(obj.get("buffer_size", "0")), obj["transient"], storage
        )
    raise ValueError(f"unknown descriptor type {kind!r}")


def node_to_json(node: Node, canonical: bool = False) -> Dict[str, Any]:
    base = {
        "in_connectors": sorted(node.in_connectors),
        "out_connectors": sorted(node.out_connectors),
    }
    if isinstance(node, AccessNode):
        return {"type": "AccessNode", "data": node.data, **base}
    if isinstance(node, Tasklet):
        return {
            "type": "Tasklet",
            "name": node.name,
            "code": node.code,
            "language": node.language.name,
            "code_global": node.code_global,
            "instrument": node.instrument.name,
            **base,
        }
    if isinstance(node, (MapEntry, MapExit)):
        return {
            "type": type(node).__name__,
            "label": node.map.label,
            "params": node.map.params,
            "range": str(node.map.range),
            "schedule": node.map.schedule.name,
            "unroll": node.map.unroll,
            "vectorized": node.map.vectorized,
            "instrument": node.map.instrument.name,
            **base,
        }
    if isinstance(node, (ConsumeEntry, ConsumeExit)):
        return {
            "type": type(node).__name__,
            "label": node.consume.label,
            "pe_param": node.consume.pe_param,
            "num_pes": str(node.consume.num_pes),
            "condition": node.consume.condition,
            "schedule": node.consume.schedule.name,
            "instrument": node.consume.instrument.name,
            **base,
        }
    if isinstance(node, Reduce):
        return {
            "type": "Reduce",
            "name": node.name,
            "wcr": node.wcr,
            "axes": list(node.axes) if node.axes is not None else None,
            "identity": node.identity,
            **base,
        }
    if isinstance(node, NestedSDFG):
        return {
            "type": "NestedSDFG",
            "name": node.name,
            "sdfg": sdfg_to_json(node.sdfg, canonical),
            "symbol_mapping": {k: str(v) for k, v in node.symbol_mapping.items()},
            **base,
        }
    raise ValueError(f"cannot serialize node {node!r}")


def _restore_connectors(node: Node, obj: Dict[str, Any]) -> Node:
    node.in_connectors = set(obj.get("in_connectors", ()))
    node.out_connectors = set(obj.get("out_connectors", ()))
    return node


def node_from_json(obj: Dict[str, Any], scope_cache: Dict[str, Any]) -> Node:
    kind = obj["type"]
    if kind == "AccessNode":
        return _restore_connectors(AccessNode(obj["data"]), obj)
    if kind == "Tasklet":
        t = Tasklet(
            obj["name"],
            code=obj["code"],
            language=Language[obj["language"]],
            code_global=obj.get("code_global", ""),
        )
        t.instrument = _instrument_from_json(obj)
        return _restore_connectors(t, obj)
    if kind in ("MapEntry", "MapExit"):
        # Entry/exit pairs must share one Map object; key on label+range.
        key = ("map", obj["label"], obj["range"], tuple(obj["params"]))
        if key not in scope_cache:
            scope_cache[key] = Map(
                obj["label"],
                obj["params"],
                obj["range"],
                ScheduleType[obj["schedule"]],
                obj.get("unroll", False),
                obj.get("vectorized", False),
            )
            scope_cache[key].instrument = _instrument_from_json(obj)
        cls = MapEntry if kind == "MapEntry" else MapExit
        return _restore_connectors(cls(scope_cache[key]), obj)
    if kind in ("ConsumeEntry", "ConsumeExit"):
        key = ("consume", obj["label"], obj["num_pes"])
        if key not in scope_cache:
            scope_cache[key] = Consume(
                obj["label"],
                obj["pe_param"],
                obj["num_pes"],
                obj.get("condition"),
                ScheduleType[obj["schedule"]],
            )
            scope_cache[key].instrument = _instrument_from_json(obj)
        cls = ConsumeEntry if kind == "ConsumeEntry" else ConsumeExit
        return _restore_connectors(cls(scope_cache[key]), obj)
    if kind == "Reduce":
        axes = obj["axes"]
        return _restore_connectors(
            Reduce(obj["wcr"], axes, obj.get("identity"), obj["name"]), obj
        )
    if kind == "NestedSDFG":
        inner = sdfg_from_json(obj["sdfg"])
        node = NestedSDFG(
            obj["name"],
            inner,
            obj.get("in_connectors", ()),
            obj.get("out_connectors", ()),
            obj.get("symbol_mapping", {}),
        )
        return _restore_connectors(node, obj)
    raise ValueError(f"unknown node type {kind!r}")


def state_to_json(state: SDFGState, canonical: bool = False) -> Dict[str, Any]:
    nodes = state.nodes()
    index = {id(n): i for i, n in enumerate(nodes)}
    edges = [
        {
            "src": index[id(e.src)],
            "dst": index[id(e.dst)],
            "src_conn": e.src_conn,
            "dst_conn": e.dst_conn,
            "memlet": memlet_to_json(e.data),
        }
        for e in state.edges()
    ]
    if canonical:
        edges.sort(
            key=lambda e: (
                e["src"],
                e["dst"],
                e["src_conn"] or "",
                e["dst_conn"] or "",
                json.dumps(e["memlet"], sort_keys=True),
            )
        )
    return {
        "name": state.name,
        "instrument": state.instrument.name,
        "nodes": [node_to_json(n, canonical) for n in nodes],
        "edges": edges,
    }


def state_from_json(obj: Dict[str, Any], sdfg) -> SDFGState:
    state = SDFGState(obj["name"], sdfg)
    state.instrument = _instrument_from_json(obj)
    scope_cache: Dict[str, Any] = {}
    nodes = [node_from_json(n, scope_cache) for n in obj["nodes"]]
    for n in nodes:
        state.add_node(n)
    for e in obj["edges"]:
        state.add_edge(
            nodes[e["src"]],
            nodes[e["dst"]],
            memlet_from_json(e["memlet"]),
            e["src_conn"],
            e["dst_conn"],
        )
    return state


def sdfg_to_json(sdfg, canonical: bool = False) -> Dict[str, Any]:
    """Serialize an SDFG to a plain dictionary.

    With ``canonical=True`` the result is order-normalized for content
    hashing: state edges and interstate transitions are sorted, and the
    (semantically irrelevant) transformation history is omitted, so two
    structurally identical SDFGs produce identical canonical dumps.
    """
    states = sdfg.nodes()
    index = {id(s): i for i, s in enumerate(states)}
    transitions = [
        {
            "src": index[id(e.src)],
            "dst": index[id(e.dst)],
            "condition": str(e.data.condition),
            "assignments": {k: str(v) for k, v in e.data.assignments.items()},
        }
        for e in sdfg.edges()
    ]
    if canonical:
        transitions.sort(key=lambda t: (t["src"], t["dst"], t["condition"]))
    out = {
        "name": sdfg.name,
        "instrument": sdfg.instrument.name,
        "arrays": {name: data_to_json(d) for name, d in sdfg.arrays.items()},
        "symbols": {name: t.name for name, t in sdfg.symbols.items()},
        "constants": dict(sdfg.constants),
        "start_state": (
            index[id(sdfg.start_state)] if sdfg.start_state is not None else None
        ),
        "states": [state_to_json(s, canonical) for s in states],
        "transitions": transitions,
    }
    if not canonical:
        out["transformation_history"] = list(sdfg.transformation_history)
    return out


def canonical_sdfg_json(sdfg) -> str:
    """The canonical serialized form as one deterministic string."""
    return json.dumps(
        sdfg_to_json(sdfg, canonical=True),
        sort_keys=True,
        separators=(",", ":"),
        default=str,
    )


def content_hash(sdfg) -> str:
    """Content address of an SDFG: SHA-256 over the canonical form.

    Structurally identical graphs hash identically regardless of how
    they were built or what transformation history they carry; any
    change to dataflow, descriptors, symbols, or instrumentation
    changes the hash.  This is the cache key the tuning subsystem uses.
    """
    return hashlib.sha256(canonical_sdfg_json(sdfg).encode("utf-8")).hexdigest()


def restore_sdfg_inplace(sdfg, obj: Dict[str, Any]) -> None:
    """Restore ``sdfg`` to a previously serialized snapshot *in place*.

    The transactional rollback of the guarded optimizer: callers holding
    a reference to the SDFG object (compiled artifacts, optimizers, the
    REPL) see the restored graph without rebinding.  Round-trips through
    :func:`sdfg_from_json` and transplants every field onto the existing
    object, so a subsequent ``sdfg_to_json`` is byte-identical to the
    snapshot.
    """
    fresh = sdfg_from_json(obj)
    for state in list(sdfg.nodes()):
        sdfg.remove_node(state)
    sdfg.name = fresh.name
    sdfg.instrument = fresh.instrument
    sdfg.arrays = fresh.arrays
    sdfg.symbols = fresh.symbols
    sdfg.constants = fresh.constants
    for state in fresh.nodes():
        state.sdfg = sdfg
        sdfg.add_node(state)
    for e in fresh.edges():
        sdfg.add_edge(e.src, e.dst, e.data)
    sdfg.start_state = fresh.start_state
    sdfg.transformation_history = fresh.transformation_history
    sdfg.invalidate_compiled()


def sdfg_from_json(obj: Dict[str, Any]):
    from repro.sdfg.sdfg import SDFG, InterstateEdge

    sdfg = SDFG(
        obj["name"],
        symbols={k: dtype_from_name(v) for k, v in obj["symbols"].items()},
        constants=obj.get("constants", {}),
    )
    sdfg.instrument = _instrument_from_json(obj)
    for name, dobj in obj["arrays"].items():
        sdfg.arrays[name] = data_from_json(dobj)
    states = [state_from_json(s, sdfg) for s in obj["states"]]
    for s in states:
        sdfg.add_node(s)
    if obj["start_state"] is not None:
        sdfg.start_state = states[obj["start_state"]]
    for t in obj["transitions"]:
        sdfg.add_edge(
            states[t["src"]],
            states[t["dst"]],
            InterstateEdge(t["condition"], t["assignments"]),
        )
    sdfg.transformation_history = list(obj.get("transformation_history", ()))
    return sdfg
