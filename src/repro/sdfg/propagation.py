"""Memlet propagation (paper §4.3, compilation step ❶).

Memlet ranges are propagated from tasklets and containers *outwards*
through scopes, computing each scope's overall data requirements as the
image of the scope function (the Map range) on the union of the internal
memlet subsets.  The result — exact per-scope data footprints — is what
enables automatic accelerator copy generation, transformation
applicability checks, and the performance model's volume estimates.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.sdfg.memlet import Memlet
from repro.sdfg.nodes import (
    ConsumeEntry,
    ConsumeExit,
    EntryNode,
    ExitNode,
    MapEntry,
    MapExit,
    NestedSDFG,
)
from repro.sdfg.state import SDFGState
from repro.symbolic import Expr, Integer, Mul, Subset


def propagate_memlets_sdfg(sdfg) -> None:
    """Propagate memlets in every state (and nested SDFGs first)."""
    for state in sdfg.nodes():
        for node in state.nodes():
            if isinstance(node, NestedSDFG):
                propagate_memlets_sdfg(node.sdfg)
        propagate_memlets_state(sdfg, state)


def propagate_memlets_state(sdfg, state: SDFGState) -> None:
    """Recompute memlets on edges crossing scope boundaries, innermost first."""
    sd = state.scope_dict()

    def depth(entry) -> int:
        d = 0
        while entry is not None:
            d += 1
            entry = sd.get(entry)
        return d

    entries = sorted(state.entry_nodes(), key=depth, reverse=True)
    for entry in entries:
        exit_ = state.exit_node(entry)
        params = _scope_param_ranges(entry)
        # Inward-facing edges: outer edge at IN_k summarizes the union of
        # internal consumers hanging off OUT_k.
        for conn in sorted(c for c in entry.in_connectors if c.startswith("IN_")):
            internal = state.out_edges_by_connector(
                entry, "OUT_" + conn[len("IN_") :]
            )
            external = state.in_edges_by_connector(entry, conn)
            if not internal or not external:
                continue
            summary = _propagate_union(
                [e.data for e in internal], params, entry
            )
            for e in external:
                if summary is not None:
                    e.data = summary.clone()
        # Outward-facing edges at the exit node.
        for conn in sorted(c for c in exit_.out_connectors if c.startswith("OUT_")):
            internal = state.in_edges_by_connector(exit_, "IN_" + conn[len("OUT_") :])
            external = state.out_edges_by_connector(exit_, conn)
            if not internal or not external:
                continue
            summary = _propagate_union([e.data for e in internal], params, entry)
            for e in external:
                if summary is not None:
                    e.data = summary.clone()


def _scope_param_ranges(entry: EntryNode) -> Dict:
    if isinstance(entry, MapEntry):
        return entry.map.param_ranges()
    # Consume scopes: the PE parameter sweeps [0, num_pes); accesses are
    # inherently dynamic.
    from repro.symbolic import Range

    c = entry.consume
    return {c.pe_param: Range(0, c.num_pes)}


def _propagate_union(
    memlets: List[Memlet], params: Dict, entry: EntryNode
) -> Optional[Memlet]:
    """Union of internal memlets, swept over the scope parameters.

    The result is a pure function of the memlet contents, the parameter
    ranges, and whether the scope is a consume (dynamic), so it is
    memoized on those; callers ``clone()`` the returned prototype before
    attaching it to an edge.
    """
    from repro.symbolic import memo

    non_empty = [m for m in memlets if not m.is_empty()]
    if not non_empty:
        return None
    try:
        key = (
            tuple((m.data, m.subset, m.volume, m.dynamic, m.wcr) for m in non_empty),
            tuple(sorted(params.items())),
            isinstance(entry, ConsumeEntry),
        )
    except TypeError:
        return _propagate_union_uncached(non_empty, params, entry)
    return memo.memoized(
        "propagate", key, lambda: _propagate_union_uncached(non_empty, params, entry)
    )


def _propagate_union_uncached(
    non_empty: List[Memlet], params: Dict, entry: EntryNode
) -> Optional[Memlet]:
    data = non_empty[0].data
    images = []
    total_volume: Expr = Integer(0)
    dynamic = isinstance(entry, ConsumeEntry)
    wcr = None
    for m in non_empty:
        if m.data != data:
            # Differently-named data through one connector pair: leave as-is.
            return None
        if m.subset is None:
            return None
        images.append(m.subset.image(params))
        total_volume = total_volume + m.volume
        dynamic = dynamic or m.dynamic
        if m.wcr is not None:
            wcr = m.wcr
    union = images[0]
    for img in images[1:]:
        union = union.union_bb(img)
    # Total accesses = per-iteration accesses x number of iterations.
    iterations: Expr = Integer(1)
    for rng in params.values():
        iterations = Mul.make(iterations, rng.size())
    volume = Mul.make(total_volume, iterations)
    out = Memlet(data=data, subset=union, volume=volume, dynamic=dynamic, wcr=wcr)
    return out
