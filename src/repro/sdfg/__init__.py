"""The Stateful Dataflow Multigraph intermediate representation.

This package implements the IR of the paper's §3 and Appendix A: a
directed graph of directed acyclic multigraphs.  See
:class:`~repro.sdfg.sdfg.SDFG` (the state machine),
:class:`~repro.sdfg.state.SDFGState` (one dataflow multigraph),
:mod:`~repro.sdfg.nodes` (Table 1's node taxonomy), and
:class:`~repro.sdfg.memlet.Memlet` (data-movement descriptors).
"""

from repro.sdfg import dtypes
from repro.sdfg.data import Array, Data, Scalar, Stream
from repro.sdfg.dtypes import (
    Language,
    ReductionType,
    ScheduleType,
    StorageType,
    typeclass,
)
from repro.sdfg.memlet import Memlet
from repro.sdfg.nodes import (
    AccessNode,
    Consume,
    ConsumeEntry,
    ConsumeExit,
    EntryNode,
    ExitNode,
    Map,
    MapEntry,
    MapExit,
    NestedSDFG,
    Node,
    Reduce,
    Tasklet,
)
from repro.sdfg.sdfg import SDFG, InterstateEdge
from repro.sdfg.state import SDFGState
from repro.sdfg.validation import InvalidSDFGError, validate_sdfg

__all__ = [
    "SDFG",
    "AccessNode",
    "Array",
    "Consume",
    "ConsumeEntry",
    "ConsumeExit",
    "Data",
    "EntryNode",
    "ExitNode",
    "InterstateEdge",
    "InvalidSDFGError",
    "Language",
    "Map",
    "MapEntry",
    "MapExit",
    "Memlet",
    "NestedSDFG",
    "Node",
    "Reduce",
    "ReductionType",
    "Scalar",
    "ScheduleType",
    "SDFGState",
    "StorageType",
    "Stream",
    "Tasklet",
    "dtypes",
    "typeclass",
    "validate_sdfg",
]
