"""SDFG validation (paper §4.3, compilation step ❶'s validation pass).

Checks that scopes are correctly structured, memlets are connected
properly, and map schedules / data storage locations are feasible
(failing when, e.g., FPGA-resident data is accessed inside a GPU map).

All checks report through :mod:`repro.diagnostics`.  By default the
first ERROR raises :class:`InvalidSDFGError` (historical fail-fast
behavior); with ``collect_all=True`` every diagnostic of a broken SDFG
is returned so tooling can show them all at once.  A static
write-conflict detector (paper §3.2: conflicting writes require a WCR
memlet) emits W501 warnings for overlapping writes inside map scopes
that lack conflict resolution.
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.diagnostics import Diagnostic, DiagnosticCollector, Severity
from repro.graph import CycleError, topological_sort
from repro.sdfg.data import Stream
from repro.sdfg.dtypes import (
    STORAGE_ACCESSIBLE_FROM,
    ReductionType,
    ScheduleType,
    StorageType,
)
from repro.sdfg.nodes import (
    AccessNode,
    ConsumeEntry,
    EntryNode,
    ExitNode,
    MapEntry,
    NestedSDFG,
    Node,
    Reduce,
    Tasklet,
)
from repro.sdfg.state import SDFGState


class InvalidSDFGError(Exception):
    """Raised when an SDFG fails validation."""

    def __init__(self, message: str, sdfg=None, state=None, node=None, code: str = "V000"):
        self.sdfg = sdfg
        self.state = state
        self.node = node
        self.code = code
        self.diagnostic = Diagnostic(
            code=code,
            severity=Severity.ERROR,
            message=message,
            sdfg=getattr(sdfg, "name", None),
            state=getattr(state, "name", None),
            node=repr(node) if node is not None else None,
        )
        loc = ""
        if state is not None:
            loc += f" [state {state.name}]"
        if node is not None:
            loc += f" [node {node!r}]"
        super().__init__(message + loc)


def _invalid_sdfg_factory(diag: Diagnostic, sdfg, state, node) -> InvalidSDFGError:
    return InvalidSDFGError(diag.message, sdfg, state, node, code=diag.code)


def _collector(collect_all: bool) -> DiagnosticCollector:
    return DiagnosticCollector(
        collect_all=collect_all, error_factory=_invalid_sdfg_factory
    )


def validate_sdfg(sdfg, collect_all: bool = False) -> List[Diagnostic]:
    """Validate the full SDFG, recursing into nested SDFGs.

    In the default fail-fast mode the first error raises
    :class:`InvalidSDFGError`; warnings never raise.  With
    ``collect_all=True`` no exception is raised and the complete list of
    diagnostics (errors and warnings) is returned.
    """
    ctx = _collector(collect_all)
    _validate_sdfg_into(sdfg, ctx)
    return ctx.diagnostics


def _validate_sdfg_into(sdfg, ctx: DiagnosticCollector) -> None:
    if sdfg.number_of_nodes() == 0:
        ctx.error("V001", "SDFG has no states", sdfg=sdfg)
        return  # nothing further to check
    if sdfg.start_state is None or sdfg.start_state not in sdfg:
        ctx.error("V002", "SDFG has no start state", sdfg=sdfg)

    names = [s.name for s in sdfg.nodes()]
    if len(set(names)) != len(names):
        ctx.error("V003", f"duplicate state names: {names}", sdfg=sdfg)

    for state in sdfg.nodes():
        validate_state(sdfg, state, ctx)

    # Interstate edges may only assign to symbols, not container names.
    for e in sdfg.edges():
        for target in e.data.assignments:
            if target in sdfg.arrays:
                ctx.error(
                    "V004",
                    f"interstate assignment to container {target!r}",
                    sdfg=sdfg,
                )

    detect_write_conflicts(sdfg, ctx)
    check_instrumentation_placement(sdfg, ctx)


def validate_state(
    sdfg, state: SDFGState, ctx: Optional[DiagnosticCollector] = None
) -> List[Diagnostic]:
    if ctx is None:
        ctx = _collector(collect_all=False)

    # ❶ acyclicity
    try:
        topological_sort(state)
    except CycleError as err:
        ctx.error(
            "V101", "state dataflow graph is cyclic", sdfg=sdfg, state=state, cause=err
        )

    # ❷ node-level checks
    for node in state.nodes():
        _validate_node(sdfg, state, node, ctx)

    # ❸ edge/memlet checks
    for e in state.edges():
        _validate_edge(sdfg, state, e, ctx)

    # ❹ scope structure (reported on inconsistency) + schedule/storage
    # feasibility (depends on a well-formed scope tree, hence skipped on
    # malformed scopes in collect mode).
    try:
        sd = state.scope_dict()
    except (ValueError, KeyError) as err:
        ctx.error(
            "V102", f"malformed scopes: {err}", sdfg=sdfg, state=state, cause=err
        )
    else:
        _validate_storage(sdfg, state, sd, ctx)

    # ❺ every entry has exactly one matching exit
    for entry in state.entry_nodes():
        try:
            state.exit_node(entry)
        except KeyError as err:
            ctx.error(
                "V103",
                "scope entry without matching exit",
                sdfg=sdfg,
                state=state,
                node=entry,
                cause=err,
            )
    return ctx.diagnostics


def _validate_node(sdfg, state: SDFGState, node: Node, ctx: DiagnosticCollector) -> None:
    if isinstance(node, AccessNode):
        if node.data not in sdfg.arrays:
            ctx.error(
                "V201",
                f"access node references undefined container {node.data!r}",
                sdfg=sdfg,
                state=state,
                node=node,
                data=node.data,
            )
        return

    if isinstance(node, Tasklet):
        # Tasklets may not reference external memory without memlets: all
        # loaded names must be connectors, scope parameters, or symbols.
        try:
            defined = _symbols_defined_at(sdfg, state, node)
        except (ValueError, KeyError):
            defined = None  # malformed scopes are reported separately (V102)
        if defined is not None:
            for name in node.free_symbols():
                if name not in defined and name not in sdfg.constants:
                    ctx.error(
                        "V202",
                        f"tasklet accesses name {name!r} without a memlet "
                        "(undeclared symbol or external memory)",
                        sdfg=sdfg,
                        state=state,
                        node=node,
                    )
        # Connected edges must target declared connectors.
        for e in state.in_edges(node):
            if e.dst_conn is None and not e.data.is_empty():
                ctx.error(
                    "V203",
                    "dataflow into tasklet without a connector",
                    sdfg=sdfg,
                    state=state,
                    node=node,
                )
        for e in state.out_edges(node):
            if e.src_conn is None and not e.data.is_empty():
                ctx.error(
                    "V204",
                    "dataflow out of tasklet without a connector",
                    sdfg=sdfg,
                    state=state,
                    node=node,
                )
        if not state.out_edges(node) and node.out_connectors:
            ctx.error(
                "V205",
                "tasklet declares outputs but has no outgoing edges",
                sdfg=sdfg,
                state=state,
                node=node,
            )
        return

    if isinstance(node, NestedSDFG):
        # Recurse; nested SDFG must not recurse into itself (paper §3.4).
        if node.sdfg is sdfg:
            ctx.error(
                "V206", "recursive nested SDFG", sdfg=sdfg, state=state, node=node
            )
            return
        _validate_sdfg_into(node.sdfg, ctx)
        outer_names = set(node.in_connectors) | set(node.out_connectors)
        for conn in outer_names:
            if conn not in node.sdfg.arrays:
                ctx.error(
                    "V207",
                    f"nested SDFG connector {conn!r} has no matching container",
                    sdfg=sdfg,
                    state=state,
                    node=node,
                )
        return

    if isinstance(node, ConsumeEntry):
        ins = state.in_edges_by_connector(node, "IN_stream")
        if len(ins) != 1:
            ctx.error(
                "V208",
                "consume entry needs exactly one stream input",
                sdfg=sdfg,
                state=state,
                node=node,
            )
            return
        src = ins[0].src
        if not (isinstance(src, AccessNode) and isinstance(src.desc(sdfg), Stream)):
            ctx.error(
                "V209",
                "consume entry input must come from a stream",
                sdfg=sdfg,
                state=state,
                node=node,
            )


def _validate_edge(sdfg, state: SDFGState, e, ctx: DiagnosticCollector) -> None:
    mem = e.data
    if mem.is_empty():
        return
    if mem.data not in sdfg.arrays:
        ctx.error(
            "V301",
            f"memlet references undefined container {mem.data!r}",
            sdfg=sdfg,
            state=state,
            data=mem.data,
        )
        return  # remaining checks dereference the descriptor
    desc = sdfg.arrays[mem.data]
    if mem.subset is not None and mem.subset.dims != desc.dims:
        ctx.error(
            "V302",
            f"memlet subset [{mem.subset}] rank {mem.subset.dims} does not "
            f"match container {mem.data!r} rank {desc.dims}",
            sdfg=sdfg,
            state=state,
            data=mem.data,
        )
    if mem.other_subset is not None:
        # other_subset reindexes the opposite endpoint's container.
        other = e.dst if isinstance(e.dst, AccessNode) else e.src
        if isinstance(other, AccessNode) and other.data in sdfg.arrays:
            odesc = sdfg.arrays[other.data]
            if mem.other_subset.dims != odesc.dims:
                ctx.error(
                    "V303",
                    f"memlet other_subset rank mismatch on {other.data!r}",
                    sdfg=sdfg,
                    state=state,
                    data=other.data,
                )
    # Connector existence on endpoints with explicit connector sets.
    if e.src_conn is not None and e.src_conn not in e.src.out_connectors:
        ctx.error(
            "V304",
            f"edge uses undeclared source connector {e.src_conn!r}",
            sdfg=sdfg,
            state=state,
            node=e.src,
        )
    if e.dst_conn is not None and e.dst_conn not in e.dst.in_connectors:
        ctx.error(
            "V305",
            f"edge uses undeclared destination connector {e.dst_conn!r}",
            sdfg=sdfg,
            state=state,
            node=e.dst,
        )
    # Subset must fit in the container — checked only when every free
    # symbol is a global size symbol (map parameters and loop variables
    # have data-dependent domains the positive-symbol model cannot bound).
    if mem.subset is not None and mem.subset.dims == desc.dims:
        from repro.symbolic.sets import decide_nonnegative

        subset_syms = {s.name for s in mem.subset.free_symbols}
        if not subset_syms <= (set(sdfg.symbols) | set(sdfg.constants)):
            return
        for r, dim in zip(mem.subset.ranges, desc.shape):
            # max_element is inclusive: OOB iff max >= dim.
            over = decide_nonnegative(r.max_element() - dim)
            under = decide_nonnegative(-r.min_element() - 1)
            if over is True or under is True:
                ctx.error(
                    "V306",
                    f"memlet {mem!r} is out of bounds for container "
                    f"{mem.data!r} (shape {desc.shape})",
                    sdfg=sdfg,
                    state=state,
                    data=mem.data,
                )


def _validate_storage(
    sdfg, state: SDFGState, scope_dict, ctx: DiagnosticCollector
) -> None:
    """Schedules may only touch storage they can reach (paper §3.1:
    'memlets between containers either generate appropriate memory copy
    operations or fail with illegal accesses')."""
    for node in state.nodes():
        if not isinstance(node, AccessNode):
            continue
        if node.data not in sdfg.arrays:
            continue  # reported as V201
        storage = node.desc(sdfg).storage
        if storage == StorageType.Default:
            continue
        entry = scope_dict.get(node)
        schedule = _innermost_schedule(entry, scope_dict)
        if schedule is None:
            continue
        allowed = STORAGE_ACCESSIBLE_FROM[schedule]
        if storage not in allowed:
            ctx.error(
                "V401",
                f"container {node.data!r} with storage {storage.name} is not "
                f"accessible from schedule {schedule.name}",
                sdfg=sdfg,
                state=state,
                node=node,
                data=node.data,
            )


# =====================================================================
# Instrumentation placement lint (W6xx)
# =====================================================================


def check_instrumentation_placement(
    sdfg, ctx: Optional[DiagnosticCollector] = None
) -> List[Diagnostic]:
    """Warn when instrumentation is attached to elements that can never
    produce meaningful events: empty states (W601), disconnected nodes
    (W602), and states unreachable from the start state (W603).

    These placements are legal — the report simply stays empty or
    trivial — but they almost always indicate a tag left behind by a
    transformation or attached to the wrong element, so ``validate_sdfg``
    surfaces them as warnings (collect them with ``collect_all=True``).
    """
    from repro.instrumentation.types import InstrumentationType

    if ctx is None:
        ctx = DiagnosticCollector(collect_all=True)

    # Reachability over the state machine, from the start state.
    reachable: Set = set()
    if sdfg.start_state is not None and sdfg.start_state in sdfg:
        frontier = [sdfg.start_state]
        while frontier:
            state = frontier.pop()
            if state in reachable:
                continue
            reachable.add(state)
            frontier.extend(e.dst for e in sdfg.out_edges(state))

    for state in sdfg.nodes():
        if state.instrument != InstrumentationType.NONE:
            if state.number_of_nodes() == 0:
                ctx.warning(
                    "W601",
                    f"state {state.name!r} is instrumented "
                    f"({state.instrument.name}) but contains no nodes; "
                    "it will never record iterations or data movement",
                    sdfg=sdfg,
                    state=state,
                )
            if state not in reachable:
                ctx.warning(
                    "W603",
                    f"state {state.name!r} is instrumented "
                    f"({state.instrument.name}) but unreachable from the "
                    "start state; it will never execute",
                    sdfg=sdfg,
                    state=state,
                )
        for node in state.nodes():
            if isinstance(node, Tasklet):
                itype = node.instrument
            elif isinstance(node, MapEntry):
                itype = node.map.instrument
            elif isinstance(node, ConsumeEntry):
                itype = node.consume.instrument
            else:
                continue
            if itype == InstrumentationType.NONE:
                continue
            if not state.in_edges(node) and not state.out_edges(node):
                ctx.warning(
                    "W602",
                    f"instrumented ({itype.name}) node {node!r} is "
                    "disconnected from the dataflow graph",
                    sdfg=sdfg,
                    state=state,
                    node=node,
                )
        for node in state.nodes():
            if isinstance(node, NestedSDFG) and node.sdfg is not sdfg:
                check_instrumentation_placement(node.sdfg, ctx)
    return ctx.warnings()


# =====================================================================
# Static write-conflict detection (paper §3.2)
# =====================================================================


def detect_write_conflicts(
    sdfg, ctx: Optional[DiagnosticCollector] = None
) -> List[Diagnostic]:
    """Warn (W501) when a write that crosses a map exit may touch the
    same elements from different iterations without a WCR memlet.

    A map parameter is *covered* when it appears in the write's subset,
    or — transitively — when the range of a covered parameter depends on
    it (tiled maps: the inner parameter's range is anchored at the tile
    parameter, so distinct tiles write disjoint elements).  A write
    crossing a map whose parameter is not covered repeats the same
    subset every iteration: a conflict unless the memlet declares a WCR
    or is dynamic (data-dependent writes are the programmer's contract,
    e.g. stream pushes).
    """
    if ctx is None:
        ctx = DiagnosticCollector(collect_all=True)
    for state in sdfg.nodes():
        _detect_state_write_conflicts(sdfg, state, ctx)
        for node in state.nodes():
            if isinstance(node, NestedSDFG) and node.sdfg is not sdfg:
                detect_write_conflicts(node.sdfg, ctx)
    return ctx.warnings()


def _detect_state_write_conflicts(sdfg, state, ctx: DiagnosticCollector) -> None:
    for e in state.edges():
        mem = e.data
        if mem.is_empty() or mem.wcr is not None or mem.dynamic:
            continue
        if mem.subset is None or mem.data not in sdfg.arrays:
            continue
        # Only analyze write origins: edges leaving a compute node (or an
        # access-node copy source) whose memlet path crosses a map exit.
        if isinstance(e.src, (EntryNode, ExitNode)):
            continue
        try:
            path = state.memlet_path(e)
        except ValueError:
            continue  # fan-out paths: branches are analyzed individually
        if path[0] is not e:
            continue  # interior edge; the origin edge covers this path
        crossed = [
            state.entry_node_of(edge.dst)
            for edge in path
            if isinstance(edge.dst, ExitNode)
        ]
        crossed = [c for c in crossed if isinstance(c, MapEntry)]
        if not crossed:
            continue
        # The conflict concerns the final destination container; skip
        # reindexed copies where the written subset is other_subset.
        final = path[-1].dst
        if isinstance(final, AccessNode) and final.data != mem.data:
            continue
        missing = _uncovered_params(mem.subset, crossed)
        if missing:
            maps = ", ".join(sorted({c.map.label for c in crossed}))
            ctx.warning(
                "W501",
                f"write to {mem.data!r}[{mem.subset}] repeats across "
                f"iterations of parameter(s) {sorted(missing)} of map(s) "
                f"{maps} without conflict resolution (WCR)",
                sdfg=sdfg,
                state=state,
                node=e.src,
                data=mem.data,
            )


def _uncovered_params(subset, crossed_entries) -> Set[str]:
    """Map parameters (of the crossed scopes) not pinned by the subset,
    directly or through the range of a pinned parameter."""
    param_ranges = {}
    for entry in crossed_entries:
        for param, rng in zip(entry.map.params, entry.map.range.ranges):
            param_ranges[param] = rng
    covered = {s.name for s in subset.free_symbols}
    changed = True
    while changed:
        changed = False
        for param, rng in param_ranges.items():
            if param not in covered:
                continue
            for expr in (rng.start, rng.end, rng.step):
                for s in expr.free_symbols:
                    if s.name in param_ranges and s.name not in covered:
                        covered.add(s.name)
                        changed = True
    return set(param_ranges) - covered


# =====================================================================
# Map parallelization proof (parallel execution tier)
# =====================================================================


class MapParallelism:
    """Verdict of :func:`analyze_map_parallelism` for one map scope.

    ``eligible`` maps carry the *proof*: chunking the ``param``
    dimension of the iteration domain across workers cannot create a
    write conflict.  ``wcr_merge`` lists outputs that must be privatized
    per worker and merged with their reduction operator at the barrier;
    ``direct`` lists outputs whose footprints are disjoint along
    ``param`` and may be written in place.  ``fork_ok`` additionally
    certifies every direct output's chunk footprint is a contiguous
    slice ``[c*lo+d : c*hi+d)`` along ``fork_dims[data]`` — the
    copy-back contract of the fork tier (copy-on-write children return
    written slices to the parent).  Ineligible maps carry human-readable
    ``reasons`` that surface as the W703 diagnostic when the parallel
    tier degrades to serial.
    """

    __slots__ = (
        "eligible", "param", "reasons", "wcr_merge", "direct",
        "fork_ok", "fork_dims",
    )

    def __init__(self):
        self.eligible = False
        self.param: Optional[str] = None
        self.reasons: List[str] = []
        #: data name -> ReductionType (private accumulator + merge)
        self.wcr_merge = {}
        #: data names written disjointly along the chunked param
        self.direct: Set[str] = set()
        self.fork_ok = False
        #: data name -> (dim index, coeff c, offset expr d) for copy-back
        self.fork_dims = {}


#: Reduction types the parallel tier knows how to privatize and merge.
_MERGEABLE = frozenset(("Sum", "Product", "Min", "Max"))


def _scope_params(state, entry) -> Set[str]:
    """All map parameters defined inside ``entry``'s scope subtree."""
    params = set(entry.map.params)
    sd = state.scope_dict()
    for node in state.nodes():
        if not isinstance(node, MapEntry) or node is entry:
            continue
        anc = sd.get(node)
        while anc is not None:
            if anc is entry:
                params.update(node.map.params)
                break
            anc = sd.get(anc)
    return params


def _scatter_reduction(sdfg, state, write_edge, entry):
    """Reduction type of an indirect-update (histogram-shaped) write, or
    None when the write does not match the scatter pattern.

    The origin tasklet must mutate a loop-invariant read view of the
    written container with one of the recognized update operators; the
    dynamic out-memlet then only *declares* the write."""
    from repro.codegen import pytranslate

    mem = write_edge.data
    if mem.subset is None or len(mem.subset.ranges) != 1:
        return None
    view_syms = {s.name for s in mem.subset.ranges[0].free_symbols}
    if view_syms & _scope_params(state, entry):
        return None  # the updated view itself moves with the map
    try:
        origin = state.memlet_path(write_edge)[0]
    except ValueError:
        return None
    tasklet = origin.src
    if not isinstance(tasklet, Tasklet):
        return None
    view_edges = [
        e for e in state.in_edges(tasklet)
        if not e.data.is_empty()
        and e.data.data == mem.data
        and e.data.subset == mem.subset
    ]
    if len(view_edges) != 1:
        return None
    det = pytranslate.detect_indexed_update(
        tasklet.code, view_edges[0].dst_conn
    )
    if det is None:
        return None
    op = det[0]
    return {
        "sum": ReductionType.Sum,
        "product": ReductionType.Product,
        "min": ReductionType.Min,
        "max": ReductionType.Max,
    }.get(op)


def analyze_map_parallelism(sdfg, state, entry) -> MapParallelism:
    """Prove (or refute) that a map's domain can be chunked across
    workers along one of its parameters without write conflicts.

    This extends the W501 analysis from *iteration* disjointness to
    *cross-chunk footprint* disjointness: two chunks ``[lo1,hi1)`` and
    ``[lo2,hi2)`` of parameter ``p`` never write the same element when,
    for every non-WCR write, exactly one subset dimension is affine in
    ``p`` (``c*p + d`` with **constant integer** ``c``) and the
    footprint stride dominates the footprint extent
    (``|c*step| >= span``).  Symbolic strides and non-affine (indirect)
    indices are *not provable* and stay ineligible.  WCR writes with a
    recognized reduction operator need no disjointness — each worker
    accumulates into an identity-initialized private copy merged at the
    barrier — but custom WCR lambdas and dynamic non-WCR writes refuse
    the proof outright.
    """
    from repro.symbolic import Integer as SymInt, Symbol, sympify
    from repro.symbolic.sets import decide_nonnegative, linear_coefficient

    verdict = MapParallelism()
    m = entry.map
    if m.schedule == ScheduleType.Sequential:
        verdict.reasons.append("map schedule is Sequential")
        return verdict
    try:
        exit_node = state.exit_node(entry)
    except KeyError:
        verdict.reasons.append("map has no exit node")
        return verdict

    writes = [e for e in state.in_edges(exit_node) if not e.data.is_empty()]
    if not writes:
        verdict.reasons.append("map produces no outputs")
        return verdict

    all_params = _scope_params(state, entry)

    # Interior state: access nodes living inside the scope.  Written
    # transients are privatized per chunk by the codegen (scratch), but
    # streams have shared push/pop order and globals written interior to
    # the scope would mutate shared state without crossing the exit.
    sd = state.scope_dict()
    for node in state.nodes():
        if not isinstance(node, AccessNode):
            continue
        anc = sd.get(node)
        inside = False
        while anc is not None:
            if anc is entry:
                inside = True
                break
            anc = sd.get(anc)
        if not inside:
            continue
        desc = sdfg.arrays.get(node.data)
        if desc is None:
            continue
        if isinstance(desc, Stream):
            verdict.reasons.append(
                f"stream {node.data!r} used inside the map scope"
            )
            return verdict
        if state.in_edges(node) and not desc.transient:
            verdict.reasons.append(
                f"non-transient {node.data!r} written inside the map scope "
                "without crossing the exit"
            )
            return verdict

    # ---- param-independent refusals (poison every candidate param)
    wcr_merge = {}
    plain_writes = []
    for e in writes:
        mem = e.data
        if mem.data not in sdfg.arrays:
            verdict.reasons.append(f"write to undeclared container {mem.data!r}")
            return verdict
        if isinstance(sdfg.arrays[mem.data], Stream):
            verdict.reasons.append(
                f"stream push to {mem.data!r} (ordering is not chunkable)"
            )
            return verdict
        if mem.wcr is not None:
            rtype = mem.reduction_type()
            if rtype is None or rtype.name not in _MERGEABLE:
                verdict.reasons.append(
                    f"custom WCR on {mem.data!r} has no known merge operator"
                )
                return verdict
            prev = wcr_merge.get(mem.data)
            if prev is not None and prev != rtype:
                verdict.reasons.append(
                    f"conflicting WCR operators on {mem.data!r}"
                )
                return verdict
            wcr_merge[mem.data] = rtype
        elif mem.dynamic:
            # Indirect-update ("scatter") maps: the tasklet mutates a
            # loop-invariant read view with a recognized update operator
            # (``view[idx] += val``).  Collisions resolve through the
            # operator, so privatize-and-merge is exact — the same proof
            # the ``np.<ufunc>.at`` scatter tier relies on.
            rtype = _scatter_reduction(sdfg, state, e, entry)
            if rtype is None:
                verdict.reasons.append(
                    f"data-dependent (dynamic) write to {mem.data!r} is not "
                    "a recognized indexed-update pattern"
                )
                return verdict
            prev = wcr_merge.get(mem.data)
            if prev is not None and prev != rtype:
                verdict.reasons.append(
                    f"conflicting update operators on {mem.data!r}"
                )
                return verdict
            wcr_merge[mem.data] = rtype
        elif mem.subset is None:
            verdict.reasons.append(f"write to {mem.data!r} carries no subset")
            return verdict
        else:
            plain_writes.append(mem)
    mixed = set(wcr_merge) & {mem.data for mem in plain_writes}
    if mixed:
        verdict.reasons.append(
            f"container(s) {sorted(mixed)} mix WCR and plain writes"
        )
        return verdict

    # ---- per-param disjointness proof; first parameter that works wins
    for param, rng in zip(m.params, m.range.ranges):
        reasons: List[str] = []
        if rng.step.free_symbols or rng.tile != SymInt(1):
            reasons.append(f"parameter {param!r} has a symbolic step or tile")
            verdict.reasons.extend(reasons)
            continue
        step = int(rng.step.evaluate({}))
        if step <= 0:
            reasons.append(f"parameter {param!r} iterates with step {step}")
            verdict.reasons.extend(reasons)
            continue
        psym = Symbol(param)
        other_params = {q for q in all_params if q != param}
        direct: Set[str] = set()
        fork_dims = {}
        fork_ok = True
        for mem in plain_writes:
            dep_dims = [
                k for k, r in enumerate(mem.subset.ranges)
                if param in {s.name for s in r.free_symbols}
            ]
            if not dep_dims:
                reasons.append(
                    f"write footprint of {mem.data!r}[{mem.subset}] repeats "
                    f"across iterations of {param!r}"
                )
                break
            if len(dep_dims) > 1:
                reasons.append(
                    f"multiple dimensions of {mem.data!r}[{mem.subset}] "
                    f"depend on {param!r}"
                )
                break
            k = dep_dims[0]
            r = mem.subset.ranges[k]
            if r.step != SymInt(1) or r.tile != SymInt(1):
                reasons.append(
                    f"write to {mem.data!r} has a strided/tiled subset in "
                    f"dimension {k}"
                )
                break
            c0 = linear_coefficient(r.start, psym)
            c1 = linear_coefficient(r.end, psym)
            if c0 is None or c1 is None or c0 != c1:
                reasons.append(
                    f"index of {mem.data!r} dimension {k} is not affine in "
                    f"{param!r} (indirect or nonlinear indexing)"
                )
                break
            if c0.free_symbols:
                reasons.append(
                    f"write to {mem.data!r} strides dimension {k} by the "
                    f"symbolic factor {c0} per iteration of {param!r}"
                )
                break
            c = int(c0.evaluate({}))
            if c <= 0:
                reasons.append(
                    f"write to {mem.data!r} has non-positive stride {c} "
                    f"along {param!r}"
                )
                break
            offset = sympify(r.start - c0 * psym)
            span = sympify(r.end - r.start)  # footprint extent per iteration
            if {s.name for s in offset.free_symbols} & other_params or (
                {s.name for s in span.free_symbols} & other_params
            ):
                reasons.append(
                    f"footprint of {mem.data!r} along {param!r} shifts with "
                    "another map parameter"
                )
                break
            # Disjointness: consecutive iterations advance by c*step;
            # they cannot overlap when that advance covers the extent.
            if decide_nonnegative(sympify(c * step) - span) is not True:
                reasons.append(
                    f"cannot prove chunk disjointness for {mem.data!r}: "
                    f"stride {c}*{step} may be smaller than extent {span}"
                )
                break
            # Fork copy-back: the chunk footprint [c*lo+d, c*hi+d) must
            # be gapless (stride exactly covers the extent) and every
            # other dimension parameter-free.  A container written by
            # more than one memlet has no single copy-back slice.
            rect = (span == sympify(c * step)) and not any(
                {s.name for s in rr.free_symbols} & all_params
                for j, rr in enumerate(mem.subset.ranges) if j != k
            )
            if mem.data in direct or not rect:
                fork_ok = False
                fork_dims.pop(mem.data, None)
            else:
                fork_dims[mem.data] = (k, c, offset, tuple(mem.subset.ranges))
            direct.add(mem.data)
        else:
            # WCR footprints need no disjointness, but the offsets must
            # not reference the chunked parameter's *siblings* in a way
            # we cannot privatize — full privatization makes any WCR
            # footprint safe, so nothing further to check.
            verdict.eligible = True
            verdict.param = param
            verdict.wcr_merge = dict(wcr_merge)
            verdict.direct = direct
            verdict.fork_ok = bool(fork_ok) and set(fork_dims) == direct
            verdict.fork_dims = fork_dims if verdict.fork_ok else {}
            verdict.reasons = []
            return verdict
        verdict.reasons.extend(reasons)

    if not verdict.reasons:
        verdict.reasons.append("no map parameter admits a disjointness proof")
    return verdict


def _innermost_schedule(entry, scope_dict=None) -> Optional[ScheduleType]:
    """Innermost *effective* schedule: Default/Sequential scopes inherit
    the surrounding device schedule (a sequential loop inside a GPU
    kernel still executes on the device)."""
    while entry is not None:
        sched = entry.map.schedule if isinstance(entry, MapEntry) else entry.consume.schedule
        if sched not in (ScheduleType.Default, ScheduleType.Sequential):
            return sched
        if scope_dict is None:
            return sched
        entry = scope_dict.get(entry)
    return None


def _symbols_defined_at(sdfg, state: SDFGState, node: Node) -> Set[str]:
    """Symbols visible to a node: SDFG symbols + enclosing scope params."""
    defined = set(sdfg.symbols)
    # Interstate assignments introduce symbols as well.
    for e in sdfg.edges():
        defined.update(e.data.assignments.keys())
    sd = state.scope_dict()
    entry = sd.get(node)
    while entry is not None:
        if isinstance(entry, MapEntry):
            defined.update(entry.map.params)
            # Data-dependent range inputs arrive via extra connectors.
            defined.update(
                c for c in entry.in_connectors if not c.startswith("IN_")
            )
        else:
            defined.add(entry.consume.pe_param)
        entry = sd.get(entry)
    return defined
