"""SDFG validation (paper §4.3, compilation step ❶'s validation pass).

Checks that scopes are correctly structured, memlets are connected
properly, and map schedules / data storage locations are feasible
(failing when, e.g., FPGA-resident data is accessed inside a GPU map).
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.graph import CycleError, topological_sort
from repro.sdfg.data import Stream
from repro.sdfg.dtypes import STORAGE_ACCESSIBLE_FROM, ScheduleType, StorageType
from repro.sdfg.nodes import (
    AccessNode,
    ConsumeEntry,
    EntryNode,
    ExitNode,
    MapEntry,
    NestedSDFG,
    Node,
    Reduce,
    Tasklet,
)
from repro.sdfg.state import SDFGState


class InvalidSDFGError(Exception):
    """Raised when an SDFG fails validation."""

    def __init__(self, message: str, sdfg=None, state=None, node=None):
        self.sdfg = sdfg
        self.state = state
        self.node = node
        loc = ""
        if state is not None:
            loc += f" [state {state.name}]"
        if node is not None:
            loc += f" [node {node!r}]"
        super().__init__(message + loc)


def validate_sdfg(sdfg) -> None:
    """Validate the full SDFG, recursing into nested SDFGs."""
    if sdfg.number_of_nodes() == 0:
        raise InvalidSDFGError("SDFG has no states", sdfg)
    if sdfg.start_state is None or sdfg.start_state not in sdfg:
        raise InvalidSDFGError("SDFG has no start state", sdfg)

    names = [s.name for s in sdfg.nodes()]
    if len(set(names)) != len(names):
        raise InvalidSDFGError(f"duplicate state names: {names}", sdfg)

    for state in sdfg.nodes():
        validate_state(sdfg, state)

    # Interstate edges may only assign to symbols, not container names.
    for e in sdfg.edges():
        for target in e.data.assignments:
            if target in sdfg.arrays:
                raise InvalidSDFGError(
                    f"interstate assignment to container {target!r}", sdfg
                )


def validate_state(sdfg, state: SDFGState) -> None:
    # ❶ acyclicity
    try:
        topological_sort(state)
    except CycleError as err:
        raise InvalidSDFGError("state dataflow graph is cyclic", sdfg, state) from err

    # ❷ node-level checks
    for node in state.nodes():
        _validate_node(sdfg, state, node)

    # ❸ edge/memlet checks
    for e in state.edges():
        _validate_edge(sdfg, state, e)

    # ❹ scope structure (raises on inconsistency) + schedule/storage feasibility
    try:
        sd = state.scope_dict()
    except (ValueError, KeyError) as err:
        raise InvalidSDFGError(f"malformed scopes: {err}", sdfg, state) from err
    _validate_storage(sdfg, state, sd)

    # ❺ every entry has exactly one matching exit
    for entry in state.entry_nodes():
        try:
            state.exit_node(entry)
        except KeyError as err:
            raise InvalidSDFGError(
                "scope entry without matching exit", sdfg, state, entry
            ) from err


def _validate_node(sdfg, state: SDFGState, node: Node) -> None:
    if isinstance(node, AccessNode):
        if node.data not in sdfg.arrays:
            raise InvalidSDFGError(
                f"access node references undefined container {node.data!r}",
                sdfg,
                state,
                node,
            )
        return

    if isinstance(node, Tasklet):
        # Tasklets may not reference external memory without memlets: all
        # loaded names must be connectors, scope parameters, or symbols.
        defined = _symbols_defined_at(sdfg, state, node)
        for name in node.free_symbols():
            if name not in defined and name not in sdfg.constants:
                raise InvalidSDFGError(
                    f"tasklet accesses name {name!r} without a memlet "
                    "(undeclared symbol or external memory)",
                    sdfg,
                    state,
                    node,
                )
        # Connected edges must target declared connectors.
        for e in state.in_edges(node):
            if e.dst_conn is None and not e.data.is_empty():
                raise InvalidSDFGError(
                    "dataflow into tasklet without a connector", sdfg, state, node
                )
        for e in state.out_edges(node):
            if e.src_conn is None and not e.data.is_empty():
                raise InvalidSDFGError(
                    "dataflow out of tasklet without a connector", sdfg, state, node
                )
        if not state.out_edges(node) and node.out_connectors:
            raise InvalidSDFGError(
                "tasklet declares outputs but has no outgoing edges",
                sdfg,
                state,
                node,
            )
        return

    if isinstance(node, NestedSDFG):
        # Recurse; nested SDFG must not recurse into itself (paper §3.4).
        if node.sdfg is sdfg:
            raise InvalidSDFGError("recursive nested SDFG", sdfg, state, node)
        validate_sdfg(node.sdfg)
        outer_names = set(node.in_connectors) | set(node.out_connectors)
        for conn in outer_names:
            if conn not in node.sdfg.arrays:
                raise InvalidSDFGError(
                    f"nested SDFG connector {conn!r} has no matching container",
                    sdfg,
                    state,
                    node,
                )
        return

    if isinstance(node, ConsumeEntry):
        ins = state.in_edges_by_connector(node, "IN_stream")
        if len(ins) != 1:
            raise InvalidSDFGError(
                "consume entry needs exactly one stream input", sdfg, state, node
            )
        src = ins[0].src
        if not (isinstance(src, AccessNode) and isinstance(src.desc(sdfg), Stream)):
            raise InvalidSDFGError(
                "consume entry input must come from a stream", sdfg, state, node
            )


def _validate_edge(sdfg, state: SDFGState, e) -> None:
    mem = e.data
    if mem.is_empty():
        return
    if mem.data not in sdfg.arrays:
        raise InvalidSDFGError(
            f"memlet references undefined container {mem.data!r}", sdfg, state
        )
    desc = sdfg.arrays[mem.data]
    if mem.subset is not None and mem.subset.dims != desc.dims:
        raise InvalidSDFGError(
            f"memlet subset [{mem.subset}] rank {mem.subset.dims} does not "
            f"match container {mem.data!r} rank {desc.dims}",
            sdfg,
            state,
        )
    if mem.other_subset is not None:
        # other_subset reindexes the opposite endpoint's container.
        other = e.dst if isinstance(e.dst, AccessNode) else e.src
        if isinstance(other, AccessNode):
            odesc = sdfg.arrays[other.data]
            if mem.other_subset.dims != odesc.dims:
                raise InvalidSDFGError(
                    f"memlet other_subset rank mismatch on {other.data!r}",
                    sdfg,
                    state,
                )
    # Connector existence on endpoints with explicit connector sets.
    if e.src_conn is not None and e.src_conn not in e.src.out_connectors:
        raise InvalidSDFGError(
            f"edge uses undeclared source connector {e.src_conn!r}",
            sdfg,
            state,
            e.src,
        )
    if e.dst_conn is not None and e.dst_conn not in e.dst.in_connectors:
        raise InvalidSDFGError(
            f"edge uses undeclared destination connector {e.dst_conn!r}",
            sdfg,
            state,
            e.dst,
        )
    # Subset must fit in the container — checked only when every free
    # symbol is a global size symbol (map parameters and loop variables
    # have data-dependent domains the positive-symbol model cannot bound).
    if mem.subset is not None:
        from repro.symbolic.sets import decide_nonnegative

        subset_syms = {s.name for s in mem.subset.free_symbols}
        if not subset_syms <= (set(sdfg.symbols) | set(sdfg.constants)):
            return
        for r, dim in zip(mem.subset.ranges, desc.shape):
            # max_element is inclusive: OOB iff max >= dim.
            over = decide_nonnegative(r.max_element() - dim)
            under = decide_nonnegative(-r.min_element() - 1)
            if over is True or under is True:
                raise InvalidSDFGError(
                    f"memlet {mem!r} is out of bounds for container "
                    f"{mem.data!r} (shape {desc.shape})",
                    sdfg,
                    state,
                )


def _validate_storage(sdfg, state: SDFGState, scope_dict) -> None:
    """Schedules may only touch storage they can reach (paper §3.1:
    'memlets between containers either generate appropriate memory copy
    operations or fail with illegal accesses')."""
    for node in state.nodes():
        if not isinstance(node, AccessNode):
            continue
        storage = node.desc(sdfg).storage
        if storage == StorageType.Default:
            continue
        entry = scope_dict.get(node)
        schedule = _innermost_schedule(entry, scope_dict)
        if schedule is None:
            continue
        allowed = STORAGE_ACCESSIBLE_FROM[schedule]
        if storage not in allowed:
            raise InvalidSDFGError(
                f"container {node.data!r} with storage {storage.name} is not "
                f"accessible from schedule {schedule.name}",
                sdfg,
                state,
                node,
            )


def _innermost_schedule(entry, scope_dict=None) -> Optional[ScheduleType]:
    """Innermost *effective* schedule: Default/Sequential scopes inherit
    the surrounding device schedule (a sequential loop inside a GPU
    kernel still executes on the device)."""
    while entry is not None:
        sched = entry.map.schedule if isinstance(entry, MapEntry) else entry.consume.schedule
        if sched not in (ScheduleType.Default, ScheduleType.Sequential):
            return sched
        if scope_dict is None:
            return sched
        entry = scope_dict.get(entry)
    return None


def _symbols_defined_at(sdfg, state: SDFGState, node: Node) -> Set[str]:
    """Symbols visible to a node: SDFG symbols + enclosing scope params."""
    defined = set(sdfg.symbols)
    # Interstate assignments introduce symbols as well.
    for e in sdfg.edges():
        defined.update(e.data.assignments.keys())
    sd = state.scope_dict()
    entry = sd.get(node)
    while entry is not None:
        if isinstance(entry, MapEntry):
            defined.update(entry.map.params)
            # Data-dependent range inputs arrive via extra connectors.
            defined.update(
                c for c in entry.in_connectors if not c.startswith("IN_")
            )
        else:
            defined.add(entry.consume.pe_param)
        entry = sd.get(entry)
    return defined
