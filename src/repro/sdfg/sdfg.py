"""The top-level SDFG: a state machine of dataflow states (paper §3).

``SDFG = (S, T, s0)``: states, interstate transitions (condition +
symbol assignments), and a start state.  After a state's dataflow
completes, outgoing transitions are evaluated; the first true condition
selects the next state, its assignments updating the global symbol
environment (Appendix A.2.3).
"""

from __future__ import annotations

import re
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple, Union

from repro.graph import Edge, OrderedMultiDiGraph
from repro.instrumentation.types import InstrumentationType
from repro.sdfg import dtypes
from repro.sdfg.data import Array, Data, Scalar, Stream
from repro.sdfg.dtypes import StorageType, typeclass
from repro.sdfg.nodes import AccessNode, EntryNode, NestedSDFG
from repro.sdfg.state import SDFGState
from repro.symbolic import BoolExpr, Expr, parse_expr, sympify
from repro.symbolic.expr import TRUE


class InterstateEdge:
    """State-transition annotation: guard condition + symbol assignments."""

    def __init__(
        self,
        condition: Union[str, BoolExpr, None] = None,
        assignments: Optional[Mapping[str, Union[str, int, Expr]]] = None,
    ):
        if condition is None:
            self.condition: BoolExpr = TRUE
        elif isinstance(condition, str):
            parsed = parse_expr(condition)
            self.condition = parsed  # may be relational/bool expression
        else:
            self.condition = condition
        self.assignments: Dict[str, Expr] = {
            k: sympify(v) for k, v in (assignments or {}).items()
        }

    def is_unconditional(self) -> bool:
        return self.condition == TRUE

    @property
    def free_symbols(self) -> frozenset:
        out = self.condition.free_symbols
        for v in self.assignments.values():
            out |= v.free_symbols
        return out

    def clone(self) -> "InterstateEdge":
        return InterstateEdge(self.condition, dict(self.assignments))

    def __repr__(self) -> str:
        parts = []
        if not self.is_unconditional():
            parts.append(str(self.condition))
        if self.assignments:
            parts.append("; ".join(f"{k}={v}" for k, v in self.assignments.items()))
        return "InterstateEdge(" + " | ".join(parts) + ")"


class SDFG(OrderedMultiDiGraph[SDFGState, InterstateEdge]):
    """A Stateful Dataflow Multigraph."""

    def __init__(
        self,
        name: str,
        symbols: Optional[Mapping[str, typeclass]] = None,
        constants: Optional[Mapping[str, Any]] = None,
    ):
        super().__init__()
        if not re.match(r"^[A-Za-z_][A-Za-z0-9_]*$", name):
            raise ValueError(f"invalid SDFG name {name!r}")
        self.name = name
        #: Container descriptors by name (the paper's global data space).
        self.arrays: Dict[str, Data] = {}
        #: Declared scalar symbols (sizes, runtime parameters) and types.
        self.symbols: Dict[str, typeclass] = dict(symbols or {})
        #: Compile-time constants folded into generated code.
        self.constants: Dict[str, Any] = dict(constants or {})
        self.start_state: Optional[SDFGState] = None
        #: Set when nested inside another SDFG.
        self.parent: Optional[SDFGState] = None
        self.parent_node: Optional[NestedSDFG] = None
        #: History of applied transformations (DIODE's "optimization
        #: version control", §4.2).
        self.transformation_history: List[str] = []
        #: Instrumentation attached to the whole SDFG (timed per call).
        self.instrument = InstrumentationType.NONE
        self._compiled_cache = None

    # ------------------------------------------------------------------ states
    def add_state(self, name: Optional[str] = None, is_start: bool = False) -> SDFGState:
        if name is None:
            name = f"state_{self.number_of_nodes()}"
        if any(s.name == name for s in self.nodes()):
            base = name
            k = 0
            while any(s.name == name for s in self.nodes()):
                k += 1
                name = f"{base}_{k}"
        state = SDFGState(name, sdfg=self)
        self.add_node(state)
        if is_start or self.start_state is None:
            self.start_state = state
        return state

    def add_state_before(
        self, state: SDFGState, name: Optional[str] = None
    ) -> SDFGState:
        """Insert a new state before ``state``, rerouting incoming edges."""
        new = self.add_state(name)
        for e in self.in_edges(state):
            self.remove_edge(e)
            self.add_edge(e.src, new, e.data)
        self.add_edge(new, state, InterstateEdge())
        if self.start_state is state:
            self.start_state = new
        return new

    def add_state_after(self, state: SDFGState, name: Optional[str] = None) -> SDFGState:
        new = self.add_state(name)
        for e in self.out_edges(state):
            self.remove_edge(e)
            self.add_edge(new, e.dst, e.data)
        self.add_edge(state, new, InterstateEdge())
        return new

    def add_loop(
        self,
        before: Optional[SDFGState],
        body: SDFGState,
        after: Optional[SDFGState],
        itervar: str,
        init: Union[str, int, Expr],
        condition: str,
        increment: Union[str, Expr],
    ) -> Tuple[SDFGState, SDFGState]:
        """Build the canonical loop pattern around ``body``.

        Returns ``(guard, after)``.  ``before`` / ``after`` are created
        when None.
        """
        if before is None:
            before = self.add_state(f"{itervar}_init")
        if after is None:
            after = self.add_state(f"{itervar}_end")
        guard = self.add_state(f"{itervar}_guard")
        self.add_edge(before, guard, InterstateEdge(assignments={itervar: init}))
        self.add_edge(guard, body, InterstateEdge(condition=condition))
        cond = parse_expr(condition)
        from repro.symbolic.expr import Not

        self.add_edge(guard, after, InterstateEdge(condition=Not.make(cond)))
        self.add_edge(body, guard, InterstateEdge(assignments={itervar: increment}))
        return guard, after

    # ------------------------------------------------------------------- data
    def _register(self, name: str, desc: Data, find_new_name: bool) -> str:
        if not re.match(r"^[A-Za-z_][A-Za-z0-9_]*$", name):
            raise ValueError(f"invalid container name {name!r}")
        if name in self.arrays:
            if not find_new_name:
                raise ValueError(f"container {name!r} already exists")
            name = self._fresh_name(name)
        desc.validate()
        self.arrays[name] = desc
        return name

    def _fresh_name(self, base: str) -> str:
        k = 0
        name = base
        while name in self.arrays or name in self.symbols:
            k += 1
            name = f"{base}_{k}"
        return name

    def add_array(
        self,
        name: str,
        shape: Sequence,
        dtype: typeclass,
        storage: StorageType = StorageType.Default,
        transient: bool = False,
        strides: Optional[Sequence] = None,
        find_new_name: bool = False,
    ) -> Tuple[str, Array]:
        desc = Array(dtype, shape, transient, storage, strides)
        name = self._register(name, desc, find_new_name)
        self._declare_shape_symbols(desc)
        return name, desc

    def add_transient(
        self,
        name: str,
        shape: Sequence,
        dtype: typeclass,
        storage: StorageType = StorageType.Default,
        strides: Optional[Sequence] = None,
        find_new_name: bool = True,
    ) -> Tuple[str, Array]:
        return self.add_array(
            name, shape, dtype, storage, transient=True, strides=strides,
            find_new_name=find_new_name,
        )

    def add_scalar(
        self,
        name: str,
        dtype: typeclass,
        transient: bool = False,
        storage: StorageType = StorageType.Default,
        find_new_name: bool = False,
    ) -> Tuple[str, Scalar]:
        desc = Scalar(dtype, transient, storage)
        name = self._register(name, desc, find_new_name)
        return name, desc

    def add_stream(
        self,
        name: str,
        dtype: typeclass,
        shape: Sequence = (1,),
        buffer_size: int = 0,
        transient: bool = True,
        storage: StorageType = StorageType.Default,
        find_new_name: bool = False,
    ) -> Tuple[str, Stream]:
        desc = Stream(dtype, shape, buffer_size, transient, storage)
        name = self._register(name, desc, find_new_name)
        return name, desc

    def add_datadesc(self, name: str, desc: Data, find_new_name: bool = False) -> str:
        return self._register(name, desc, find_new_name)

    def _declare_shape_symbols(self, desc: Data) -> None:
        for sym in desc.free_symbols:
            self.symbols.setdefault(sym.name, dtypes.int64)

    def add_symbol(self, name: str, stype: typeclass = dtypes.int64) -> None:
        self.symbols[name] = stype

    # ------------------------------------------------------------------ queries
    def states(self) -> List[SDFGState]:
        return self.nodes()

    def all_states_topological(self) -> List[SDFGState]:
        """States in a DFS order from the start state (the state machine
        may be cyclic, so this is exploration order, not a toposort)."""
        from repro.graph import dfs_preorder

        if self.start_state is None:
            return []
        return dfs_preorder(self, [self.start_state])

    def arglist(self) -> Dict[str, Data]:
        """Externally-visible containers, in deterministic order."""
        return {
            name: desc
            for name, desc in sorted(self.arrays.items())
            if not desc.transient
        }

    def free_symbols(self) -> Set[str]:
        """Symbols that must be supplied at invocation."""
        used: Set[str] = set()
        for desc in self.arrays.values():
            used |= {s.name for s in desc.free_symbols}
        defined: Set[str] = set()
        for state in self.nodes():
            for node in state.nodes():
                if isinstance(node, EntryNode):
                    # Dynamic-range connectors define in-scope names.
                    defined.update(
                        c for c in node.in_connectors if not c.startswith("IN_")
                    )
                    if hasattr(node, "map"):
                        defined.update(node.map.params)
                        for r in node.map.range.ranges:
                            used |= {s.name for s in r.free_symbols}
                    else:
                        defined.add(node.consume.pe_param)
                        used |= {s.name for s in node.consume.num_pes.free_symbols}
            for e in state.edges():
                used |= {s.name for s in e.data.free_symbols}
        for e in self.edges():
            used |= {s.name for s in e.data.free_symbols}
            defined.update(e.data.assignments.keys())
        return (used - defined - set(self.constants)) & set(self.symbols) | (
            used - defined - set(self.constants) - set(self.arrays)
        )

    def transients(self) -> Dict[str, Data]:
        return {n: d for n, d in self.arrays.items() if d.transient}

    def used_data_names(self) -> Set[str]:
        names: Set[str] = set()
        for state in self.nodes():
            for node in state.nodes():
                if isinstance(node, AccessNode):
                    names.add(node.data)
        return names

    # --------------------------------------------------------------- pipeline
    def validate(self) -> None:
        from repro.sdfg.validation import validate_sdfg

        validate_sdfg(self)

    def propagate(self) -> None:
        from repro.sdfg.propagation import propagate_memlets_sdfg

        propagate_memlets_sdfg(self)

    def apply_strict_transformations(self) -> int:
        """Repeatedly apply always-beneficial transformations (paper App. D:
        ``RedundantArray``, ``StateFusion``, ``InlineSDFG``)."""
        from repro.transformations.optimizer import apply_strict_transformations

        return apply_strict_transformations(self)

    def apply_transformations(self, xforms, options=None, validate: bool = True) -> int:
        from repro.transformations.optimizer import apply_transformations

        return apply_transformations(self, xforms, options=options, validate=validate)

    def compile(self, backend: str = "python", validate: bool = True, **options):
        from repro.codegen.compiler import compile_sdfg

        return compile_sdfg(self, backend=backend, validate=validate, **options)

    def __call__(self, **kwargs):
        """Compile (cached) and execute with keyword arguments."""
        if self._compiled_cache is None:
            self._compiled_cache = self.compile()
        return self._compiled_cache(**kwargs)

    def invalidate_compiled(self) -> None:
        self._compiled_cache = None

    def generate_code(self, backend: str = "cpp") -> str:
        from repro.codegen.compiler import generate_code

        return generate_code(self, backend)

    # ---------------------------------------------------------------- serialization
    def to_json(self) -> dict:
        from repro.sdfg.serialize import sdfg_to_json

        return sdfg_to_json(self)

    @staticmethod
    def from_json(obj: dict) -> "SDFG":
        from repro.sdfg.serialize import sdfg_from_json

        return sdfg_from_json(obj)

    def save(self, path: str) -> None:
        import json

        with open(path, "w") as f:
            json.dump(self.to_json(), f, indent=2)

    @staticmethod
    def load(path: str) -> "SDFG":
        import json

        with open(path) as f:
            return SDFG.from_json(json.load(f))

    def to_dot(self) -> str:
        from repro.sdfg.viz import sdfg_to_dot

        return sdfg_to_dot(self)

    def summary(self) -> str:
        from repro.sdfg.viz import sdfg_summary

        return sdfg_summary(self)

    def __repr__(self) -> str:
        return (
            f"SDFG({self.name!r}, states={self.number_of_nodes()}, "
            f"arrays={len(self.arrays)})"
        )
