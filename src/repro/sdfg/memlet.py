"""Memlets: data-movement descriptors annotating dataflow edges.

A memlet records *what moves*: the container, the subset of elements
read/written, the number of accesses (volume, used for performance
modeling), an optional write-conflict-resolution function, and — for
copies between differently-indexed containers — the subset on the other
side (``other_subset``, the paper's *reindex* function, Appendix A.1).

Fig. 3 of the paper dissects the memlet's Python syntax::

    var << A(1, WCR)[0:N]
           ^  ^  ^    ^--- subset
           |  |  +-------- conflict resolution
           |  +----------- number of accesses
           +-------------- data container
"""

from __future__ import annotations

from typing import Mapping, Optional, Union

from repro.sdfg.dtypes import ReductionType, canonicalize_wcr, detect_reduction_type
from repro.symbolic import Expr, Integer, Subset, sympify


class Memlet:
    """Data-movement annotation for one dataflow edge."""

    def __init__(
        self,
        data: Optional[str] = None,
        subset: Optional[Union[str, Subset]] = None,
        other_subset: Optional[Union[str, Subset]] = None,
        volume: Optional[Union[int, str, Expr]] = None,
        dynamic: bool = False,
        wcr: Optional[str] = None,
    ):
        """
        :param data: Name of the container the data flows from/to.
        :param subset: Element subset on the container; ``None`` on an
            *empty memlet* (pure ordering dependency, carries no data).
        :param other_subset: Subset on the opposite side of a copy
            (reindexing), when both endpoints are containers.
        :param volume: Number of element accesses this edge performs; by
            default the subset's size.  The paper writes it as ``A(1)[...]``.
        :param dynamic: Volume is a runtime quantity (the paper's ``dyn``
            annotation, e.g. consume scopes and data-dependent accesses);
            ``volume`` is then a best-effort upper bound.
        :param wcr: Write-conflict resolution: a ``lambda a, b: ...``
            string (or alias like ``"sum"``) combining the old and new
            value on conflicting writes.
        """
        self.data = data
        if isinstance(subset, str):
            subset = Subset.from_string(subset)
        self.subset: Optional[Subset] = subset
        if isinstance(other_subset, str):
            other_subset = Subset.from_string(other_subset)
        self.other_subset: Optional[Subset] = other_subset
        self.wcr = canonicalize_wcr(wcr)
        self.dynamic = dynamic
        if volume is not None:
            self._volume: Optional[Expr] = sympify(volume)
        else:
            self._volume = None

    # -- constructors ----------------------------------------------------------
    @staticmethod
    def simple(data: str, subset: Union[str, Subset], wcr: Optional[str] = None) -> "Memlet":
        return Memlet(data=data, subset=subset, wcr=wcr)

    @staticmethod
    def from_array(name: str, desc) -> "Memlet":
        """Memlet covering an entire container."""
        return Memlet(data=name, subset=desc.full_subset())

    @staticmethod
    def empty() -> "Memlet":
        """Pure ordering dependency (paper Fig. 7 uses empty memlets to
        keep systolic PEs inside one scope)."""
        return Memlet()

    # -- queries ---------------------------------------------------------------
    def is_empty(self) -> bool:
        return self.data is None and self.subset is None

    @property
    def volume(self) -> Expr:
        if self._volume is not None:
            return self._volume
        if self.subset is None:
            return Integer(0)
        return self.subset.num_elements()

    @volume.setter
    def volume(self, value) -> None:
        self._volume = sympify(value) if value is not None else None

    @property
    def num_accesses(self) -> Expr:
        """Paper terminology alias for :attr:`volume`."""
        return self.volume

    def reduction_type(self) -> Optional[ReductionType]:
        if self.wcr is None:
            return None
        return detect_reduction_type(self.wcr)

    @property
    def free_symbols(self) -> frozenset:
        out: frozenset = frozenset()
        if self.subset is not None:
            out |= self.subset.free_symbols
        if self.other_subset is not None:
            out |= self.other_subset.free_symbols
        if self._volume is not None:
            out |= self._volume.free_symbols
        return out

    # -- manipulation ------------------------------------------------------------
    def subs(self, mapping: Mapping) -> "Memlet":
        m = Memlet(
            data=self.data,
            subset=self.subset.subs(mapping) if self.subset is not None else None,
            other_subset=(
                self.other_subset.subs(mapping)
                if self.other_subset is not None
                else None
            ),
            volume=self._volume.subs(mapping) if self._volume is not None else None,
            dynamic=self.dynamic,
            wcr=self.wcr,
        )
        return m

    def clone(self) -> "Memlet":
        return Memlet(
            data=self.data,
            subset=self.subset,
            other_subset=self.other_subset,
            volume=self._volume,
            dynamic=self.dynamic,
            wcr=self.wcr,
        )

    def __eq__(self, other) -> bool:
        if not isinstance(other, Memlet):
            return NotImplemented
        return (
            self.data == other.data
            and self.subset == other.subset
            and self.other_subset == other.other_subset
            and self.wcr == other.wcr
            and self.dynamic == other.dynamic
        )

    def __hash__(self) -> int:
        return hash((self.data, self.subset, self.other_subset, self.wcr, self.dynamic))

    def __repr__(self) -> str:
        if self.is_empty():
            return "Memlet(∅)"
        parts = [f"{self.data}[{self.subset}]"]
        if self.dynamic:
            parts.append("(dyn)")
        if self.wcr is not None:
            parts.append(f"(CR: {self.wcr})")
        if self.other_subset is not None:
            parts.append(f"-> [{self.other_subset}]")
        return "Memlet(" + " ".join(parts) + ")"
