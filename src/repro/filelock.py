"""Cross-process file locking for the on-disk caches.

The :class:`~repro.codegen.progcache.ProgramCache` and
:class:`~repro.tuning.cache.TuningCache` disk tiers already write
atomically (``os.replace``), which is enough for single-writer use.  The
worker pool of :mod:`repro.serve` breaks that assumption: many worker
processes share one cache directory, and concurrent *LRU eviction* and
*corrupt-entry quarantine* race — two processes can both decide to evict
the same set of files, or a reader can quarantine an entry a writer is
mid-refresh on.  :class:`FileLock` serializes those multi-file critical
sections.

Implementation: ``fcntl.flock`` on a dedicated ``.lock`` file when the
platform has it (Linux/macOS — always true for this repo's CI), with an
``O_CREAT|O_EXCL`` spin-lock fallback elsewhere.  The fallback breaks
stale locks older than ``stale_after`` seconds so a killed process never
wedges the cache directory — exactly the crash model the worker pool
operates under.
"""

from __future__ import annotations

import errno
import os
import time
from typing import Optional

try:  # POSIX
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]


class LockTimeout(OSError):
    """The lock could not be acquired within ``timeout`` seconds."""


class FileLock:
    """An advisory, cross-process, non-reentrant file lock.

    Usage::

        with FileLock(os.path.join(cache_dir, ".lock")):
            ...  # multi-file critical section (eviction, quarantine)

    Locking is best-effort by design: a cache must *never* fail a
    compile because of lock trouble, so callers that want that behavior
    use :meth:`acquire` with ``best_effort=True`` (the default through
    the context manager is strict).
    """

    def __init__(self, path: str, timeout: float = 10.0, poll: float = 0.005,
                 stale_after: float = 60.0):
        self.path = path
        self.timeout = timeout
        self.poll = poll
        self.stale_after = stale_after
        self._fd: Optional[int] = None
        self._owns_file = False

    @property
    def held(self) -> bool:
        return self._fd is not None

    # ----------------------------------------------------------- acquire
    def acquire(self, timeout: Optional[float] = None, best_effort: bool = False) -> bool:
        """Acquire the lock; returns True on success.

        With ``best_effort=True`` failures (timeout, unwritable
        directory) return False instead of raising, letting cache code
        degrade to today's lock-free behavior.
        """
        if self._fd is not None:
            raise RuntimeError(f"FileLock({self.path!r}) is not reentrant")
        deadline = time.monotonic() + (self.timeout if timeout is None else timeout)
        try:
            if fcntl is not None:
                return self._acquire_flock(deadline)
            return self._acquire_spin(deadline)
        except LockTimeout:
            if best_effort:
                return False
            raise
        except OSError:
            if best_effort:
                return False
            raise

    def _acquire_flock(self, deadline: float) -> bool:
        fd = os.open(self.path, os.O_CREAT | os.O_RDWR, 0o644)
        while True:
            try:
                fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
                self._fd = fd
                return True
            except OSError as err:
                if err.errno not in (errno.EAGAIN, errno.EACCES):
                    os.close(fd)
                    raise
                if time.monotonic() >= deadline:
                    os.close(fd)
                    raise LockTimeout(
                        f"timed out waiting for file lock {self.path!r}"
                    )
                time.sleep(self.poll)

    def _acquire_spin(self, deadline: float) -> bool:  # pragma: no cover
        while True:
            try:
                fd = os.open(self.path, os.O_CREAT | os.O_EXCL | os.O_RDWR, 0o644)
                os.write(fd, str(os.getpid()).encode())
                self._fd = fd
                self._owns_file = True
                return True
            except FileExistsError:
                # Break locks abandoned by a crashed holder.
                try:
                    if time.time() - os.path.getmtime(self.path) > self.stale_after:
                        os.unlink(self.path)
                        continue
                except OSError:
                    pass
                if time.monotonic() >= deadline:
                    raise LockTimeout(
                        f"timed out waiting for file lock {self.path!r}"
                    )
                time.sleep(self.poll)

    # ----------------------------------------------------------- release
    def release(self) -> None:
        fd, self._fd = self._fd, None
        if fd is None:
            return
        try:
            if fcntl is not None:
                fcntl.flock(fd, fcntl.LOCK_UN)
        except OSError:
            pass
        finally:
            try:
                os.close(fd)
            except OSError:
                pass
            if self._owns_file:
                self._owns_file = False
                try:
                    os.unlink(self.path)
                except OSError:
                    pass

    # ----------------------------------------------------- context manager
    def __enter__(self) -> "FileLock":
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()


def cache_lock(cache_dir: str) -> FileLock:
    """The conventional lock guarding one cache directory."""
    return FileLock(os.path.join(cache_dir, ".lock"))
