"""repro — a from-scratch reproduction of Stateful Dataflow Multigraphs
(Ben-Nun et al., SC'19): data-centric parallel programming with a
graph-transformation-based optimization workflow.

Typical usage::

    import numpy as np
    import repro as rp

    N = rp.symbol("N")

    @rp.program
    def vadd(A: rp.float64[N], B: rp.float64[N], C: rp.float64[N]):
        for i in rp.map[0:N]:
            with rp.tasklet:
                a << A[i]
                b << B[i]
                c >> C[i]
                c = a + b

    a, b, c = (np.random.rand(1024) for _ in range(3))
    vadd(a, b, c)

See DESIGN.md for the full system inventory and the per-experiment
reproduction index.
"""

from repro.sdfg import (
    SDFG,
    InterstateEdge,
    InvalidSDFGError,
    Language,
    Memlet,
    ReductionType,
    ScheduleType,
    SDFGState,
    StorageType,
)
from repro.sdfg.dtypes import (
    bool_,
    complex64,
    complex128,
    float32,
    float64,
    int8,
    int16,
    int32,
    int64,
    typeclass,
    uint8,
    uint16,
    uint32,
    uint64,
)
from repro.frontend import (
    DaceProgram,
    dyn,
    map,  # noqa: A004
    program,
    replaces,
    symbol,
    tasklet,
)
from repro.symbolic import Range, Subset, Symbol

__version__ = "1.0.0"

#: WCR aliases usable in memlet declarations: ``out >> b(1, rp.sum)[i]``.
sum = "sum"  # noqa: A001
product = "product"
min = "min"  # noqa: A001
max = "max"  # noqa: A001

__all__ = [
    "DaceProgram",
    "InterstateEdge",
    "InvalidSDFGError",
    "Language",
    "Memlet",
    "Range",
    "ReductionType",
    "SDFG",
    "SDFGState",
    "ScheduleType",
    "StorageType",
    "Subset",
    "Symbol",
    "bool_",
    "complex64",
    "complex128",
    "dyn",
    "float32",
    "float64",
    "int8",
    "int16",
    "int32",
    "int64",
    "map",
    "max",
    "min",
    "product",
    "program",
    "replaces",
    "sum",
    "symbol",
    "tasklet",
    "typeclass",
    "uint8",
    "uint16",
    "uint32",
    "uint64",
]
