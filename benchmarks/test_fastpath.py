"""Execution fast-path benchmarks (DESIGN.md §9).

Measures the three hot-path optimizations directly, without the
pytest-benchmark fixture so the perf CI job needs only numpy + pytest:

* **Compilation cache**: cold vs warm ``compile_sdfg`` on gemm — the
  warm compile skips validation, propagation, and codegen.
* **WCR scatter**: the histogram kernel through the ``np.add.at``
  lowering vs the forced loop lowering (``vectorize=False``).
* **Fidelity**: the five fundamental kernels stay within 1e-8 of the
  reference interpreter while taking the fast paths.

When ``REPRO_BENCH_REPORTS`` names a directory, a ``BENCH_pr4.json``
summary is written there for the CI artifact.
"""

import json
import os
import time

import numpy as np

from repro.codegen import compile_sdfg
from repro.codegen.progcache import ProgramCache
from repro.codegen.python_gen import PythonGenerator
from repro.runtime import SDFGInterpreter
from repro.sdfg.propagation import propagate_memlets_sdfg
from repro.sdfg.serialize import sdfg_from_json, sdfg_to_json
from repro.workloads import kernels

RESULTS = {}


def _record(name: str, value: float) -> None:
    RESULTS[name] = value


def _dump_results() -> None:
    target = os.environ.get("REPRO_BENCH_REPORTS", "")
    if not target:
        return
    os.makedirs(target, exist_ok=True)
    with open(os.path.join(target, "BENCH_pr4.json"), "w") as f:
        json.dump(RESULTS, f, indent=1, sort_keys=True)


class TestCompileCache:
    def test_warm_compile_beats_cold(self):
        cache = ProgramCache()
        t0 = time.perf_counter()
        cold = compile_sdfg(kernels.matmul_sdfg(), cache=cache)
        cold_s = time.perf_counter() - t0
        assert not cold.cache_hit

        # Warm once so exec'd-callable attachment is in place, then time.
        compile_sdfg(kernels.matmul_sdfg(), cache=cache)
        t0 = time.perf_counter()
        warm = compile_sdfg(kernels.matmul_sdfg(), cache=cache)
        warm_s = time.perf_counter() - t0
        assert warm.cache_hit
        root = f"compile:{warm.sdfg.name}"
        ph = [
            p[len(root) + 1 :]
            for p in warm.compile_report.flat()
            if p.startswith(f"{root}/phase:")
        ]
        assert not any("codegen" in p for p in ph), ph

        _record("compile_cold_s", cold_s)
        _record("compile_warm_s", warm_s)
        _record("compile_speedup", cold_s / warm_s if warm_s else float("inf"))
        # CI enforces warm <= 25% of cold; keep a generous local bound so
        # loaded machines do not flake.
        assert warm_s < cold_s, (cold_s, warm_s)

        data = kernels.matmul_data(32)
        warm(**data)
        np.testing.assert_allclose(
            data["C"], kernels.matmul_reference(data), rtol=1e-12
        )


class TestHistogramScatter:
    H, W, BINS = 512, 512, 256

    def _loop_main(self):
        """Force the loop lowering (vectorize=False) and exec it."""
        work = sdfg_from_json(sdfg_to_json(kernels.histogram_sdfg()))
        propagate_memlets_sdfg(work)
        src = PythonGenerator(work, vectorize=False).generate()
        assert "np.add.at" not in src
        ns: dict = {}
        exec(compile(src, "<loop-histogram>", "exec"), ns)
        return ns["main"]

    def test_scatter_beats_loop(self):
        data = kernels.histogram_data(self.H, self.W, self.BINS)
        ref = kernels.histogram_reference(data["img"], self.BINS)

        compiled = compile_sdfg(kernels.histogram_sdfg())
        fast = {k: v.copy() for k, v in data.items()}
        compiled(H=self.H, W=self.W, **fast)  # warm the marshaling plan
        fast["hist"][:] = 0
        t0 = time.perf_counter()
        compiled(H=self.H, W=self.W, **fast)
        fast_s = time.perf_counter() - t0
        assert np.array_equal(fast["hist"], ref)

        loop_main = self._loop_main()
        slow = {k: v.copy() for k, v in data.items()}
        t0 = time.perf_counter()
        loop_main(
            img=slow["img"], hist=slow["hist"],
            H=self.H, W=self.W, BINS=self.BINS,
        )
        loop_s = time.perf_counter() - t0
        assert np.array_equal(slow["hist"], ref)

        _record("hist_scatter_s", fast_s)
        _record("hist_loop_s", loop_s)
        _record("hist_speedup", loop_s / fast_s if fast_s else float("inf"))
        # The scatter evaluates 512x512 updates in one ufunc call; even on
        # noisy CI machines it is far more than 2x the scalar loop.
        assert fast_s * 2 < loop_s, (fast_s, loop_s)


class TestFundamentalFidelity:
    """All five fundamental kernels match the interpreter at 1e-8."""

    def _check(self, name, sdfg, syms, data):
        cg = {k: (v.copy() if isinstance(v, np.ndarray) else v) for k, v in data.items()}
        it = {k: (v.copy() if isinstance(v, np.ndarray) else v) for k, v in data.items()}
        compile_sdfg(sdfg)(**syms, **cg)
        SDFGInterpreter(sdfg)(**syms, **it)
        for k, v in cg.items():
            if isinstance(v, np.ndarray):
                np.testing.assert_allclose(v, it[k], rtol=0, atol=1e-8, err_msg=k)
        _record(f"fidelity_{name}", 1.0)

    def test_all_five(self):
        self._check("matmul", kernels.matmul_sdfg(), {}, kernels.matmul_data(32))
        self._check(
            "jacobi2d", kernels.jacobi2d_sdfg(), {"T": 4}, kernels.jacobi2d_data(24)
        )
        self._check(
            "histogram",
            kernels.histogram_sdfg(),
            {"H": 48, "W": 32},
            kernels.histogram_data(48, 32),
        )
        self._check("query", kernels.query_sdfg(), {}, kernels.query_data(1024))
        spmv_data, _csr = kernels.spmv_data(128, 8)
        self._check("spmv", kernels.spmv_sdfg(), {}, spmv_data)


def test_zz_dump_results():
    """Runs last (name order): persist the collected numbers."""
    _dump_results()
