"""Fig. 17 — BFS vs graph-framework baselines on five graphs.

Dataset substitution (DESIGN.md §1 / Table 5): synthetic generators
reproduce the characteristic regimes — road networks (high diameter,
degree <= 4), social networks (heavy-tailed, low diameter), and a
Kronecker graph.  Baseline roles: level-synchronous push (Gluon's
bfs_push) and direction-optimizing BFS (Galois SyncTile).

Expected shape: the frameworks win or tie on the social/Kronecker
graphs; the SDFG's fine-grained data-driven scheduling is competitive
on road networks (paper: up to 2x faster there).  Absolute times on
this testbed compare a compiled-Python SDFG backend against NumPy-bulk
baselines, so only relative per-graph *trends* are meaningful.
"""

import numpy as np
import pytest

from repro.library.graphs import (
    bfs_direction_optimizing,
    bfs_level_sync,
    bfs_reference,
    kronecker_graph,
    road_network,
    social_network,
)
from repro.workloads.bfs import build_bfs_sdfg
from conftest import run_once

GRAPHS = {
    "usa(road)": lambda: road_network(40, keep=0.7, seed=1),
    "osm-eur(road)": lambda: road_network(48, keep=0.65, seed=2),
    "soc-lj(social)": lambda: social_network(1200, 12, seed=3),
    "twitter(social)": lambda: social_network(1500, 18, seed=4),
    "kron(synthetic)": lambda: kronecker_graph(10, 8, seed=5),
}

ROLES = ("sdfg", "gluon(level-sync)", "galois(dir-opt)")


@pytest.fixture(scope="module")
def graphs():
    return {name: maker() for name, maker in GRAPHS.items()}


@pytest.fixture(scope="module")
def compiled_bfs():
    return build_bfs_sdfg(optimized=True).compile()


@pytest.mark.parametrize("role", ROLES)
@pytest.mark.parametrize("gname", sorted(GRAPHS))
def test_fig17(benchmark, results_table, graphs, compiled_bfs, gname, role):
    g = graphs[gname]
    ref = bfs_reference(g, 0)
    if role == "sdfg":
        depth = np.zeros(g.num_vertices, np.int32)

        def run():
            compiled_bfs(
                G_row=g.indptr, G_col=g.indices, depth=depth, src=0,
                V=g.num_vertices, E=g.num_edges,
            )
            return depth
    elif role == "gluon(level-sync)":
        run = lambda: bfs_level_sync(g, 0)  # noqa: E731
    else:
        run = lambda: bfs_direction_optimizing(g, 0)  # noqa: E731

    result = run_once(benchmark, run)
    np.testing.assert_array_equal(result, ref)
    results_table.append(("fig17", gname, role, benchmark.stats.stats.mean))
    benchmark.extra_info["graph"] = gname
    benchmark.extra_info["V"] = g.num_vertices
    benchmark.extra_info["E"] = g.num_edges
