"""Fig. 14 — the five fundamental kernels on CPU (measured), GPU and
FPGA (machine-model simulated).

Role mapping: the loop references play the naive-compiler baselines
(GCC/Clang/ICC on naive loops); NumPy/BLAS plays the vendor libraries
(MKL on CPU, CUBLAS/cuSPARSE on GPU); SDFG rows are transformed
data-centric programs (the paper's §6.1 results employ data-centric
transformations).

Expected shapes (paper): MM ~98.6% of MKL; SpMV ~ MKL; Histogram ~8x
the naive compiler; Query beats element-at-a-time baselines; naive HLS
is orders of magnitude behind the FPGA-mapped SDFG.
"""

import time

import numpy as np
import pytest

from repro.library.sparse import CSRMatrix
from repro.runtime.perfmodel import simulate
from repro.transformations import (
    FPGATransform,
    GPUTransform,
    MapReduceFusion,
    Vectorization,
    apply_transformations,
)
from repro.workloads import kernels
from conftest import maybe_dump_report, run_once

SIZES = {
    "matmul": 192,
    "jacobi_n": 192,
    "jacobi_t": 20,
    "hist_h": 384,
    "hist_w": 384,
    "query_n": 1 << 18,
    "spmv_rows": 1024,
    "spmv_nnz_per_row": 16,
}


# ------------------------------------------------------------- CPU measured
class TestFig14aCPU:
    def test_mm_sdfg(self, benchmark, results_table):
        n = SIZES["matmul"]
        data = kernels.matmul_data(n)
        sdfg = kernels.optimize_matmul(kernels.matmul_sdfg())
        comp = sdfg.compile()
        run_once(benchmark, lambda: comp(**data), rounds=3)
        results_table.append(("fig14a", "MM", "sdfg", benchmark.stats.stats.mean))
        maybe_dump_report(comp, "fig14a_mm_sdfg")

    def test_mm_mkl_role(self, benchmark, results_table):
        n = SIZES["matmul"]
        data = kernels.matmul_data(n)
        run_once(benchmark, lambda: data["A"] @ data["B"], rounds=3)
        results_table.append(("fig14a", "MM", "mkl(np.dot)", benchmark.stats.stats.mean))

    def test_mm_naive_role(self, benchmark, results_table):
        n = 48  # naive loops cannot afford the full size; scaled
        data = kernels.matmul_data(n)

        def loops():
            A, B, C = data["A"], data["B"], np.zeros((n, n))
            for i in range(n):
                for j in range(n):
                    acc = 0.0
                    for k in range(n):
                        acc += A[i, k] * B[k, j]
                    C[i, j] = acc

        run_once(benchmark, loops)
        results_table.append(("fig14a", "MM", "naive-loops(48)", benchmark.stats.stats.mean))

    def test_mm_sdfg_close_to_library(self):
        """The headline §6.2 claim: transformed SDFG within striking
        distance of the tuned library (paper: 98.6% of MKL)."""
        n = SIZES["matmul"]
        data = kernels.matmul_data(n)
        sdfg = kernels.optimize_matmul(kernels.matmul_sdfg())
        comp = sdfg.compile()
        comp(**data)  # warm
        t0 = time.perf_counter()
        comp(**data)
        t_sdfg = time.perf_counter() - t0
        t0 = time.perf_counter()
        data["A"] @ data["B"]
        t_lib = time.perf_counter() - t0
        assert t_sdfg < 5 * t_lib  # same performance class

    def test_jacobi_sdfg(self, benchmark, results_table):
        data = kernels.jacobi2d_data(SIZES["jacobi_n"])
        sdfg = kernels.jacobi2d_sdfg()
        comp = sdfg.compile()
        run_once(benchmark, lambda: comp(A=data["A"], T=SIZES["jacobi_t"]), rounds=3)
        results_table.append(("fig14a", "Jacobi", "sdfg", benchmark.stats.stats.mean))

    def test_jacobi_numpy_role(self, benchmark, results_table):
        data = kernels.jacobi2d_data(SIZES["jacobi_n"])
        run_once(
            benchmark,
            lambda: kernels.jacobi2d_reference(data["A"], SIZES["jacobi_t"]),
            rounds=3,
        )
        results_table.append(("fig14a", "Jacobi", "numpy", benchmark.stats.stats.mean))

    def test_histogram_sdfg(self, benchmark, results_table):
        data = kernels.histogram_data(SIZES["hist_h"], SIZES["hist_w"])
        comp = kernels.histogram_sdfg().compile()

        def run():
            data["hist"][:] = 0
            comp(**data)

        run_once(benchmark, run)
        results_table.append(("fig14a", "Histogram", "sdfg", benchmark.stats.stats.mean))

    def test_histogram_numpy_role(self, benchmark, results_table):
        data = kernels.histogram_data(SIZES["hist_h"], SIZES["hist_w"])
        run_once(
            benchmark, lambda: kernels.histogram_reference(data["img"], 256), rounds=3
        )
        results_table.append(("fig14a", "Histogram", "numpy", benchmark.stats.stats.mean))

    def test_query_sdfg(self, benchmark, results_table):
        data = kernels.query_data(SIZES["query_n"])
        comp = kernels.query_sdfg().compile()

        def run():
            data["size"][:] = 0
            comp(**data)

        run_once(benchmark, run)
        results_table.append(("fig14a", "Query", "sdfg", benchmark.stats.stats.mean))

    def test_query_numpy_role(self, benchmark, results_table):
        data = kernels.query_data(SIZES["query_n"])
        run_once(benchmark, lambda: data["col"][data["col"] <= 0.5], rounds=3)
        results_table.append(("fig14a", "Query", "numpy", benchmark.stats.stats.mean))

    def test_spmv_sdfg(self, benchmark, results_table):
        data, csr = kernels.spmv_data(SIZES["spmv_rows"], SIZES["spmv_nnz_per_row"])
        comp = kernels.spmv_sdfg().compile()
        run_once(benchmark, lambda: comp(**data))
        results_table.append(("fig14a", "SpMV", "sdfg", benchmark.stats.stats.mean))

    def test_spmv_mkl_role(self, benchmark, results_table):
        data, csr = kernels.spmv_data(SIZES["spmv_rows"], SIZES["spmv_nnz_per_row"])
        run_once(benchmark, lambda: csr.spmv(data["x"]), rounds=3)
        results_table.append(("fig14a", "SpMV", "mkl(scipy)", benchmark.stats.stats.mean))


# ------------------------------------------------------------ GPU simulated
KERNEL_SDFGS = {
    "MM": lambda: kernels.optimize_matmul(kernels.matmul_sdfg()),
    "Jacobi": kernels.jacobi2d_sdfg,
    "Histogram": kernels.histogram_sdfg,
    "Query": kernels.query_sdfg,
    "SpMV": kernels.spmv_sdfg,
}

KERNEL_SYMBOLS = {
    "MM": {"M": 2048, "K": 2048, "N": 2048},
    "Jacobi": {"N": 2048, "T": 1024},
    "Histogram": {"H": 8192, "W": 8192, "BINS": 256},
    "Query": {"N": 1 << 26},
    "SpMV": {"H": 8192, "W": 8192, "nnz": 1 << 25},
}


@pytest.mark.parametrize("name", sorted(KERNEL_SDFGS))
def test_fig14b_gpu_model(benchmark, results_table, name):
    sdfg = KERNEL_SDFGS[name]()
    apply_transformations(sdfg, GPUTransform, validate=False)
    rep = run_once(benchmark, simulate, sdfg, "gpu", KERNEL_SYMBOLS[name])
    assert rep.time > 0
    benchmark.extra_info["modeled_ms"] = rep.time * 1e3
    results_table.append(("fig14b", name, "sdfg-gpu(model)", rep.time))


@pytest.mark.parametrize("name", sorted(KERNEL_SDFGS))
def test_fig14c_fpga_model(benchmark, results_table, name):
    sdfg = KERNEL_SDFGS[name]()
    apply_transformations(sdfg, FPGATransform, validate=False)
    syms = KERNEL_SYMBOLS[name]
    rep = run_once(benchmark, simulate, sdfg, "fpga", syms)
    naive = simulate(sdfg, "fpga", syms, naive_fpga=True)
    factor = naive.time / rep.time
    benchmark.extra_info["modeled_ms"] = rep.time * 1e3
    benchmark.extra_info["naive_hls_factor"] = factor
    results_table.append(("fig14c", name, "sdfg-fpga(model)", rep.time))
    results_table.append(("fig14c", name, "naive-hls(model)", naive.time))
    # Paper: MM 4992x over naive HLS; others 10x+.  SpMV's data-dependent
    # ranges leave the model with lower-bound trip counts, shrinking the
    # modeled gap — the win direction still holds.
    assert factor > (1.2 if name == "SpMV" else 3)
