"""Fig. 13a — Polybench on CPU: unoptimized SDFGs vs general-purpose
compilers vs polyhedral compilers.

Role mapping (DESIGN.md §1): plain Python loop nests play the
general-purpose compilers applied to naive C loops; NumPy-vectorized
references play the polyhedral optimizers; the SDFG rows are this
system's *untransformed* code generation (paper §5: the representation
itself exposes the parallelism).

Expected shape: SDFG lands between the naive-loop baseline and the
polyhedral role on parallel kernels (often close to polyhedral), and
near the naive baseline on the sequential solvers — the paper's stated
behavior for cholesky/lu/gemm.
"""

import numpy as np
import pytest

from repro.workloads.polybench import all_kernels, get
from conftest import run_once

ROLES = ("loops", "numpy", "sdfg")


def _make_runner(kernel, role):
    data = kernel.data()
    if role == "sdfg":
        compiled = kernel.make_sdfg().compile()

        def run():
            d = {k: v.copy() for k, v in data.items()}
            kernel.run_sdfg(d, compiled=compiled)
            return d

        return run
    ref = kernel.ref_loops if role == "loops" else kernel.ref_numpy

    def run():
        d = {k: v.copy() for k, v in data.items()}
        ref(d, kernel.sizes)
        return d

    return run


@pytest.mark.parametrize("role", ROLES)
@pytest.mark.parametrize("name", all_kernels())
def test_fig13a(benchmark, results_table, name, role):
    kernel = get(name)
    runner = _make_runner(kernel, role)
    result = run_once(benchmark, runner)
    benchmark.extra_info["figure"] = "fig13a"
    benchmark.extra_info["role"] = role
    results_table.append(("fig13a", name, role, benchmark.stats.stats.mean))
    # Correctness guard: every benchmarked run produces the loop-ref output.
    if role == "sdfg":
        ref = {k: v.copy() for k, v in kernel.data().items()}
        kernel.ref_loops(ref, kernel.sizes)
        for out in kernel.outputs:
            np.testing.assert_allclose(result[out], ref[out], rtol=1e-8, atol=1e-9)
