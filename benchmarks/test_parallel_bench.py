"""Multicore parallel-tier benchmark: serial vs N-worker wall clock.

Measures the generated-Python backend's serial, vectorized, and
parallel(4) artifacts on the parallelism-eligible kernels and records
the results in ``BENCH_parallel.json`` (refreshing the committed drift
baseline when ``REPRO_BENCH_REPORTS`` is set, per
``benchmarks/baselines/README.md``).

The speedup *gate* — parallel(4) at least 2x faster than the
single-worker artifact of the same tier — only means something with
real cores under it, so it is skipped on hosts with fewer than 4 CPUs;
the measurement/baseline test always runs.

Scale with ``REPRO_PARALLEL_BENCH_SIZE`` (default 160).
"""

import json
import os
import time

import numpy as np
import pytest

from repro.codegen.compiler import compile_sdfg
from repro.runtime.parallel import ParallelConfig
from repro.workloads import kernels

BASELINES_DIR = os.path.join(os.path.dirname(__file__), "baselines")
SIZE = int(os.environ.get("REPRO_PARALLEL_BENCH_SIZE", "160"))
GATE_WORKERS = 4
GATE_SPEEDUP = 2.0


def _time_artifact(sdfg, data_factory, repeats=3, **compile_kw):
    compiled = compile_sdfg(sdfg, backend="python", **compile_kw)
    best = float("inf")
    try:
        for _ in range(repeats):
            data = data_factory()
            t0 = time.perf_counter()
            compiled(**data)
            best = min(best, time.perf_counter() - t0)
    finally:
        compiled.close()
    return best


def _cases():
    n = SIZE
    mm = kernels.matmul_data(n)
    hist = kernels.histogram_data(n, n)
    spmv, csr = kernels.spmv_data(n * 4, 24)
    return {
        "matmul": (
            kernels.matmul_sdfg,
            lambda: {**{k: v.copy() for k, v in mm.items()},
                     "M": n, "K": n, "N": n},
        ),
        "histogram": (
            kernels.histogram_sdfg,
            lambda: {**{k: v.copy() for k, v in hist.items()},
                     "H": n, "W": n, "BINS": 256},
        ),
        "spmv": (
            kernels.spmv_sdfg,
            lambda: {**{k: v.copy() for k, v in spmv.items()},
                     "H": n * 4, "W": n * 4, "nnz": csr.nnz},
        ),
    }


def _dump(records) -> None:
    payload = json.dumps(records, indent=1, sort_keys=True)
    target = os.environ.get("REPRO_BENCH_REPORTS", "")
    if not target:
        return
    os.makedirs(target, exist_ok=True)
    with open(os.path.join(target, "BENCH_parallel.json"), "w") as f:
        f.write(payload)
    os.makedirs(BASELINES_DIR, exist_ok=True)
    with open(os.path.join(BASELINES_DIR, "BENCH_parallel.json"), "w") as f:
        f.write(payload)


def test_parallel_tier_measurements(results_table):
    """Record serial / vectorized / parallel wall clock per kernel and
    refresh the drift baseline.  Runs on any host."""
    records = {"host_cpus": os.cpu_count(), "size": SIZE, "kernels": {}}
    for name, (factory, data_factory) in _cases().items():
        serial = _time_artifact(factory(), data_factory, vectorize=False)
        vectorized = _time_artifact(factory(), data_factory)
        parallel = _time_artifact(
            factory(), data_factory,
            parallel=ParallelConfig(workers=GATE_WORKERS),
        )
        records["kernels"][name] = {
            "serial_s": round(serial, 6),
            "vectorized_s": round(vectorized, 6),
            f"parallel{GATE_WORKERS}_s": round(parallel, 6),
            "speedup_vs_serial": round(serial / parallel, 3),
        }
        results_table.append(("parallel", name, "serial", serial))
        results_table.append(("parallel", name, f"parallel[{GATE_WORKERS}]", parallel))
        assert parallel > 0 and serial > 0
    _dump(records)


@pytest.mark.skipif(
    (os.cpu_count() or 1) < GATE_WORKERS,
    reason=f"speedup gate needs >= {GATE_WORKERS} cores",
)
def test_parallel_speedup_gate():
    """On a >=4-core host, 4 workers must halve the wall clock of the
    heavy NumPy-dominated kernel relative to the 1-worker artifact of
    the identical lowering (pool overhead included on both sides)."""
    n = max(SIZE, 256)
    data = kernels.matmul_data(n)

    def make(workers):
        return lambda: {**{k: v.copy() for k, v in data.items()},
                        "M": n, "K": n, "N": n}

    one = _time_artifact(
        kernels.matmul_sdfg(), make(1),
        parallel=ParallelConfig(workers=1),
    )
    four = _time_artifact(
        kernels.matmul_sdfg(), make(GATE_WORKERS),
        parallel=ParallelConfig(workers=GATE_WORKERS),
    )
    assert four < one, f"parallel[{GATE_WORKERS}] ({four:.4f}s) slower than 1-worker ({one:.4f}s)"
    assert one / four >= GATE_SPEEDUP, (
        f"parallel[{GATE_WORKERS}] speedup {one / four:.2f}x below the "
        f"{GATE_SPEEDUP}x gate"
    )


def test_parallel_results_match_serial_at_bench_size():
    """Fidelity at benchmark scale, not just test scale."""
    n = SIZE
    data = kernels.matmul_data(n)
    ref = kernels.matmul_reference(data)
    compiled = compile_sdfg(
        kernels.matmul_sdfg(), backend="python",
        parallel=ParallelConfig(workers=GATE_WORKERS),
    )
    try:
        compiled(**data, M=n, K=n, N=n)
    finally:
        compiled.close()
    np.testing.assert_allclose(data["C"], ref, rtol=1e-8, atol=1e-8)
