"""Fig. 15 — the matrix-multiplication transformation chain (§6.2).

Starting from the Fig. 9b map-reduce SDFG, each chain step applies one
data-centric transformation and re-measures, reproducing the figure's
progression: not every step yields an immediate speedup, but the chain
ends within striking distance of the tuned library (paper: ~536x over
the unoptimized SDFG after 7 steps, 98.6% of MKL after tuning).

Chain steps on this testbed (DESIGN.md §1 maps the paper's steps to the
effective ones here): Unoptimized (tmp tensor + Reduce) ->
MapReduceFusion -> MapExpansion+MapCollapse (the LoopReorder role) ->
MapTiling -> Vectorization (contraction lowering) -> tuned library call.
"""

import time

import numpy as np
import pytest

from repro.transformations import (
    MapCollapse,
    MapExpansion,
    MapReduceFusion,
    MapTiling,
    Vectorization,
    apply_transformations,
)
from repro.workloads.kernels import matmul_data, matmul_sdfg
from conftest import run_once

N = 160

CHAIN = [
    ("0-unoptimized", None),
    ("1-MapReduceFusion", lambda s: apply_transformations(s, MapReduceFusion)),
    ("2-LoopReorder", lambda s: apply_transformations(s, [MapExpansion, MapCollapse])),
    ("3-MapTiling", lambda s: apply_transformations(
        s, MapTiling, options={"tile_sizes": (32, 32, 32)})),
    ("4-Vectorization", lambda s: apply_transformations(s, Vectorization)),
]

_TIMES = {}


def _chain_sdfg(upto: int):
    sdfg = matmul_sdfg()
    for label, step in CHAIN[1 : upto + 1]:
        assert step(sdfg) >= 1, label
    return sdfg


@pytest.mark.parametrize("step", range(len(CHAIN)))
def test_fig15_chain_step(benchmark, results_table, step):
    label = CHAIN[step][0]
    sdfg = _chain_sdfg(step)
    data = matmul_data(N)
    ref = data["A"] @ data["B"]
    comp = sdfg.compile()

    def run():
        data["C"][:] = 0
        comp(**data)

    run_once(benchmark, run, rounds=2)
    np.testing.assert_allclose(data["C"], ref, rtol=1e-9)
    secs = benchmark.stats.stats.mean
    gflops = 2 * N**3 / secs / 1e9
    benchmark.extra_info["gflops"] = gflops
    _TIMES[label] = secs
    results_table.append(("fig15", f"GEMM {label}", f"{gflops:.2f} Gflop/s", secs))


def test_fig15_tuned_step(benchmark, results_table):
    """The paper's final move: "tuning transformation parameters for a
    specific size" lifts 75% of MKL to 98.6%.  Here: re-derive the chain
    with the tile size tuned to the problem (one full-size tile), letting
    the contraction lowering see the whole operand."""
    sdfg = matmul_sdfg()
    apply_transformations(sdfg, MapReduceFusion)
    apply_transformations(sdfg, MapTiling, options={"tile_sizes": (N, N, N)})
    apply_transformations(sdfg, Vectorization)
    data = matmul_data(N)
    ref = data["A"] @ data["B"]
    comp = sdfg.compile()

    def run():
        data["C"][:] = 0
        comp(**data)

    run_once(benchmark, run, rounds=3)
    np.testing.assert_allclose(data["C"], ref, rtol=1e-9)
    secs = benchmark.stats.stats.mean
    _TIMES["5-TunedTileSize"] = secs
    results_table.append(
        ("fig15", "GEMM 5-TunedTileSize", f"{2 * N**3 / secs / 1e9:.2f} Gflop/s", secs)
    )


def test_fig15_library_bound(benchmark, results_table):
    data = matmul_data(N)
    run_once(benchmark, lambda: data["A"] @ data["B"], rounds=3)
    secs = benchmark.stats.stats.mean
    _TIMES["6-library(MKL role)"] = secs
    results_table.append(
        ("fig15", "GEMM 6-library", f"{2 * N**3 / secs / 1e9:.2f} Gflop/s", secs)
    )


def test_fig15_progression_shape(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    """The figure's shape: a large total factor from unoptimized to the
    final vectorized step, ending in the library's performance class."""
    assert len(_TIMES) == len(CHAIN) + 2
    unopt = _TIMES["0-unoptimized"]
    final = _TIMES["5-TunedTileSize"]
    lib = _TIMES["6-library(MKL role)"]
    total_factor = unopt / final
    print("\nfig15 chain times:")
    for label in sorted(_TIMES):
        print(f"  {label:24s} {_TIMES[label] * 1e3:10.3f} ms")
    print(f"  total chain speedup: {total_factor:.1f}x (paper: ~536x over 7 steps)")
    assert total_factor > 20
    assert final < 10 * lib  # same performance class as the tuned library
