"""Shared helpers for the reproduction benchmarks.

Each ``test_fig*``/``test_table*`` module regenerates one figure or
table of the paper (see DESIGN.md §3 for the index).  Wall-clock
benchmarks measure the Python/NumPy backend on this machine; GPU/FPGA
results come from the machine models (DESIGN.md §1) and are attached to
the benchmark records as ``extra_info['modeled_ms']``.

Run with::

    pytest benchmarks/ --benchmark-only

A results summary usable for EXPERIMENTS.md is printed per module.
"""

import os

import numpy as np
import pytest


def maybe_dump_report(compiled, name: str) -> None:
    """Write the last instrumentation report of ``compiled`` next to the
    benchmark results when ``REPRO_BENCH_REPORTS`` names a directory.

    Benchmarks call this after running an instrumented (or
    ``REPRO_PROFILE=1``) kernel; with the variable unset this is free.
    """
    target = os.environ.get("REPRO_BENCH_REPORTS", "")
    report = getattr(compiled, "last_report", None)
    if not target or report is None:
        return
    os.makedirs(target, exist_ok=True)
    safe = "".join(c if c.isalnum() or c in "-_." else "_" for c in name)
    report.save(os.path.join(target, f"{safe}.json"))


def run_once(benchmark, fn, *args, rounds=1, **kwargs):
    """Benchmark with minimal repetitions (kernels are deterministic and
    the suite covers 30+ kernels x several roles)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=rounds,
                              iterations=1, warmup_rounds=0)


@pytest.fixture(scope="session")
def results_table():
    """Session-scoped accumulator: modules append (figure, kernel, role,
    seconds) rows; the final fixture teardown prints them."""
    rows = []
    yield rows
    if rows:
        print("\n=== reproduction results (paper figure, kernel, role, time[s]) ===")
        for fig, kernel, role, secs in rows:
            print(f"{fig:12s} {kernel:16s} {role:22s} {secs:12.6f}")


def geomean(values):
    values = np.asarray(list(values), dtype=float)
    return float(np.exp(np.log(values).mean()))
