"""Table 2 — Scattering-Self-Energy runtime: OMEN vs Python(numpy) vs
DaCe (paper §6.4, scaled problem).

Paper rows (4,864-atom nanostructure):
    OMEN          965.45 s   (1.3% peak)   1x
    Python/numpy  30,560 s   (0.2% peak)   0.03x
    DaCe          29.93 s    (20.4% peak)  32.26x

Expected shape here: same strict ordering (naive interpreted loops <<
per-call small-GEMM OMEN style << batched data-centric), with the DaCe
restructuring winning by a wide margin.
"""

import numpy as np
import pytest

from repro.workloads.sse import (
    SSEProblem,
    make_sse_data,
    sse_dace,
    sse_numpy_naive,
    sse_omen,
)
from conftest import run_once

PROBLEM = SSEProblem(nkz=4, ne=12, nqz=4, nw=4, nb=8)
SMALL = SSEProblem(nkz=2, ne=4, nqz=2, nw=2, nb=6)  # for the slow naive row

_TIMES = {}


@pytest.fixture(scope="module")
def data():
    return make_sse_data(PROBLEM)


def test_table2_omen_role(benchmark, results_table, data):
    run_once(benchmark, sse_omen, PROBLEM, data, rounds=2)
    _TIMES["omen"] = benchmark.stats.stats.mean
    results_table.append(("table2", "SSE", "omen(small-gemms)", _TIMES["omen"]))


def test_table2_numpy_naive_role(benchmark, results_table):
    # Interpreted elementwise loops: measured on the smaller problem and
    # normalized per useful flop.
    d = make_sse_data(SMALL)
    run_once(benchmark, sse_numpy_naive, SMALL, d)
    per_flop = benchmark.stats.stats.mean / SMALL.flops()
    _TIMES["numpy_naive_scaled"] = per_flop * PROBLEM.flops()
    results_table.append(
        ("table2", "SSE", "python-naive(scaled)", _TIMES["numpy_naive_scaled"])
    )


def test_table2_dace_role(benchmark, results_table, data):
    ref = sse_omen(PROBLEM, data)
    result = run_once(benchmark, sse_dace, PROBLEM, data, rounds=3)
    np.testing.assert_allclose(result, ref)
    _TIMES["dace"] = benchmark.stats.stats.mean
    results_table.append(("table2", "SSE", "dace(sbsmm)", _TIMES["dace"]))


def test_table2_ordering(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert set(_TIMES) == {"omen", "numpy_naive_scaled", "dace"}
    omen, naive, dace = (
        _TIMES["omen"], _TIMES["numpy_naive_scaled"], _TIMES["dace"]
    )
    speedup_vs_omen = omen / dace
    speedup_vs_naive = naive / dace
    print(
        f"\ntable2 (scaled): omen={omen*1e3:.2f} ms, "
        f"python-naive={naive*1e3:.2f} ms, dace={dace*1e3:.2f} ms"
    )
    print(
        f"  dace vs omen: {speedup_vs_omen:.1f}x (paper: 32.26x); "
        f"dace vs python: {speedup_vs_naive:.0f}x (paper: ~1021x)"
    )
    # The Table 2 ordering and sizeable factors must hold.
    assert dace < omen < naive
    assert speedup_vs_omen > 2
    assert speedup_vs_naive > 20
