"""Fig. 13b/13c — Polybench on GPU and FPGA (machine-model simulated).

13b role mapping: the PPCG row is modeled as the same GPU kernel but
with conservative per-state whole-array host<->device round-trips, while
the SDFG row transfers exactly the propagated memlet footprints once —
the mechanism the paper credits for its GPU wins ("avoiding unnecessary
array copies due to explicit data dependencies", §5, bicg 11.8x).

13c: SDFGs produce pipelined (II=1) FPGA code for every kernel — "the
first complete set of placed-and-routed Polybench kernels" — compared
against naively-scheduled sequential HLS.
"""

import numpy as np
import pytest

from repro.runtime.machine import TESLA_P100
from repro.runtime.perfmodel import simulate
from repro.sdfg import SDFG
from repro.transformations import FPGATransform, GPUTransform, apply_transformations
from repro.workloads.polybench import all_kernels, get
from conftest import geomean, run_once

_SPEEDUPS_GPU = {}
_SPEEDUPS_FPGA = {}


def _full_transfer_bytes(sdfg, symbols):
    total = 0.0
    for name, desc in sdfg.arglist().items():
        try:
            total += float(desc.size_bytes().evaluate(symbols))
        except KeyError:
            pass
    return total


@pytest.mark.parametrize("name", all_kernels())
def test_fig13b_gpu(benchmark, results_table, name):
    kernel = get(name)
    sdfg = kernel.make_sdfg()
    apply_transformations(sdfg, GPUTransform, validate=False)
    symbols = dict(kernel.sizes)
    rep = run_once(benchmark, simulate, sdfg, "gpu", symbols)
    sdfg_time = rep.time
    # PPCG role: every state round-trips the full arrays over PCIe.
    states = max(1, sdfg.number_of_nodes() - 2)  # minus our copy states
    extra = 2 * states * _full_transfer_bytes(sdfg, symbols)
    ppcg_time = rep.time - TESLA_P100.time_transfer(rep.transfer_bytes)
    ppcg_time += TESLA_P100.time_transfer(extra)
    assert sdfg_time <= ppcg_time * 1.05
    benchmark.extra_info["modeled_ms"] = sdfg_time * 1e3
    benchmark.extra_info["ppcg_modeled_ms"] = ppcg_time * 1e3
    _SPEEDUPS_GPU[name] = ppcg_time / sdfg_time
    results_table.append(("fig13b", name, "sdfg-gpu(model)", sdfg_time))
    results_table.append(("fig13b", name, "ppcg(model)", ppcg_time))


def test_fig13b_geomean_speedup(benchmark, results_table):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    """Paper: 1.12x geometric-mean speedup over PPCG."""
    assert len(_SPEEDUPS_GPU) == 30
    g = geomean(_SPEEDUPS_GPU.values())
    print(f"\nfig13b geomean SDFG-vs-PPCG speedup (modeled): {g:.2f}x (paper: 1.12x)")
    assert g >= 1.0


@pytest.mark.parametrize("name", all_kernels())
def test_fig13c_fpga(benchmark, results_table, name):
    kernel = get(name)
    sdfg = kernel.make_sdfg()
    apply_transformations(sdfg, FPGATransform, validate=False)
    symbols = dict(kernel.sizes)
    rep = run_once(benchmark, simulate, sdfg, "fpga", symbols)
    naive = simulate(sdfg, "fpga", symbols, naive_fpga=True)
    assert rep.time > 0 and naive.time > rep.time * 0.99
    benchmark.extra_info["modeled_ms"] = rep.time * 1e3
    benchmark.extra_info["naive_hls_modeled_ms"] = naive.time * 1e3
    _SPEEDUPS_FPGA[name] = naive.time / rep.time
    results_table.append(("fig13c", name, "sdfg-fpga(model)", rep.time))
    results_table.append(("fig13c", name, "naive-hls(model)", naive.time))


def test_fig13c_complete_set(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    """All 30 kernels lower to FPGA code (the paper's completeness claim)."""
    assert len(_SPEEDUPS_FPGA) == 30
    med = sorted(_SPEEDUPS_FPGA.values())[15]
    print(f"\nfig13c median pipelined-vs-naive-HLS factor (modeled): {med:.0f}x")
    assert med > 5  # orders of magnitude on compute-heavy kernels
