"""Ablation benchmarks for the design choices DESIGN.md §4 calls out:

* WCR lowering strategy — per-element conflict-resolved pushes vs the
  LocalStream bulk accumulation (the paper's §6.3 step ❷ rationale),
* memlet-propagation copy volume — exact propagated footprints vs
  whole-array transfers on the GPU model (the Fig. 13b mechanism),
* tile-size sweep for MapTiling on GEMM (DIODE's tuning loop, §4.2),
* strict-transformation pass effect on graph size (Appendix D's
  RedundantArray motivation).
"""

import numpy as np
import pytest

from repro.runtime.machine import TESLA_P100
from repro.runtime.perfmodel import simulate
from repro.sdfg import SDFG, Memlet, dtypes
from repro.transformations import (
    GPUTransform,
    MapReduceFusion,
    MapTiling,
    RedundantArray,
    Vectorization,
    apply_strict_transformations,
    apply_transformations,
)
from repro.library.graphs import road_network
from repro.workloads.bfs import build_bfs_sdfg
from repro.workloads.kernels import matmul_data, matmul_sdfg
from conftest import run_once


@pytest.mark.parametrize("optimized", [False, True])
def test_ablation_wcr_localstream(benchmark, results_table, optimized):
    """BFS with and without LocalStream (bulk frontier updates)."""
    g = road_network(32, keep=0.7, seed=11)
    comp = build_bfs_sdfg(optimized=optimized).compile()
    depth = np.zeros(g.num_vertices, np.int32)

    def run():
        comp(G_row=g.indptr, G_col=g.indices, depth=depth, src=0,
             V=g.num_vertices, E=g.num_edges)

    run_once(benchmark, run)
    label = "localstream" if optimized else "per-element-push"
    results_table.append(("ablation-wcr", "BFS", label, benchmark.stats.stats.mean))


def test_ablation_copy_volume(benchmark):
    """Exact propagated-footprint transfers vs whole-array transfers: the
    data-movement knowledge memlets encode is worth real PCIe time."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    sdfg = SDFG("halfcopy")
    sdfg.add_array("A", ("N",), dtypes.float64)
    sdfg.add_array("out", ("N",), dtypes.float64)
    st = sdfg.add_state()
    # Only the first half of A is ever read.
    st.add_mapped_tasklet(
        "t",
        {"i": "0:N//2"},
        inputs={"a": Memlet.simple("A", "i")},
        code="o = a * 2",
        outputs={"o": Memlet.simple("out", "i")},
    )
    apply_transformations(sdfg, GPUTransform, validate=False)
    syms = {"N": 1 << 24}
    rep = simulate(sdfg, "gpu", syms)
    # Propagated copy-in moves A's used half; whole-array doubles it.
    n_bytes = (1 << 24) * 8
    whole = rep.time - TESLA_P100.time_transfer(rep.transfer_bytes) + \
        TESLA_P100.time_transfer(2 * n_bytes)
    print(f"\nablation copy volume: propagated={rep.time*1e3:.2f} ms, "
          f"whole-array={whole*1e3:.2f} ms")
    assert rep.transfer_bytes < 2 * n_bytes
    assert rep.time < whole


@pytest.mark.parametrize("tile", [8, 32, 64, 160])
def test_ablation_tile_sweep(benchmark, results_table, tile):
    """MapTiling tile-size sweep on GEMM (the DIODE tuning workflow)."""
    n = 160
    sdfg = matmul_sdfg()
    apply_transformations(sdfg, MapReduceFusion)
    apply_transformations(sdfg, MapTiling, options={"tile_sizes": (tile,) * 3})
    apply_transformations(sdfg, Vectorization)
    data = matmul_data(n)
    ref = data["A"] @ data["B"]
    comp = sdfg.compile()

    def run():
        data["C"][:] = 0
        comp(**data)

    run_once(benchmark, run, rounds=2)
    np.testing.assert_allclose(data["C"], ref, rtol=1e-9)
    results_table.append(
        ("ablation-tile", "GEMM", f"tile={tile}", benchmark.stats.stats.mean)
    )


def test_ablation_strict_transformations(benchmark):
    """RedundantArray removes copy chains (Appendix D's motivation:
    'this situation often happens after transformations and due to the
    strict nature of some frontends')."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    sdfg = SDFG("chainy")
    sdfg.add_array("A", ("N",), dtypes.float64)
    sdfg.add_array("B", ("N",), dtypes.float64)
    st = sdfg.add_state()
    prev = st.add_read("A")
    # A -> t0 -> t1 -> t2 -> B : transient relay chain.
    for i in range(3):
        name, _ = sdfg.add_transient(f"t{i}", ("N",), dtypes.float64,
                                     find_new_name=False)
        node = st.add_access(name)
        st.add_edge(prev, node, Memlet(data=prev.data, subset="0:N"), None, None)
        prev = node
    b = st.add_write("B")
    st.add_edge(prev, b, Memlet(data=prev.data, subset="0:N"), None, None)
    n_arrays = len(sdfg.arrays)
    applied = apply_strict_transformations(sdfg)
    assert applied >= 3
    assert len(sdfg.arrays) == n_arrays - 3  # all transients eliminated
    A = np.random.rand(16)
    B = np.zeros(16)
    sdfg.compile()(A=A, B=B)
    np.testing.assert_allclose(B, A)
