"""Auto-tuner benchmark: tuned-vs-naive measured runtime, the cost of
the search itself (cold search vs warm cache replay), and the
cutout-parallel strategy against the serial whole-SDFG search.

Not a paper figure — this validates the tuning subsystem at benchmark
scale: the winner found by :func:`repro.tuning.tune` must not be slower
than the naive SDFG on the measured backend, a warm cache must replace
the search with a single replay, and on the multi-state gemm chain the
cutout strategy must reach a cost no worse than the serial search while
evaluating fewer candidates (dedup: 16 states, 9 unique kernels).

With ``REPRO_BENCH_REPORTS`` set the module refreshes
``benchmarks/baselines/BENCH_tuning.json`` (tuned-kernel p50s the
perf-drift detector and ``repro.tune --if-drifted`` resolve against).
"""

import json
import os
import time

import numpy as np
import pytest

from conftest import run_once

from repro.tuning import MeasuredCost, cutout_pool, tune
from repro.workloads import kernels

SIZE = 48  # decisive margins on the python backend, still cheap

CHAIN_LINKS = 8   # 16 states: 8 identical inits + 8 distinct gemms
CHAIN_N = 48      # analytic problem size (symbols only, never executed)
CHAIN_EXEC_N = 16  # execution size for the stitched-correctness check

BASELINES_DIR = os.path.join(os.path.dirname(__file__), "baselines")


@pytest.fixture(scope="module")
def tuned(tmp_path_factory):
    cache_dir = str(tmp_path_factory.mktemp("tuning-cache"))
    kwargs = dict(
        cost=MeasuredCost(symbol_default=SIZE),
        strategy="greedy",
        depth=3,
        budget=16,
        transformations=["MapReduceFusion", "MapFusion", "Vectorization"],
        cache_dir=cache_dir,
    )
    cold = tune(kernels.matmul_sdfg(), **kwargs)
    warm = tune(kernels.matmul_sdfg(), **kwargs)
    assert warm.cache_hit
    return cold


def test_tuned_matmul_vs_naive(benchmark, tuned, results_table):
    data = kernels.matmul_data(SIZE)
    ref = kernels.matmul_reference(data)

    compiled = tuned.sdfg.compile()
    run_once(benchmark, compiled, **data)
    np.testing.assert_allclose(data["C"], ref)

    naive = kernels.matmul_sdfg().compile()
    ndata = kernels.matmul_data(SIZE)
    import time

    t0 = time.perf_counter()
    naive(**ndata)
    naive_secs = time.perf_counter() - t0

    results_table.append(("tuning", "matmul", "tuned(search)", benchmark.stats.stats.mean))
    results_table.append(("tuning", "matmul", "naive", naive_secs))
    # The tuner never returns a measured-slower winner.
    assert tuned.best_score <= tuned.baseline_score


def test_warm_cache_short_circuits(benchmark, tuned, tmp_path, results_table):
    """Replaying a cached winner is orders of magnitude cheaper than the
    search that produced it."""
    cache_dir = str(tmp_path / "cache")
    kwargs = dict(
        cost=MeasuredCost(symbol_default=SIZE),
        strategy="greedy",
        depth=3,
        budget=16,
        transformations=["MapReduceFusion", "MapFusion", "Vectorization"],
        cache_dir=cache_dir,
    )
    tune(kernels.matmul_sdfg(), **kwargs)  # populate

    result = run_once(benchmark, lambda: tune(kernels.matmul_sdfg(), **kwargs))
    assert result.cache_hit
    results_table.append(
        ("tuning", "matmul", "warm-cache-tune", benchmark.stats.stats.mean)
    )


# ================================================== cutout vs serial
@pytest.fixture(scope="module")
def chain_searches():
    """Serial whole-SDFG beam search vs cutout-parallel search over the
    same transformation pool and analytic cost model."""
    pool = cutout_pool()
    common = dict(cost="analytic", symbols={"N": CHAIN_N},
                  transformations=pool, depth=3)
    t0 = time.perf_counter()
    serial = tune(kernels.gemm_chain_sdfg(CHAIN_LINKS), strategy="beam",
                  beam_width=3, budget=96, **common)
    serial_wall = time.perf_counter() - t0
    t0 = time.perf_counter()
    cutout = tune(kernels.gemm_chain_sdfg(CHAIN_LINKS), strategy="cutout",
                  budget=4, jobs=1, **common)
    cutout_wall = time.perf_counter() - t0
    return {"serial": serial, "serial_wall": serial_wall,
            "cutout": cutout, "cutout_wall": cutout_wall}


def test_cutout_cost_beats_serial_with_fewer_evals(chain_searches,
                                                   results_table):
    """The headline claim: tuning each unique kernel once and replaying
    the winner onto every occurrence reaches a cost no worse than the
    serial whole-SDFG search — from fewer cost evaluations."""
    serial, cutout = chain_searches["serial"], chain_searches["cutout"]
    assert cutout.best_score is not None and serial.best_score is not None
    assert cutout.best_score <= serial.best_score
    assert cutout.report.budget_used < serial.report.budget_used
    results_table.append(
        ("tuning", "gemm_chain", "serial-beam-search",
         chain_searches["serial_wall"]))
    results_table.append(
        ("tuning", "gemm_chain", "cutout-search",
         chain_searches["cutout_wall"]))


def test_cutout_dedup_and_stitching(chain_searches):
    cuts = chain_searches["cutout"].report.cutouts
    assert cuts["total"] == 2 * CHAIN_LINKS
    assert cuts["unique"] == CHAIN_LINKS + 1
    assert cuts["deduplicated"] == CHAIN_LINKS - 1
    assert cuts["stitched"] == 2 * CHAIN_LINKS
    assert cuts["verification"].startswith("ok")


def test_cutout_stitched_sdfg_correct_at_1e8(chain_searches):
    """Beyond the tuner's internal differential check: the stitched
    winner reproduces the numpy reference on fresh data."""
    data = kernels.gemm_chain_data(CHAIN_EXEC_N)
    ref = kernels.gemm_chain_reference(data, CHAIN_LINKS)
    env = {k: np.array(v, copy=True) for k, v in data.items()}
    sdfg = chain_searches["cutout"].sdfg
    sdfg.invalidate_compiled()
    sdfg.compile()(**env, N=CHAIN_EXEC_N)
    scale = max(1.0, float(np.max(np.abs(ref))))
    assert np.max(np.abs(env["C"] - ref)) / scale <= 1e-8


def test_cutout_parallel_wall_clock(results_table):
    """Four workers vs one on the measured backend.  The ≥2x assertion
    needs real cores; on smaller runners the walls are still recorded."""
    def search(jobs):
        t0 = time.perf_counter()
        result = tune(
            kernels.gemm_chain_sdfg(CHAIN_LINKS),
            cost=MeasuredCost(symbol_default=CHAIN_EXEC_N),
            strategy="cutout", depth=2, budget=4, jobs=jobs,
            transformations=cutout_pool(),
        )
        wall = time.perf_counter() - t0
        assert result.report.cutouts["verification"].startswith("ok")
        return result, wall

    serial, serial_wall = search(1)
    parallel, parallel_wall = search(4)
    assert parallel.report.cutouts["jobs"] == 4
    results_table.append(("tuning", "gemm_chain", "cutout-jobs1", serial_wall))
    results_table.append(("tuning", "gemm_chain", "cutout-jobs4", parallel_wall))
    if (os.cpu_count() or 1) >= 4:
        assert serial_wall / parallel_wall >= 2.0, (
            f"expected >=2x at 4 workers, got "
            f"{serial_wall / parallel_wall:.2f}x "
            f"({serial_wall:.2f}s vs {parallel_wall:.2f}s)")


def test_refresh_tuning_baseline(tuned, chain_searches):
    """Measure the tuned kernels and (when ``REPRO_BENCH_REPORTS`` is
    set) refresh the committed perf-drift baseline."""
    def p50(sdfg, runs, **env):
        sdfg.invalidate_compiled()
        compiled = sdfg.compile()
        samples = []
        for _ in range(runs):
            t0 = time.perf_counter()
            compiled(**{k: np.array(v, copy=True)
                        if isinstance(v, np.ndarray) else v
                        for k, v in env.items()})
            samples.append(time.perf_counter() - t0)
        return float(np.median(samples)), runs

    mm_p50, mm_n = p50(tuned.sdfg, 3, **kernels.matmul_data(SIZE))
    chain_p50, chain_n = p50(
        chain_searches["cutout"].sdfg, 3,
        **dict(kernels.gemm_chain_data(CHAIN_EXEC_N), N=CHAIN_EXEC_N))
    payload = json.dumps({
        "kernels": {
            "matmul": {"p50": mm_p50, "count": mm_n},
            "gemm_chain": {"p50": chain_p50, "count": chain_n},
        },
        "search": {
            "serial_evals": chain_searches["serial"].report.budget_used,
            "cutout_evals": chain_searches["cutout"].report.budget_used,
            "serial_score": chain_searches["serial"].best_score,
            "cutout_score": chain_searches["cutout"].best_score,
        },
    }, indent=1, sort_keys=True)
    target = os.environ.get("REPRO_BENCH_REPORTS", "")
    if not target:
        return
    os.makedirs(target, exist_ok=True)
    with open(os.path.join(target, "BENCH_tuning.json"), "w") as f:
        f.write(payload)
    os.makedirs(BASELINES_DIR, exist_ok=True)
    with open(os.path.join(BASELINES_DIR, "BENCH_tuning.json"), "w") as f:
        f.write(payload)
