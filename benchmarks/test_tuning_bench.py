"""Auto-tuner benchmark: tuned-vs-naive measured runtime, plus the cost
of the search itself (cold search vs warm cache replay).

Not a paper figure — this validates the PR's tuning subsystem at
benchmark scale: the winner found by :func:`repro.tuning.tune` must not
be slower than the naive SDFG on the measured backend, and a warm cache
must replace the search with a single replay.
"""

import numpy as np
import pytest

from conftest import run_once

from repro.tuning import MeasuredCost, tune
from repro.workloads import kernels

SIZE = 48  # decisive margins on the python backend, still cheap


@pytest.fixture(scope="module")
def tuned(tmp_path_factory):
    cache_dir = str(tmp_path_factory.mktemp("tuning-cache"))
    kwargs = dict(
        cost=MeasuredCost(symbol_default=SIZE),
        strategy="greedy",
        depth=3,
        budget=16,
        transformations=["MapReduceFusion", "MapFusion", "Vectorization"],
        cache_dir=cache_dir,
    )
    cold = tune(kernels.matmul_sdfg(), **kwargs)
    warm = tune(kernels.matmul_sdfg(), **kwargs)
    assert warm.cache_hit
    return cold


def test_tuned_matmul_vs_naive(benchmark, tuned, results_table):
    data = kernels.matmul_data(SIZE)
    ref = kernels.matmul_reference(data)

    compiled = tuned.sdfg.compile()
    run_once(benchmark, compiled, **data)
    np.testing.assert_allclose(data["C"], ref)

    naive = kernels.matmul_sdfg().compile()
    ndata = kernels.matmul_data(SIZE)
    import time

    t0 = time.perf_counter()
    naive(**ndata)
    naive_secs = time.perf_counter() - t0

    results_table.append(("tuning", "matmul", "tuned(search)", benchmark.stats.stats.mean))
    results_table.append(("tuning", "matmul", "naive", naive_secs))
    # The tuner never returns a measured-slower winner.
    assert tuned.best_score <= tuned.baseline_score


def test_warm_cache_short_circuits(benchmark, tuned, tmp_path, results_table):
    """Replaying a cached winner is orders of magnitude cheaper than the
    search that produced it."""
    cache_dir = str(tmp_path / "cache")
    kwargs = dict(
        cost=MeasuredCost(symbol_default=SIZE),
        strategy="greedy",
        depth=3,
        budget=16,
        transformations=["MapReduceFusion", "MapFusion", "Vectorization"],
        cache_dir=cache_dir,
    )
    tune(kernels.matmul_sdfg(), **kwargs)  # populate

    result = run_once(benchmark, lambda: tune(kernels.matmul_sdfg(), **kwargs))
    assert result.cache_hit
    results_table.append(
        ("tuning", "matmul", "warm-cache-tune", benchmark.stats.stats.mean)
    )
