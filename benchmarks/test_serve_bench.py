"""Service-mode benchmark: sustained mixed load against the daemon.

Reuses the :mod:`repro.serve.loadtest` driver: concurrent clients firing
thousands of mixed cold/warm requests (plus a sprinkle of injected
worker deaths) at an embedded daemon with a crash-isolated pool.  The
assertions are the health invariants — every healthy request succeeds,
the daemon survives — and the latency percentiles (cold vs warm p50 /
p99), per-kernel percentiles, cache hit rates, and shed/error counts
land in ``BENCH_serve.json`` when ``REPRO_BENCH_REPORTS`` is set.

That JSON doubles as the perf-drift baseline: the same run refreshes
``benchmarks/baselines/BENCH_serve.json`` (see ``baselines/README.md``),
which ``python -m repro.telemetry check`` resolves per-kernel against a
live daemon's ``metrics`` snapshot.

Scale with ``REPRO_SERVE_BENCH_REQUESTS`` (default 400; CI uses a
smaller count on one-core runners, nightly runs can go to thousands).
"""

import json
import os

from repro.serve.loadtest import run_loadtest

BASELINES_DIR = os.path.join(os.path.dirname(__file__), "baselines")


def _dump(report) -> None:
    target = os.environ.get("REPRO_BENCH_REPORTS", "")
    if not target:
        return
    payload = json.dumps(report, indent=1, sort_keys=True)
    os.makedirs(target, exist_ok=True)
    with open(os.path.join(target, "BENCH_serve.json"), "w") as f:
        f.write(payload)
    # Refresh the committed drift baseline alongside the report — the
    # convention documented in benchmarks/baselines/README.md.
    os.makedirs(BASELINES_DIR, exist_ok=True)
    with open(os.path.join(BASELINES_DIR, "BENCH_serve.json"), "w") as f:
        f.write(payload)


def test_serve_mixed_load_bench():
    requests = int(os.environ.get("REPRO_SERVE_BENCH_REQUESTS", "400"))
    report = run_loadtest(
        requests=requests,
        threads=4,
        workers=2,
        cold_every=10,
        faults=2,
        deadline_faults=1,
    )
    _dump(report)

    assert report["passed"], report["failures"]
    healthy = report["healthy"]
    assert healthy["ok"] == healthy["total"], "every healthy request succeeds"
    assert healthy["total"] == requests

    warm = report["latency"].get("warm")
    cold = report["latency"].get("cold")
    assert warm and cold
    assert warm["count"] + cold["count"] == requests
    for series in (warm, cold):
        assert series["p50"] is not None and series["p50"] > 0
        assert series["p99"] is not None and series["p99"] >= series["p50"]
    # Warm requests skip compilation: the medians must reflect that.
    assert warm["p50"] <= cold["p50"], (warm, cold)

    # Telemetry baseline fields (ISSUE 7): per-kernel percentiles for
    # the drift detector, cache hit rates, and shed/error tallies.
    kernels = report["kernels"]
    assert kernels, "warm kernels must yield per-kernel percentile series"
    for name, series in kernels.items():
        assert series["count"] >= 2, (name, series)
        assert 0 < series["p50"] <= series["p95"] <= series["p99"], (name, series)
    cache = report["cache"]
    assert cache["artifact_hits"] > 0, cache
    assert 0 < cache["artifact_hit_rate"] <= 1.0, cache
    assert healthy["errors"] == 0 and healthy["shed"] == 0, healthy

    # The injected faults really happened and were contained.
    assert "E201" in report["faults"]["codes"]
    pool = report["pool"]
    assert pool is not None and pool["deaths"] >= 2
    assert pool["alive"] == 2, "the pool healed to full strength"
