"""Telemetry overhead benchmark (ISSUE 7 acceptance criterion).

Drives the warm (artifact-LRU-hit) gemm serve path through an in-process
:class:`~repro.serve.worker.WorkerRuntime` — the exact code path a pool
worker runs per request — with the telemetry sink installed and
uninstalled, interleaved so thermal / scheduler drift hits both modes
equally.  A warm request with telemetry on performs two ring publishes
(``cache:artifacts`` + ``kernel``) and one ring drain; the budget from
ISSUE 7 is **<3%** of the request wall time.

The comparison uses the best (minimum) batch time per mode, the
standard microbenchmark estimator for "cost absent noise", and the
threshold leaves ~30x headroom over the measured overhead (~0.1%) so
the assertion is robust on loaded CI runners.

When ``REPRO_BENCH_REPORTS`` names a directory the measured overhead
lands in ``BENCH_telemetry.json`` there.
"""

import json
import os
import time

from repro.serve import protocol
from repro.serve.worker import WorkerRuntime
from repro.telemetry.sink import TelemetrySink, install_sink, uninstall_sink
from repro.workloads.polybench.linalg_blas import _gemm_data, _gemm_sdfg

#: requests per timed batch / timed batches per mode
BATCH = int(os.environ.get("REPRO_TELEMETRY_BENCH_BATCH", "12"))
TRIALS = int(os.environ.get("REPRO_TELEMETRY_BENCH_TRIALS", "7"))
OVERHEAD_BUDGET = 0.03


def _gemm_job():
    sizes = {"NI": 24, "NJ": 24, "NK": 24}
    sdfg = _gemm_sdfg()
    return {
        "op": "execute",
        "sdfg": sdfg.to_json(),
        "tenant": "bench",
        "arrays": protocol.encode_arrays(_gemm_data(sizes)),
        "symbols": sizes,
    }


def _time_batch(runtime, job):
    start = time.perf_counter()
    for _ in range(BATCH):
        response = runtime.handle(dict(job))
        assert response.get("status") == "ok", response
        assert response.get("warm") is True, "batch must stay on the warm path"
    return time.perf_counter() - start


def test_telemetry_overhead_under_budget():
    job = _gemm_job()
    runtime = WorkerRuntime()

    # install_sink(None) pins telemetry *off* even when REPRO_TELEMETRY
    # is set in the environment; uninstall_sink() at the end restores
    # env-driven resolution for whatever runs next.
    previous = install_sink(None)
    sink = TelemetrySink(capacity=4096)
    try:
        # Warm the artifact LRU (and both code paths) before timing.
        assert runtime.handle(dict(job)).get("status") == "ok"
        install_sink(sink)
        assert runtime.handle(dict(job)).get("warm") is True

        off, on = [], []
        for _ in range(TRIALS):
            install_sink(None)
            off.append(_time_batch(runtime, job))
            install_sink(sink)
            on.append(_time_batch(runtime, job))
    finally:
        install_sink(previous)
        if previous is None:
            uninstall_sink()

    best_off, best_on = min(off), min(on)
    overhead = best_on / best_off - 1.0
    report = {
        "batch": BATCH,
        "trials": TRIALS,
        "per_request_off": best_off / BATCH,
        "per_request_on": best_on / BATCH,
        "overhead_fraction": overhead,
        "events_published": sink.stats()["published"],
    }
    print(f"\ntelemetry overhead on warm gemm: {overhead * 100:.3f}% "
          f"({report['per_request_on'] * 1e3:.3f}ms vs "
          f"{report['per_request_off'] * 1e3:.3f}ms per request)")

    target = os.environ.get("REPRO_BENCH_REPORTS", "")
    if target:
        os.makedirs(target, exist_ok=True)
        with open(os.path.join(target, "BENCH_telemetry.json"), "w") as f:
            json.dump(report, f, indent=1, sort_keys=True)

    assert sink.stats()["published"] >= TRIALS * BATCH, (
        "telemetry-on batches must actually publish into the sink"
    )
    assert overhead < OVERHEAD_BUDGET, (
        f"telemetry overhead {overhead * 100:.2f}% exceeds the "
        f"{OVERHEAD_BUDGET * 100:.0f}% budget: {report}"
    )
