"""Table 3 — strided small-matrix multiplication: generic batched GEMM
(CUBLAS role) vs the specialized SBSMM.

Paper rows: on tiny irregular operands CUBLAS executes 27.42 Gflop at
84-87% of peak but only ~6% are *useful*; SBSMM executes the 1.92
useful Gflop, winning 1.67x (P100) to 4.76x (V100).

Measured here: executed-vs-useful flop accounting (exact, analytic) and
wall-clock of both strategies on the CPU; the P100/V100 rows come from
the machine models driven by the executed-flop counts.
"""

import numpy as np
import pytest

from repro.library import blas
from repro.runtime.machine import TESLA_P100, TESLA_V100
from conftest import run_once

BATCH, M, K, N = 4096, 4, 4, 4


@pytest.fixture(scope="module")
def operands():
    rng = np.random.RandomState(3)
    return rng.rand(BATCH, M, K), rng.rand(BATCH, K, N)


def test_table3_cublas_role(benchmark, results_table, operands):
    A, B = operands
    _, rep = run_once(benchmark, blas.gemm_strided_batched, A, B, rounds=3)
    benchmark.extra_info["useful_fraction"] = rep.useful_fraction
    results_table.append(
        ("table3", "SBSMM", "cublas-role", benchmark.stats.stats.mean)
    )
    # Paper: only ~6% of executed flops are useful on 4x4 operands.
    assert rep.useful_fraction < 0.1


def test_table3_sbsmm(benchmark, results_table, operands):
    A, B = operands
    out, rep = run_once(benchmark, blas.sbsmm, A, B, rounds=3)
    np.testing.assert_allclose(out, np.matmul(A, B))
    assert rep.useful_fraction == 1.0
    results_table.append(("table3", "SBSMM", "dace-sbsmm", benchmark.stats.stats.mean))


def test_table3_modeled_gpu_rows(benchmark, operands):
    """Reproduce the table's GPU columns from the flop accounting: the
    generic kernel runs near peak on padded flops; SBSMM runs the exact
    flops at a lower-but-honest utilization — and still finishes first."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    A, B = operands
    _, generic = blas.gemm_strided_batched(A, B)
    _, exact = blas.sbsmm(A, B)
    rows = []
    for gpu, sbs_util in ((TESLA_P100, 0.101), (TESLA_V100, 0.283)):
        t_generic = generic.executed_flops / (gpu.peak_flops_dp * 0.86)
        t_sbsmm = exact.useful_flops / (gpu.peak_flops_dp * sbs_util)
        rows.append((gpu.name, t_generic, t_sbsmm, t_generic / t_sbsmm))
    print("\ntable3 modeled rows (GPU, cublas-role [s], sbsmm [s], speedup):")
    for name, tg, ts, sp in rows:
        print(f"  {name:24s} {tg:.3e} {ts:.3e} {sp:.2f}x")
    # Paper shape: SBSMM wins on both, more on V100 (1.67x -> 4.76x).
    assert rows[0][3] > 1.0
    assert rows[1][3] > rows[0][3]


def test_table3_sdfg_variant(benchmark, results_table):
    """The SBSMM kernel as a compiled SDFG (Fig. 18 step 4's specialized
    implementation)."""
    sdfg = blas.sbsmm_sdfg(batch=BATCH, m=M, n=N, k=K)
    rng = np.random.RandomState(4)
    A, B = rng.rand(BATCH, M, K), rng.rand(BATCH, K, N)
    C = np.zeros((BATCH, M, N))
    comp = sdfg.compile()

    def run():
        C[:] = 0
        comp(A=A, B=B, C=C)

    run_once(benchmark, run, rounds=3)
    np.testing.assert_allclose(C, np.matmul(A, B))
    results_table.append(
        ("table3", "SBSMM", "dace-sdfg", benchmark.stats.stats.mean)
    )
