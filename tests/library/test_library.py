"""Tests for the vendor-library stand-ins (blas, sparse)."""

import numpy as np
import pytest

from repro.library import blas
from repro.library.sparse import CSRMatrix, spmv_reference_loops


class TestBlas:
    def test_gemm(self):
        A, B = np.random.rand(5, 7), np.random.rand(7, 6)
        C = np.random.rand(5, 6)
        ref = 1.5 * A @ B + 0.5 * C
        blas.gemm(A, B, C, alpha=1.5, beta=0.5)
        np.testing.assert_allclose(C, ref)

    def test_gemv(self):
        A, x = np.random.rand(5, 7), np.random.rand(7)
        y = np.zeros(5)
        blas.gemv(A, x, y)
        np.testing.assert_allclose(y, A @ x)

    def test_strided_batched_result(self):
        A = np.random.rand(10, 3, 4)
        B = np.random.rand(10, 4, 5)
        out, rep = blas.gemm_strided_batched(A, B)
        np.testing.assert_allclose(out, np.matmul(A, B))
        # Tiny operands padded to 16-multiples: most flops are waste.
        assert rep.useful_fraction < 0.15

    def test_sbsmm_exact_flops(self):
        A = np.random.rand(10, 3, 4)
        B = np.random.rand(10, 4, 5)
        out, rep = blas.sbsmm(A, B)
        np.testing.assert_allclose(out, np.matmul(A, B))
        assert rep.useful_fraction == 1.0

    def test_table3_useful_fraction_ordering(self):
        """Table 3's core claim: CUBLAS executes near peak but wastes
        >90% of flops on padding; SBSMM executes only useful work."""
        A = np.random.rand(64, 4, 4)
        B = np.random.rand(64, 4, 4)
        _, cublas = blas.gemm_strided_batched(A, B)
        _, sbs = blas.sbsmm(A, B)
        assert cublas.useful_flops == sbs.useful_flops
        assert cublas.executed_flops > 10 * sbs.executed_flops

    def test_sbsmm_sdfg_executes(self):
        sdfg = blas.sbsmm_sdfg(batch=16, m=4, n=4, k=4)
        A = np.random.rand(16, 4, 4)
        B = np.random.rand(16, 4, 4)
        C = np.zeros((16, 4, 4))
        sdfg.compile()(A=A, B=B, C=C)
        np.testing.assert_allclose(C, np.matmul(A, B))

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            blas.gemm_strided_batched(np.zeros((2, 3, 4)), np.zeros((2, 5, 6)))


class TestSparse:
    def test_random_csr_shape(self):
        m = CSRMatrix.random(20, 30, 5)
        assert m.nnz == 100
        assert m.indptr[-1] == 100

    def test_spmv_matches_scipy(self):
        m = CSRMatrix.random(25, 25, 6)
        x = np.random.rand(25).astype(np.float32)
        np.testing.assert_allclose(m.spmv(x), m.to_scipy() @ x, rtol=1e-6)

    def test_loop_reference(self):
        m = CSRMatrix.random(15, 15, 4)
        x = np.random.rand(15).astype(np.float32)
        b = np.zeros(15, np.float32)
        spmv_reference_loops(m, x, b)
        np.testing.assert_allclose(b, m.spmv(x), rtol=1e-5)

    def test_deterministic_seed(self):
        a = CSRMatrix.random(10, 10, 3, seed=5)
        b = CSRMatrix.random(10, 10, 3, seed=5)
        np.testing.assert_array_equal(a.indices, b.indices)
        np.testing.assert_allclose(a.data, b.data)
