"""The tuner's measured scoring shares the compiled-program cache:
re-scoring an identical candidate (revisits, repeated tune() calls)
skips codegen entirely."""

import numpy as np

from repro.codegen.progcache import ProgramCache
from repro.tuning import MeasuredCost
from repro.tuning.search import tune
from repro.workloads import kernels


class TestMeasuredCostSharesCache:
    def test_rescore_hits_program_cache(self):
        cache = ProgramCache()
        provider = MeasuredCost(repeats=1, program_cache=cache)
        sdfg = kernels.matmul_sdfg()
        a = provider.score(sdfg)
        assert cache.stats()["stores"] == 1
        b = provider.score(sdfg)
        assert cache.stats()["hits"] >= 1, "identical candidate must hit"
        assert a > 0 and b > 0

    def test_cache_off_opt_out(self):
        provider = MeasuredCost(repeats=1, program_cache="off")
        assert provider.score(kernels.matmul_sdfg()) > 0

    def test_distinct_candidates_do_not_collide(self):
        cache = ProgramCache()
        provider = MeasuredCost(repeats=1, program_cache=cache)
        provider.score(kernels.matmul_sdfg())
        provider.score(kernels.histogram_sdfg())
        assert cache.stats()["stores"] == 2
        assert cache.stats()["hits"] == 0


class TestTuneTwice:
    def test_second_tune_reuses_programs(self):
        cache = ProgramCache()
        provider = MeasuredCost(repeats=1, program_cache=cache)
        sdfg = kernels.matmul_sdfg()
        tune(sdfg, cost=provider, depth=1, budget=4)
        stores_after_first = cache.stats()["stores"]
        assert stores_after_first >= 1
        tune(sdfg, cost=provider, depth=1, budget=4)
        stats = cache.stats()
        # Every candidate of the second run was already compiled once.
        assert stats["hits"] >= stores_after_first
