"""Cutout extraction property tests (the cutout tuner's soundness
basis): executing a program state-by-state through extracted cutouts on
boundary-derived inputs must match the parent program at 1e-8, and
structurally identical cutouts must hash into one group."""

import copy

import numpy as np
import pytest

from repro.codegen import compile_sdfg
from repro.sdfg import SDFG, Memlet, dtypes
from repro.sdfg.nodes import MapEntry
from repro.tuning import (
    CutoutError,
    execute_cutouts,
    extract_scope_cutout,
    extract_state_cutout,
    extract_state_cutouts,
    group_cutouts,
    grouping_hash,
)
from repro.workloads import kernels

TOL = 1e-8


def _outputs(sdfg, env):
    return {
        name: env[name]
        for name, desc in sdfg.arrays.items()
        if not desc.transient and name in env
        and isinstance(env[name], np.ndarray)
    }


def _run_parent(sdfg, arrays, symbols=None):
    env = {
        k: np.array(v, copy=True) if isinstance(v, np.ndarray) else v
        for k, v in arrays.items()
    }
    compiled = compile_sdfg(copy.deepcopy(sdfg), backend="interpreter")
    compiled(**env, **(symbols or {}))
    return _outputs(sdfg, env)


def _assert_cutouts_match_parent(sdfg, arrays, symbols=None):
    cutouts, warnings = extract_state_cutouts(sdfg)
    assert not warnings, [str(w) for w in warnings]
    assert cutouts, "expected at least one non-trivial cutout"
    expected = _run_parent(sdfg, arrays, symbols)
    actual = execute_cutouts(sdfg, cutouts, dict(arrays), symbols=symbols)
    assert set(expected) <= set(actual)
    for name, ref in expected.items():
        err = np.max(np.abs(np.asarray(actual[name], dtype=float) - ref)) if ref.size else 0.0
        assert err <= TOL, f"{name}: max abs error {err}"


# ------------------------------------------- fundamental-kernel fidelity
class TestFundamentalKernelFidelity:
    def test_matmul(self):
        _assert_cutouts_match_parent(kernels.matmul_sdfg(), kernels.matmul_data(8))

    def test_jacobi2d(self):
        data = dict(kernels.jacobi2d_data(8), T=3)
        _assert_cutouts_match_parent(kernels.jacobi2d_sdfg(), data)

    def test_histogram(self):
        data = kernels.histogram_data(8, 8, bins=16)
        _assert_cutouts_match_parent(kernels.histogram_sdfg(), data)

    def test_query(self):
        _assert_cutouts_match_parent(kernels.query_sdfg(), kernels.query_data(16))

    def test_spmv(self):
        data, _ = kernels.spmv_data(12, 3)
        _assert_cutouts_match_parent(kernels.spmv_sdfg(), data)


# --------------------------------------------------- multi-state fidelity
def test_gemm_chain_multistate_fidelity():
    sdfg = kernels.gemm_chain_sdfg(4)
    data = kernels.gemm_chain_data(8)
    cutouts, warnings = extract_state_cutouts(sdfg)
    assert not warnings
    assert len(cutouts) == 8  # 4 links x (init + accumulate)
    out = execute_cutouts(sdfg, cutouts, dict(data), symbols={"N": 8})
    ref = kernels.gemm_chain_reference(data, 4)
    assert np.max(np.abs(out["C"] - ref)) <= 1e-9 * np.max(np.abs(ref))


def test_polybench_multistate_fidelity():
    """A real multi-state PolyBench program (jacobi-1d: a time loop with
    interstate conditions) survives the state-by-state chain at 1e-8."""
    from repro.workloads.polybench import get

    kernel = get("jacobi-1d")
    sdfg = kernel.make_sdfg()
    assert len(sdfg.states()) > 1
    data = kernel.make_data({"N": 16, "TSTEPS": 3})
    symbols = {"N": 16, "TSTEPS": 3}
    cutouts, _ = extract_state_cutouts(sdfg)
    expected = _run_parent(sdfg, data, symbols)
    actual = execute_cutouts(sdfg, cutouts, dict(data), symbols=symbols)
    for name, ref in expected.items():
        assert np.max(np.abs(actual[name] - ref)) <= TOL, name


# ------------------------------------------------------------- grouping
class TestGrouping:
    def test_gemm_chain_dedup(self):
        sdfg = kernels.gemm_chain_sdfg(4)
        cutouts, _ = extract_state_cutouts(sdfg)
        groups = group_cutouts(cutouts)
        # 4 identical init states fold into one group; the 4 accumulate
        # states differ by their alpha constant.
        assert len(groups) == 5
        sizes = sorted(len(v) for v in groups.values())
        assert sizes == [1, 1, 1, 1, 4]

    def test_grouping_hash_ignores_names(self):
        def build(array_names, state_name, sdfg_name):
            a, b = array_names
            sdfg = SDFG(sdfg_name)
            sdfg.add_array(a, ("N",), dtypes.float64)
            sdfg.add_array(b, ("N",), dtypes.float64)
            st = sdfg.add_state(state_name)
            st.add_mapped_tasklet(
                "t",
                {"i": "0:N"},
                inputs={"x": Memlet.simple(a, "i")},
                code="y = x * 2",
                outputs={"y": Memlet.simple(b, "i")},
            )
            return sdfg

        one = build(("A", "B"), "s0", "p1")
        two = build(("inp", "out"), "other", "p2")
        assert grouping_hash(one) == grouping_hash(two)

    def test_grouping_hash_sees_code_difference(self):
        def build(code):
            sdfg = SDFG("p")
            sdfg.add_array("A", ("N",), dtypes.float64)
            sdfg.add_array("B", ("N",), dtypes.float64)
            st = sdfg.add_state("s")
            st.add_mapped_tasklet(
                "t",
                {"i": "0:N"},
                inputs={"x": Memlet.simple("A", "i")},
                code=code,
                outputs={"y": Memlet.simple("B", "i")},
            )
            return sdfg

        assert grouping_hash(build("y = x * 2")) != grouping_hash(build("y = x * 3"))


# ----------------------------------------------------------- extraction
class TestExtraction:
    def test_state_cutout_is_standalone_and_valid(self):
        sdfg = kernels.gemm_chain_sdfg(3)
        state = sdfg.states()[1]  # an accumulate state reading transients
        cut = extract_state_cutout(sdfg, state)
        cut.sdfg.validate()
        # Boundary transients were promoted to arguments.
        for name, desc in cut.sdfg.arrays.items():
            assert not desc.transient or name not in ("T0", "T1")
        assert cut.parent_name == "gemm_chain"
        assert cut.content_hash and cut.grouping_hash

    def test_transient_private_to_state_stays_transient(self):
        sdfg = SDFG("priv")
        sdfg.add_array("A", ("N",), dtypes.float64)
        sdfg.add_array("B", ("N",), dtypes.float64)
        sdfg.add_transient("tmp", ("N",), dtypes.float64, find_new_name=False)
        st = sdfg.add_state("s")
        st.add_mapped_tasklet(
            "p",
            {"i": "0:N"},
            inputs={"a": Memlet.simple("A", "i")},
            code="t = a * 2",
            outputs={"t": Memlet.simple("tmp", "i")},
        )
        tmp_node = [n for n in st.data_nodes() if n.data == "tmp"][0]
        st.add_mapped_tasklet(
            "c",
            {"j": "0:N"},
            inputs={"t": Memlet.simple("tmp", "j")},
            code="b = t + 1",
            outputs={"b": Memlet.simple("B", "j")},
            input_nodes={"tmp": tmp_node},
        )
        cut = extract_state_cutout(sdfg, st)
        assert cut.sdfg.arrays["tmp"].transient

    def test_scope_cutout(self):
        sdfg = kernels.matmul_sdfg()
        state = next(
            s for s in sdfg.states()
            if any(isinstance(n, MapEntry) for n in s.nodes())
        )
        entry = next(
            n for n in state.nodes()
            if isinstance(n, MapEntry)
            and state.scope_dict()[n] is None
        )
        cut = extract_scope_cutout(sdfg, state, entry)
        cut.sdfg.validate()
        assert cut.scope_label

    def test_nested_sdfg_state_rejected_with_w1001(self):
        inner = SDFG("inner")
        inner.add_array("x", ("N",), dtypes.float64)
        ist = inner.add_state()
        ist.add_mapped_tasklet(
            "scale",
            {"i": "0:N"},
            inputs={"a": Memlet.simple("x", "i")},
            code="b = a * 5",
            outputs={"b": Memlet.simple("x", "i")},
        )
        outer = SDFG("outer")
        outer.add_array("A", ("N",), dtypes.float64)
        st = outer.add_state()
        node = st.add_nested_sdfg(inner, ["x"], ["x"], symbol_mapping={"N": "N"})
        st.add_edge(st.add_read("A"), node, Memlet.simple("A", "0:N"), None, "x")
        st.add_edge(node, st.add_write("A"), Memlet.simple("A", "0:N"), "x", None)

        with pytest.raises(CutoutError) as exc:
            extract_state_cutout(outer, st)
        assert exc.value.diagnostic.code == "W1001"

        cutouts, warnings = extract_state_cutouts(outer)
        assert cutouts == []
        assert [w.code for w in warnings] == ["W1001"]

    def test_empty_states_skipped(self):
        from repro.sdfg import InterstateEdge

        sdfg = SDFG("sparse")
        sdfg.add_array("A", ("N",), dtypes.float64)
        empty = sdfg.add_state("empty", is_start=True)
        work = sdfg.add_state("work")
        work.add_mapped_tasklet(
            "t",
            {"i": "0:N"},
            inputs={"a": Memlet.simple("A", "i")},
            code="b = a + 1",
            outputs={"b": Memlet.simple("A", "i")},
        )
        sdfg.add_edge(empty, work, InterstateEdge())
        cutouts, warnings = extract_state_cutouts(sdfg)
        assert len(cutouts) == 1 and not warnings
        assert cutouts[0].state_name == "work"
