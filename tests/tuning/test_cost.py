"""Cost providers: measured and analytic scoring behind one interface."""

import pytest

from repro.sdfg.serialize import content_hash
from repro.tuning import AnalyticCost, CostProvider, MeasuredCost, resolve_provider
from repro.workloads import kernels


class TestAnalyticCost:
    def test_deterministic_and_positive(self):
        sdfg = kernels.matmul_sdfg()
        provider = AnalyticCost(machine="cpu", symbols={"M": 64, "N": 64, "K": 64})
        a, b = provider.score(sdfg), provider.score(sdfg)
        assert a == b > 0

    def test_scores_unrunnable_machines(self):
        """The analytic provider tunes for targets we cannot execute."""
        sdfg = kernels.matmul_sdfg()
        for machine in ("cpu", "gpu", "fpga"):
            assert AnalyticCost(machine=machine).score(sdfg) > 0

    def test_ranks_fused_below_naive(self):
        naive = kernels.matmul_sdfg()
        fused = kernels.matmul_sdfg()
        from repro.transformations import apply_match

        assert apply_match(fused, "MapReduceFusion")
        provider = AnalyticCost(machine="cpu")
        assert provider.score(fused) < provider.score(naive)

    def test_key_reflects_configuration(self):
        assert AnalyticCost("cpu").key() != AnalyticCost("gpu").key()
        assert (
            AnalyticCost("cpu", symbols={"N": 8}).key()
            != AnalyticCost("cpu", symbols={"N": 9}).key()
        )


class TestMeasuredCost:
    def test_positive_and_non_mutating(self):
        sdfg = kernels.matmul_sdfg()
        before = content_hash(sdfg)
        score = MeasuredCost(symbol_default=8, repeats=2).score(sdfg)
        assert score > 0
        assert content_hash(sdfg) == before
        assert sdfg.instrument.name == "NONE"  # instrumented only the copy

    def test_explicit_inputs_change_key(self):
        data = kernels.matmul_data(8)
        base = MeasuredCost()
        with_inputs = MeasuredCost(inputs=data)
        assert base.key() != with_inputs.key()
        data2 = kernels.matmul_data(8, seed=1)
        assert MeasuredCost(inputs=data2).key() != with_inputs.key()

    def test_scores_with_explicit_inputs(self):
        data = kernels.matmul_data(8)
        score = MeasuredCost(inputs=data, repeats=2).score(kernels.matmul_sdfg())
        assert score > 0
        # Measurement must not consume the caller's arrays.
        assert (data["C"] == 0).all()


class TestResolveProvider:
    def test_names_and_instances(self):
        assert isinstance(resolve_provider("measured"), MeasuredCost)
        assert isinstance(resolve_provider("analytic", machine="gpu"), AnalyticCost)
        custom = AnalyticCost("fpga")
        assert resolve_provider(custom) is custom
        with pytest.raises(ValueError):
            resolve_provider("oracle")

    def test_base_interface_is_abstract(self):
        provider = CostProvider()
        with pytest.raises(NotImplementedError):
            provider.key()
        with pytest.raises(NotImplementedError):
            provider.score(None)
