"""The persistent content-addressed tuning cache: keying, LRU eviction,
corrupt-entry tolerance, and instrumented hit/miss counters."""

import os

from repro.instrumentation import InstrumentationRecorder
from repro.transformations import apply_match
from repro.tuning import TuningCache
from repro.workloads import kernels


def _entry(history):
    return {"history": history, "score": 1.0, "baseline_score": 2.0}


class TestKeying:
    def test_key_covers_graph_config_and_cost(self, tmp_path):
        cache = TuningCache(str(tmp_path))
        sdfg = kernels.matmul_sdfg()
        base = cache.key(sdfg, "cfg", "cost")
        assert cache.key(sdfg, "cfg", "cost") == base  # deterministic
        assert cache.key(sdfg, "cfg2", "cost") != base
        assert cache.key(sdfg, "cfg", "cost2") != base
        other = kernels.matmul_sdfg()
        apply_match(other, "MapReduceFusion")
        assert cache.key(other, "cfg", "cost") != base

    def test_key_ignores_transformation_history(self, tmp_path):
        cache = TuningCache(str(tmp_path))
        a, b = kernels.matmul_sdfg(), kernels.matmul_sdfg()
        b.transformation_history.append("Phantom")
        assert cache.key(a, "c", "p") == cache.key(b, "c", "p")


class TestStore:
    def test_round_trip_and_counters(self, tmp_path):
        cache = TuningCache(str(tmp_path))
        assert cache.get("0" * 64) is None
        cache.put("0" * 64, _entry([{"transformation": "MapFusion", "match": 0}]))
        entry = cache.get("0" * 64)
        assert entry["history"] == [{"transformation": "MapFusion", "match": 0}]
        assert entry["score"] == 1.0
        assert cache.stats() == {"hits": 1, "misses": 1, "evictions": 0}

    def test_persists_across_instances(self, tmp_path):
        TuningCache(str(tmp_path)).put("a" * 64, _entry([]))
        fresh = TuningCache(str(tmp_path))
        assert fresh.get("a" * 64) is not None

    def test_lru_eviction(self, tmp_path):
        cache = TuningCache(str(tmp_path), max_entries=2)
        for i, key in enumerate(("a" * 64, "b" * 64)):
            cache.put(key, _entry([]))
            # Distinct, ordered mtimes (same-second writes otherwise tie).
            os.utime(cache._path(key), (100 + i, 100 + i))
        cache.put("c" * 64, _entry([]))
        assert cache.evictions == 1
        assert cache.get("a" * 64) is None  # stalest entry evicted
        assert cache.get("b" * 64) is not None
        assert cache.get("c" * 64) is not None

    def test_get_refreshes_recency(self, tmp_path):
        cache = TuningCache(str(tmp_path), max_entries=2)
        for i, key in enumerate(("a" * 64, "b" * 64)):
            cache.put(key, _entry([]))
            os.utime(cache._path(key), (100 + i, 100 + i))
        assert cache.get("a" * 64) is not None  # touch: now the newest
        cache.put("c" * 64, _entry([]))
        assert cache.get("a" * 64) is not None
        assert cache.get("b" * 64) is None


class TestCorruptEntries:
    def test_garbage_file_is_a_tolerated_miss(self, tmp_path):
        cache = TuningCache(str(tmp_path))
        key = "d" * 64
        with open(cache._path(key), "w") as f:
            f.write("{not json")
        assert cache.get(key) is None
        assert not os.path.exists(cache._path(key))  # quarantined
        assert cache.misses == 1

    def test_schema_mismatch_is_a_miss(self, tmp_path):
        cache = TuningCache(str(tmp_path))
        key = "e" * 64
        cache.put(key, _entry([]))
        with open(cache._path(key), "w") as f:
            f.write('{"schema": 999, "key": "%s", "history": []}' % key)
        assert cache.get(key) is None
        assert not os.path.exists(cache._path(key))


class TestInstrumentation:
    def test_hit_miss_events_on_recorder(self, tmp_path):
        rec = InstrumentationRecorder()
        cache = TuningCache(str(tmp_path), recorder=rec)
        cache.get("f" * 64)
        cache.put("f" * 64, _entry([]))
        cache.get("f" * 64)
        events = {
            (k, label): node.count
            for (k, label), node in rec.root.children.items()
        }
        assert events[("cache", "miss")] == 1
        assert events[("cache", "hit")] == 1
        assert events[("cache", "store")] == 1
