"""Determinism substrate of the tuner: stable match enumeration and
content-addressed canonical serialization."""

import json

import pytest

from repro.sdfg.serialize import (
    canonical_sdfg_json,
    content_hash,
    sdfg_from_json,
    sdfg_to_json,
)
from repro.transformations import apply_match, enumerate_matches
from repro.workloads import kernels


def _structural_keys(sdfg, matches):
    """(state index, node indices) per instance — object-identity-free."""
    state_index = {id(s): i for i, s in enumerate(sdfg.nodes())}
    node_index = {}
    for s in sdfg.nodes():
        for ni, n in enumerate(s.nodes()):
            node_index[id(n)] = ni
    out = []
    for inst in matches:
        si = state_index.get(id(inst.state), -1)
        out.append((si, tuple(node_index[id(v)] for v in inst.candidate.values())))
    return out


class TestEnumerateMatchesOrder:
    @pytest.mark.parametrize(
        "xform", ["MapTiling", "MapExpansion", "Vectorization", "MapReduceFusion"]
    )
    def test_identical_across_independent_builds(self, xform):
        a, b = kernels.matmul_sdfg(), kernels.matmul_sdfg()
        ka = _structural_keys(a, enumerate_matches(a, xform))
        kb = _structural_keys(b, enumerate_matches(b, xform))
        assert ka == kb

    def test_sorted_by_state_and_node_ids(self):
        sdfg = kernels.jacobi2d_sdfg()
        for xform in ("MapTiling", "MapExpansion"):
            keys = _structural_keys(sdfg, enumerate_matches(sdfg, xform))
            assert keys == sorted(keys)

    def test_stable_across_serialization_round_trip(self):
        """The k-th match means the same candidate on a deserialized
        copy — what cached-history replay depends on."""
        sdfg = kernels.matmul_sdfg()
        copy = sdfg_from_json(sdfg_to_json(sdfg))
        ka = _structural_keys(sdfg, enumerate_matches(sdfg, "MapExpansion"))
        kb = _structural_keys(copy, enumerate_matches(copy, "MapExpansion"))
        assert ka == kb

    def test_apply_match_indices_give_distinct_graphs(self):
        base = sdfg_to_json(kernels.jacobi2d_sdfg())
        n = len(enumerate_matches(sdfg_from_json(base), "MapTiling"))
        assert n >= 1
        hashes = set()
        for k in range(n):
            work = sdfg_from_json(base)
            assert apply_match(work, "MapTiling", match_index=k)
            hashes.add(content_hash(work))
        # Each candidate index rewrites a different site (or at least a
        # well-defined one); out-of-range indices apply nothing.
        assert len(hashes) == n
        work = sdfg_from_json(base)
        assert not apply_match(work, "MapTiling", match_index=n)
        assert content_hash(work) == content_hash(sdfg_from_json(base))


class TestCanonicalSerialization:
    @pytest.mark.parametrize("kernel", kernels.KERNELS)
    def test_hash_stable_after_round_trip(self, kernel):
        sdfg = getattr(kernels, f"{kernel}_sdfg")()
        h = content_hash(sdfg)
        via_canonical = sdfg_from_json(sdfg_to_json(sdfg, canonical=True))
        via_plain = sdfg_from_json(sdfg_to_json(sdfg))
        assert content_hash(via_canonical) == h
        assert content_hash(via_plain) == h
        assert canonical_sdfg_json(via_plain) == canonical_sdfg_json(sdfg)

    def test_hash_identical_across_builds(self):
        assert content_hash(kernels.matmul_sdfg()) == content_hash(
            kernels.matmul_sdfg()
        )

    def test_hash_ignores_transformation_history(self):
        sdfg = kernels.matmul_sdfg()
        h = content_hash(sdfg)
        sdfg.transformation_history.append("SomethingIrrelevant")
        assert content_hash(sdfg) == h
        # ... but the non-canonical snapshot still records it.
        assert "SomethingIrrelevant" in sdfg_to_json(sdfg)["transformation_history"]

    def test_hash_changes_with_structure(self):
        sdfg = kernels.matmul_sdfg()
        h = content_hash(sdfg)
        apply_match(sdfg, "MapReduceFusion")
        assert content_hash(sdfg) != h

    def test_canonical_form_has_sorted_edges_and_no_history(self):
        obj = sdfg_to_json(kernels.matmul_sdfg(), canonical=True)
        assert "transformation_history" not in obj
        for state in obj["states"]:
            keys = [
                (e["src"], e["dst"], e["src_conn"] or "", e["dst_conn"] or "")
                for e in state["edges"]
            ]
            assert keys == sorted(keys)
        # Canonical dumps are valid JSON with deterministic key order.
        dump = json.dumps(obj, sort_keys=True)
        assert json.loads(dump) == obj
