"""Tests for execution-tier selection (``repro.tuning.tiers``): the
serial / vectorized / parallel lowering tiers of one graph are measured
and the winner is reported with the compile knobs that reproduce it."""

import numpy as np

from repro.tuning import AnalyticCost, MeasuredCost, tune_tiers
from repro.tuning.tiers import TierResult, default_worker_counts
from repro.workloads import kernels


class TestTuneTiers:
    def test_histogram_tier_search(self):
        result = tune_tiers(
            kernels.histogram_sdfg(), workers=[2], symbol_default=48,
            repeats=1,
        )
        labels = [c.label for c in result.candidates]
        assert labels == ["serial", "vectorized", "parallel[2]"]
        assert all(c.score is not None for c in result.candidates), [
            c.error for c in result.candidates
        ]
        best = result.best
        assert best is not None
        assert best.score == min(c.score for c in result.candidates)
        # The serial scalar loop never beats the fast tiers here.
        assert best.label != "serial"
        assert result.speedup() >= 1.0

    def test_best_candidate_kwargs_reproduce_it(self):
        from repro.codegen.compiler import compile_sdfg

        result = tune_tiers(
            kernels.matmul_sdfg(), workers=[2], symbol_default=24, repeats=1
        )
        best = result.best
        c = compile_sdfg(
            kernels.matmul_sdfg(), backend="python", **best.compile_kwargs()
        )
        try:
            data = kernels.matmul_data(16)
            c(**data)
            np.testing.assert_allclose(
                data["C"], kernels.matmul_reference(data), rtol=1e-8,
                atol=1e-10,
            )
        finally:
            c.close()

    def test_render_and_json_roundtrip(self):
        result = tune_tiers(
            kernels.histogram_sdfg(), workers=[2], symbol_default=32,
            repeats=1,
        )
        text = result.render()
        assert "serial" in text and "<- best" in text
        blob = result.to_json()
        assert blob["best"] == result.best.label
        assert len(blob["candidates"]) == 3

    def test_failed_candidate_reported_not_fatal(self):
        result = TierResult("x", [])
        assert result.best is None and result.speedup() is None

    def test_default_worker_counts_fit_the_host(self):
        import os

        counts = default_worker_counts()
        assert counts
        assert all(2 <= n <= max(os.cpu_count() or 1, 2) for n in counts)


class TestCostProviderTierKnobs:
    def test_measured_cost_keys_distinguish_tiers(self):
        base = MeasuredCost().key()
        novec = MeasuredCost(vectorize=False).key()
        par = MeasuredCost(parallel=4).key()
        assert len({base, novec, par}) == 3
        assert "novec" in novec and "par=" in par

    def test_measured_cost_scores_parallel_variant(self):
        score = MeasuredCost(
            parallel=2, symbol_default=32, repeats=1
        ).score(kernels.histogram_sdfg())
        assert score > 0

    def test_analytic_cores_knob(self):
        sdfg = kernels.matmul_sdfg()
        serial = AnalyticCost(symbol_default=128)
        par = AnalyticCost(symbol_default=128, cores=4)
        assert par.key() != serial.key()
        assert par.score(sdfg) < serial.score(sdfg)

    def test_analytic_single_core_unchanged(self):
        sdfg = kernels.matmul_sdfg()
        assert AnalyticCost(symbol_default=64).score(sdfg) == AnalyticCost(
            symbol_default=64, cores=1
        ).score(sdfg)


class TestTiersCLI:
    def test_cli_tiers_run(self, capsys, tmp_path):
        from repro.tune import main

        report = tmp_path / "tiers.json"
        status = main([
            "run", "histogram", "--tiers", "--workers", "2",
            "--report", str(report),
        ])
        assert status == 0
        out = capsys.readouterr().out
        assert "execution tiers for" in out
        import json

        blob = json.loads(report.read_text())
        assert blob["best"] in ("serial", "vectorized", "parallel[2]")
