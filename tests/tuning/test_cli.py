"""The ``python -m repro.tune`` command-line front end."""

import json
import os

from repro.tune import main


def _run(argv, capsys):
    code = main(argv)
    out = capsys.readouterr()
    return code, out.out + out.err


def test_run_analytic_writes_report(tmp_path, capsys):
    report = str(tmp_path / "report.json")
    code, text = _run(
        [
            "run",
            "matmul",
            "--cost",
            "analytic",
            "--depth",
            "2",
            "--budget",
            "12",
            "--cache-dir",
            str(tmp_path / "cache"),
            "--report",
            report,
        ],
        capsys,
    )
    assert code == 0
    assert os.path.exists(report)
    payload = json.loads(open(report).read())
    assert payload["sdfg"] == "mm"
    assert payload["strategy"] == "greedy"
    assert "candidates" in payload and payload["candidates"]
    assert "baseline" in text


def test_second_run_hits_cache(tmp_path, capsys):
    cache = str(tmp_path / "cache")
    common = ["run", "matmul", "--cost", "analytic", "--depth", "2",
              "--budget", "12", "--cache-dir", cache]
    assert _run(common, capsys)[0] == 0
    code, text = _run(common + ["--assert-cache-hit"], capsys)
    assert code == 0
    assert "hit" in text


def test_assert_cache_hit_fails_cold(tmp_path, capsys):
    code, _ = _run(
        ["run", "matmul", "--cost", "analytic", "--depth", "1",
         "--budget", "4", "--cache-dir", str(tmp_path / "cold"),
         "--assert-cache-hit"],
        capsys,
    )
    assert code == 1


def test_compare_renders_provider_table(tmp_path, capsys):
    code, text = _run(
        ["compare", "matmul", "--cost", "analytic", "--depth", "2",
         "--budget", "12", "--cache-dir", str(tmp_path / "cache")],
        capsys,
    )
    assert code == 0
    for token in ("measured", "analytic[cpu]", "analytic[gpu]", "analytic[fpga]"):
        assert token in text


def test_list_kernels(capsys):
    code, text = _run(["--list"], capsys)
    assert code == 0
    for name in ("matmul", "jacobi2d", "histogram", "query", "spmv", "gemm"):
        assert name in text


def test_no_command_is_usage_error(capsys):
    code, _ = _run([], capsys)
    assert code == 2


def test_unknown_kernel_fails(capsys):
    code, text = _run(["run", "nosuchkernel"], capsys)
    assert code == 1
    assert "nosuchkernel" in text
