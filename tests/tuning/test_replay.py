"""Satellite 3: winning tuner histories replay onto fresh SDFG copies and
the replayed variant matches the naive kernel through the interpreter
backend at 1e-8 — for all five fundamental kernels."""

import copy

import numpy as np
import pytest

from repro.codegen.compiler import compile_sdfg
from repro.sdfg.serialize import content_hash
from repro.transformations import replay
from repro.tuning import AnalyticCost, tune
from repro.workloads import kernels

#: Pool of structural rewrites that are legal across the kernel zoo.
POOL = [
    "MapReduceFusion",
    "MapFusion",
    "MapCollapse",
    "MapExpansion",
    "MapTiling",
    "Vectorization",
]

TUNE_KWARGS = dict(
    cost=AnalyticCost(machine="cpu", symbol_default=64),
    strategy="greedy",
    depth=2,
    budget=24,
    transformations=POOL,
)


def _tuned_history(kernel):
    sdfg = getattr(kernels, f"{kernel}_sdfg")()
    return tune(sdfg, **TUNE_KWARGS)


def _run(sdfg, data):
    """Execute through the interpreter backend on a private copy of data;
    returns the mutated arrays."""
    args = {k: copy.deepcopy(v) for k, v in data.items()}
    compile_sdfg(sdfg, backend="interpreter")(**args)
    return args


def _kernel_case(kernel):
    """(factory, data dict, extra scalars, output array names)."""
    if kernel == "matmul":
        return kernels.matmul_sdfg, kernels.matmul_data(8), {}, ["C"]
    if kernel == "jacobi2d":
        return kernels.jacobi2d_sdfg, kernels.jacobi2d_data(8), {"T": 3}, ["A"]
    if kernel == "histogram":
        return (
            kernels.histogram_sdfg,
            kernels.histogram_data(8, 10, bins=8),
            {},
            ["hist"],
        )
    if kernel == "query":
        return kernels.query_sdfg, kernels.query_data(40), {}, ["out", "size"]
    if kernel == "spmv":
        data, _csr = kernels.spmv_data(12, 3)
        return kernels.spmv_sdfg, data, {}, ["b"]
    raise KeyError(kernel)


@pytest.mark.parametrize("kernel", kernels.KERNELS)
def test_winning_history_replays_and_matches(kernel):
    factory, data, scalars, outputs = _kernel_case(kernel)
    result = _tuned_history(kernel)

    # Replaying the winner on a *fresh* copy reproduces the tuned graph.
    fresh = factory()
    replay(fresh, result.history)
    assert content_hash(fresh) == content_hash(result.sdfg)
    assert len(fresh.transformation_history) == len(result.history)

    naive_out = _run(factory(), {**data, **scalars})
    tuned_out = _run(fresh, {**data, **scalars})
    for name in outputs:
        np.testing.assert_allclose(
            tuned_out[name], naive_out[name], atol=1e-8, rtol=1e-8
        )


def test_search_finds_rewrites_somewhere():
    """The replay tests above are vacuous if every winner is empty; at
    least matmul must tune to a non-trivial sequence."""
    assert _tuned_history("matmul").history


def test_replay_accepts_plain_names_and_dict_entries():
    a, b = kernels.matmul_sdfg(), kernels.matmul_sdfg()
    replay(a, ["MapReduceFusion"])
    replay(b, [{"transformation": "MapReduceFusion", "match": 0}])
    assert content_hash(a) == content_hash(b)
