"""Search drivers and the tune() entry point — including the acceptance
path: measured tuning finds a matmul variant that beats the naive SDFG,
and a repeated invocation with the same cache dir short-circuits."""

import numpy as np
import pytest

from repro.instrumentation import InstrumentationRecorder
from repro.sdfg.serialize import content_hash
from repro.transformations import auto_optimize, replay
from repro.tuning import (
    AnalyticCost,
    MeasuredCost,
    TuningConfig,
    TuningReport,
    tune,
)
from repro.workloads import kernels

#: Search pool for matmul-shaped graphs: small, but contains the
#: known-good chain (fusion + vectorization) and known-bad moves.
POOL = ["MapReduceFusion", "MapFusion", "MapCollapse", "MapToForLoop", "Vectorization"]


class TestMeasuredAcceptance:
    def test_measured_tuning_beats_naive_and_caches(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        provider = MeasuredCost(symbol_default=24, repeats=3)
        first = tune(
            kernels.matmul_sdfg(),
            cost=provider,
            strategy="greedy",
            depth=3,
            budget=12,
            transformations=POOL,
            cache_dir=cache_dir,
        )
        assert not first.cache_hit
        assert first.history, "search found no improving sequence"
        assert first.best_score < first.baseline_score
        assert first.improved

        # The tuned variant still computes a correct matmul.
        data = kernels.matmul_data(16)
        ref = kernels.matmul_reference(data)
        first.sdfg.compile()(**data)
        np.testing.assert_allclose(data["C"], ref)

        # Same problem, same cache dir: the search is short-circuited.
        second = tune(
            kernels.matmul_sdfg(),
            cost=MeasuredCost(symbol_default=24, repeats=3),
            strategy="greedy",
            depth=3,
            budget=12,
            transformations=POOL,
            cache_dir=cache_dir,
        )
        assert second.cache_hit
        assert second.history == first.history
        assert second.report.cache["hit"] is True
        assert second.report.budget_used == 0  # no evaluations ran

    def test_different_config_misses_cache(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        kwargs = dict(
            cost=AnalyticCost(machine="cpu"),
            transformations=POOL,
            budget=8,
            cache_dir=cache_dir,
        )
        first = tune(kernels.matmul_sdfg(), depth=2, **kwargs)
        assert not first.cache_hit
        again = tune(kernels.matmul_sdfg(), depth=3, **kwargs)
        assert not again.cache_hit  # depth is part of the config key


class TestSearchDrivers:
    def test_greedy_deterministic_trace(self):
        def run():
            return tune(
                kernels.matmul_sdfg(),
                cost=AnalyticCost(machine="cpu"),
                strategy="greedy",
                depth=2,
                budget=16,
                transformations=POOL,
            )

        a, b = run(), run()
        assert a.history == b.history
        assert [c.to_json() for c in a.report.candidates] == [
            c.to_json() for c in b.report.candidates
        ]

    def test_beam_at_least_as_good_as_greedy(self):
        kwargs = dict(
            cost=AnalyticCost(machine="cpu"),
            depth=2,
            budget=32,
            transformations=POOL,
        )
        greedy = tune(kernels.matmul_sdfg(), strategy="greedy", **kwargs)
        beam = tune(
            kernels.matmul_sdfg(), strategy="beam", beam_width=3, **kwargs
        )
        assert beam.best_score <= greedy.best_score

    def test_budget_is_respected(self):
        result = tune(
            kernels.matmul_sdfg(),
            cost=AnalyticCost(machine="cpu"),
            strategy="beam",
            depth=4,
            beam_width=4,
            budget=5,
            transformations=POOL,
        )
        assert result.report.budget_used <= 5
        assert len(result.report.scored()) <= 5

    def test_rejects_unknown_strategy(self):
        with pytest.raises(ValueError):
            tune(kernels.matmul_sdfg(), cost=AnalyticCost(), strategy="anneal")

    def test_input_sdfg_never_mutated(self):
        sdfg = kernels.matmul_sdfg()
        before = content_hash(sdfg)
        tune(sdfg, cost=AnalyticCost(), depth=2, budget=8, transformations=POOL)
        assert content_hash(sdfg) == before
        assert sdfg.transformation_history == []

    def test_duplicate_variants_pruned(self):
        """Variants that converge to the same canonical content hash are
        scored once (MapExpansion rebuilds maps, erasing a prior
        Vectorization mark, so both orders collapse)."""
        result = tune(
            kernels.matmul_sdfg(),
            cost=AnalyticCost(machine="cpu"),
            strategy="beam",
            depth=2,
            beam_width=4,
            budget=40,
            transformations=["MapExpansion", "Vectorization"],
        )
        assert any(
            c.status == "pruned_duplicate" for c in result.report.candidates
        )


class TestReportAndInstrumentation:
    def test_report_json_round_trip(self, tmp_path):
        result = tune(
            kernels.matmul_sdfg(),
            cost=AnalyticCost(machine="cpu"),
            depth=2,
            budget=8,
            transformations=POOL,
        )
        path = str(tmp_path / "report.json")
        result.report.save(path)
        loaded = TuningReport.load(path)
        assert loaded.to_json() == result.report.to_json()
        assert loaded.render() == result.report.render()
        assert loaded.speedup() == result.report.speedup()

    def test_tuning_and_cache_events_on_recorder(self, tmp_path):
        rec = InstrumentationRecorder()
        tune(
            kernels.matmul_sdfg(),
            cost=AnalyticCost(machine="cpu"),
            depth=1,
            budget=4,
            transformations=POOL,
            cache_dir=str(tmp_path / "c"),
            recorder=rec,
        )
        kinds = {k for (k, _label) in rec.root.children}
        assert "tuning" in kinds
        assert "cache" in kinds
        assert rec.is_balanced()


class TestAutoOptimizeIntegration:
    def test_search_strategy_applies_in_place(self):
        sdfg = kernels.matmul_sdfg()
        applied = auto_optimize(
            sdfg,
            strategy="search",
            cost=AnalyticCost(machine="cpu"),
            depth=2,
            budget=12,
            transformations=POOL,
        )
        assert applied == len(sdfg.transformation_history) > 0
        data = kernels.matmul_data(12)
        ref = kernels.matmul_reference(data)
        sdfg.compile()(**data)
        np.testing.assert_allclose(data["C"], ref)

    def test_search_result_replayable_through_optimizer(self):
        result = tune(
            kernels.matmul_sdfg(),
            cost=AnalyticCost(machine="cpu"),
            depth=2,
            budget=12,
            transformations=POOL,
        )
        fresh = kernels.matmul_sdfg()
        replay(fresh, result.history)
        assert content_hash(fresh) == content_hash(result.sdfg)

    def test_rejects_unknown_auto_strategy(self):
        with pytest.raises(ValueError):
            auto_optimize(kernels.matmul_sdfg(), strategy="mystery")


class TestConfig:
    def test_config_key_stable_and_sensitive(self):
        a = TuningConfig(strategy="greedy", depth=3)
        b = TuningConfig(strategy="greedy", depth=3)
        assert a.key() == b.key()
        assert a.key() != TuningConfig(strategy="beam", depth=3).key()
        assert a.key() != TuningConfig(strategy="greedy", depth=4).key()

    def test_default_pool_excludes_hardware_offloads(self):
        cfg = TuningConfig()
        pool = cfg.pool()
        assert "GPUTransform" not in pool
        assert "FPGATransform" not in pool
        assert "MapFusion" in pool
        assert pool == sorted(pool)
