"""The cutout-parallel tuner: dedup-aware fan-out, history stitching,
differential verification, cache behaviour, and the CLI surface."""

import copy
import json
import os

import numpy as np
import pytest

from repro.telemetry.sink import TelemetrySink, install_sink, uninstall_sink
from repro.tune import main as tune_main
from repro.tuning import (
    CUTOUT_POOL_EXCLUDED,
    AnalyticCost,
    TuningConfig,
    cutout_pool,
    tune,
    tune_cutouts,
)
from repro.workloads import kernels

LINKS = 3
SIZE = 8


def _chain():
    return kernels.gemm_chain_sdfg(LINKS)


def _verify_inputs():
    data = kernels.gemm_chain_data(SIZE)
    return dict(data, N=SIZE)


def _run(sdfg, data):
    env = {k: np.array(v, copy=True) for k, v in data.items()}
    sdfg.invalidate_compiled()
    sdfg.compile()(**env, N=SIZE)
    return env["C"]


# ---------------------------------------------------------------- pools
def test_cutout_pool_excludes_interstate_and_hardware():
    pool = cutout_pool()
    assert not set(pool) & CUTOUT_POOL_EXCLUDED
    assert "MapTiling" in pool and "OnTheFlyMapFusion" in pool


# ------------------------------------------------------------ end to end
class TestTuneCutouts:
    def test_stitched_result_matches_at_1e8(self):
        sdfg = _chain()
        result = tune_cutouts(sdfg, cost="analytic")
        assert result.report.cutouts["verification"].startswith("ok")
        data = kernels.gemm_chain_data(SIZE)
        ref = kernels.gemm_chain_reference(data, LINKS)
        got = _run(result.sdfg, data)
        scale = max(1.0, float(np.max(np.abs(ref))))
        assert np.max(np.abs(got - ref)) / scale <= 1e-8

    def test_dedup_counters(self):
        result = tune_cutouts(_chain(), cost="analytic")
        cuts = result.report.cutouts
        assert cuts["total"] == 2 * LINKS
        assert cuts["unique"] == LINKS + 1
        assert cuts["deduplicated"] == LINKS - 1
        assert cuts["stitched"] > 0

    def test_history_replays_per_member(self):
        """Each member of a deduplicated group gets the winning history
        applied at its own match indices (stitched > unique implies the
        init-group winner was replayed onto several states)."""
        result = tune_cutouts(_chain(), cost="analytic")
        assert result.history, "expected a non-empty stitched history"
        per = result.report.cutouts["per_cutout"]
        init_groups = [p for p in per if len(p["members"]) > 1]
        assert init_groups and len(init_groups[0]["members"]) == LINKS
        assert len(init_groups[0]["stitched"]) == LINKS

    def test_cache_roundtrip(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        cold = tune_cutouts(_chain(), cost="analytic", cache_dir=cache_dir)
        assert not cold.cache_hit
        warm = tune_cutouts(_chain(), cost="analytic", cache_dir=cache_dir)
        assert warm.cache_hit  # every unique cutout served from cache
        assert warm.report.cache["hits"] >= LINKS + 1

    def test_worker_pool_jobs2(self):
        result = tune_cutouts(_chain(), cost="analytic", jobs=2)
        assert result.report.cutouts["jobs"] == 2
        assert result.report.cutouts["verification"].startswith("ok")
        data = kernels.gemm_chain_data(SIZE)
        ref = kernels.gemm_chain_reference(data, LINKS)
        got = _run(result.sdfg, data)
        scale = max(1.0, float(np.max(np.abs(ref))))
        assert np.max(np.abs(got - ref)) / scale <= 1e-8

    def test_custom_provider_forces_in_process(self):
        calls = []

        class Counting(AnalyticCost):
            def score(self, sdfg):
                calls.append(sdfg.name)
                return super().score(sdfg)

        result = tune_cutouts(_chain(), cost=Counting(), jobs=4)
        # Unpicklable/stateful provider: must run in-process (calls
        # observed here), never silently dropped into workers.
        assert calls
        assert result.report.cutouts["verification"].startswith("ok")

    def test_via_tune_strategy_dispatch(self):
        result = tune(_chain(), cost="analytic", strategy="cutout", jobs=1)
        assert result.report.strategy == "cutout"
        assert result.report.cutouts["total"] == 2 * LINKS

    def test_telemetry_events_published(self):
        sink = TelemetrySink()
        install_sink(sink)
        try:
            tune_cutouts(_chain(), cost="analytic")
        finally:
            uninstall_sink()
        events, _, _ = sink.drain(0)
        labels = [ev.label for ev in events if ev.kind == "tuning"]
        assert "cutout:dedup" in labels
        assert "cutout:pool" in labels
        per_cutout = [
            label for label in labels
            if label.startswith("cutout:")
            and label not in ("cutout:dedup", "cutout:pool")
        ]
        assert len(per_cutout) == LINKS + 1  # one event per unique group


# ----------------------------------------------- per-transformation stats
def test_search_reports_per_transformation_stats():
    sink = TelemetrySink()
    install_sink(sink)
    try:
        result = tune(
            kernels.matmul_sdfg(),
            cost="analytic",
            depth=2,
            budget=12,
        )
    finally:
        uninstall_sink()
    stats = result.report.transformations
    assert stats, "expected per-transformation search statistics"
    accepted = {n for n, s in stats.items() if s["accepted"]}
    assert accepted  # the greedy search accepted at least one step
    for name, s in stats.items():
        assert s["candidates"] >= s["accepted"] + s["rejected"]
        assert s["apply_s"] >= 0.0 and s["evaluate_s"] >= 0.0
    events, _, _ = sink.drain(0)
    xform_labels = {
        ev.label for ev in events
        if ev.kind == "tuning" and ev.label.startswith("xform:")
    }
    assert xform_labels == {f"xform:{n}" for n in stats}


def test_report_roundtrips_new_sections(tmp_path):
    result = tune_cutouts(_chain(), cost="analytic")
    path = str(tmp_path / "r.json")
    result.report.save(path)
    from repro.tuning import TuningReport

    loaded = TuningReport.load(path)
    assert loaded.cutouts == json.loads(json.dumps(result.report.cutouts))
    assert "cutouts:" in loaded.render()


# ------------------------------------------------------------------- CLI
class TestCli:
    def _run(self, argv, capsys):
        code = tune_main(argv)
        out = capsys.readouterr()
        return code, out.out + out.err

    def test_cutout_flag_and_assert_dedup(self, tmp_path, capsys):
        code, text = self._run(
            ["run", "gemm_chain", "--cutout", "--cost", "analytic",
             "--jobs", "2", "--cache-dir", str(tmp_path / "c"),
             "--assert-dedup"],
            capsys,
        )
        assert code == 0
        assert "cutouts:" in text

    def test_second_cutout_run_hits_cache(self, tmp_path, capsys):
        common = ["run", "gemm_chain", "--cutout", "--cost", "analytic",
                  "--cache-dir", str(tmp_path / "c")]
        assert self._run(common, capsys)[0] == 0
        code, _ = self._run(common + ["--assert-cache-hit"], capsys)
        assert code == 0

    def test_assert_dedup_fails_on_single_kernel(self, tmp_path, capsys):
        # matmul has one non-trivial state: nothing to deduplicate.
        code, text = self._run(
            ["run", "matmul", "--cutout", "--cost", "analytic",
             "--assert-dedup"],
            capsys,
        )
        assert code == 1
        assert "dedup" in text


# ---------------------------------------------------------- drift retune
class TestDriftRetune:
    def _snapshot(self, tmp_path, observed_ms):
        path = tmp_path / "snapshot.json"
        path.write_text(json.dumps({
            "kernels": {
                "gemm_chain": {"p50": observed_ms, "count": 10},
            }
        }))
        return str(path)

    def _baselines(self, tmp_path):
        base = tmp_path / "baselines"
        base.mkdir()
        (base / "BENCH_t.json").write_text(json.dumps({
            "kernels": {"gemm_chain": {"p50": 0.001}},
        }))
        return str(base)

    def test_no_drift_no_retune(self, tmp_path, capsys):
        code = tune_main([
            "--if-drifted", self._snapshot(tmp_path, 0.001),
            "--baselines", self._baselines(tmp_path),
            "--cost", "analytic",
        ])
        text = capsys.readouterr().out
        assert code == 0
        assert "no drifted kernels" in text

    def test_drift_invalidates_and_retunes(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        # Populate the cache for gemm_chain first.
        assert tune_main([
            "run", "gemm_chain", "--cost", "analytic", "--depth", "1",
            "--budget", "4", "--cache-dir", cache_dir,
        ]) == 0
        capsys.readouterr()
        code = tune_main([
            "--if-drifted", self._snapshot(tmp_path, 0.5),
            "--baselines", self._baselines(tmp_path),
            "--cost", "analytic", "--depth", "1", "--budget", "4",
            "--cache-dir", cache_dir,
        ])
        text = capsys.readouterr().out
        assert code == 0
        assert "drifted" in text
        assert "invalidated 1 cache entry" in text
        # The retune ran a fresh search (cache was invalidated).
        assert "cache: miss" in text

    def test_drift_invalidates_cutout_entries(self, tmp_path, capsys):
        """Per-cutout cache entries (named ``<kernel>_cut_<state>``)
        belong to the drifted kernel: ``--if-drifted --cutout`` must
        invalidate them too, not warm-hit the stale winners."""
        cache_dir = str(tmp_path / "cache")
        assert tune_main([
            "run", "gemm_chain", "--cost", "analytic", "--cutout",
            "--budget", "4", "--cache-dir", cache_dir,
        ]) == 0
        capsys.readouterr()
        code = tune_main([
            "--if-drifted", self._snapshot(tmp_path, 0.5),
            "--baselines", self._baselines(tmp_path),
            "--cost", "analytic", "--cutout", "--budget", "4",
            "--cache-dir", cache_dir,
        ])
        text = capsys.readouterr().out
        assert code == 0
        # One entry per unique cutout group (LINKS + 1 for the default
        # 8-link CLI chain: 9), all gone.
        assert "invalidated 9 cache entries" in text
        assert "cache: miss" in text

    def test_missing_snapshot_is_error(self, tmp_path, capsys):
        code = tune_main([
            "--if-drifted", str(tmp_path / "nope.json"),
            "--baselines", self._baselines(tmp_path),
        ])
        assert code == 1
