"""Differential property tests: every registered Appendix-B
transformation, applied transactionally through ``GuardedOptimizer`` to
a representative SDFG, preserves outputs versus the untransformed SDFG
on random inputs (max abs error ≤ 1e-8)."""

import numpy as np
import pytest

import repro as rp
from repro.sdfg import SDFG, Memlet, dtypes
from repro.transformations import REGISTRY, GuardedOptimizer, apply_transformations

M, K, N = rp.symbol("M"), rp.symbol("K"), rp.symbol("N")


# ------------------------------------------------------- graph builders
def mm_sdfg():
    @rp.program
    def mm(A: rp.float64[M, K], B: rp.float64[K, N], C: rp.float64[M, N]):
        C = A @ B

    mm._sdfg = None
    return mm.to_sdfg()


def mm_inputs(rng):
    return {
        "A": rng.rand(6, 5),
        "B": rng.rand(5, 4),
        "C": np.zeros((6, 4)),
        "M": 6,
        "K": 5,
        "N": 4,
    }


def nested_copy_sdfg():
    sdfg = SDFG("nest2")
    sdfg.add_array("A", ("N", "N"), dtypes.float64)
    sdfg.add_array("B", ("N", "N"), dtypes.float64)
    st = sdfg.add_state()
    ome, omx = st.add_map("outer", {"i": "0:N"})
    ime, imx = st.add_map("inner", {"j": "0:N"})
    t = st.add_tasklet("t", ["a"], ["b"], "b = a * 2")
    r, w = st.add_read("A"), st.add_write("B")
    st.add_memlet_path(r, ome, ime, t, memlet=Memlet.simple("A", "i, j"), dst_conn="a")
    st.add_memlet_path(t, imx, omx, w, memlet=Memlet.simple("B", "i, j"), src_conn="b")
    return sdfg


def copy2_inputs(rng):
    return {"A": rng.rand(6, 6), "B": np.zeros((6, 6)), "N": 6}


def flat_copy_sdfg():
    """One 2D map (collapsible form for MapExpansion)."""
    sdfg = SDFG("flat2")
    sdfg.add_array("A", ("N", "N"), dtypes.float64)
    sdfg.add_array("B", ("N", "N"), dtypes.float64)
    st = sdfg.add_state()
    st.add_mapped_tasklet(
        "c",
        {"i": "0:N", "j": "0:N"},
        inputs={"a": Memlet.simple("A", "i, j")},
        code="b = a * 2",
        outputs={"b": Memlet.simple("B", "i, j")},
    )
    return sdfg


def scale_sdfg():
    @rp.program
    def scale(A: rp.float64[N]):
        for i in rp.map[0:N]:
            A[i] = A[i] * 3

    scale._sdfg = None
    return scale.to_sdfg()


def two_maps_sdfg():
    @rp.program
    def two_maps(A: rp.float64[N], C: rp.float64[N]):
        tmp: rp.float64[N]
        for i in rp.map[0:N]:
            tmp[i] = A[i] * 2
        for j in rp.map[0:N]:
            C[j] = tmp[j] + 1

    two_maps._sdfg = None
    return two_maps.to_sdfg()


def stream_filter_sdfg():
    sdfg = SDFG("filter")
    sdfg.add_array("A", ("N",), dtypes.float64)
    sdfg.add_stream("S", dtypes.float64, transient=True)
    sdfg.add_array("out", ("N",), dtypes.float64)
    st = sdfg.add_state()
    st.add_mapped_tasklet(
        "f",
        {"i": "0:N"},
        inputs={"a": Memlet.simple("A", "i")},
        code="if a > 0.5:\n    s = a",
        outputs={"s": Memlet(data="S", subset="0", dynamic=True)},
    )
    s_node = [n for n in st.data_nodes() if n.data == "S"][0]
    o_node = st.add_write("out")
    st.add_nedge(s_node, o_node)
    return sdfg


def redundant_sdfg():
    sdfg = SDFG("red")
    sdfg.add_array("A", ("N",), dtypes.float64)
    sdfg.add_transient("tmp", ("N",), dtypes.float64, find_new_name=False)
    sdfg.add_array("B", ("N",), dtypes.float64)
    st = sdfg.add_state()
    st.add_mapped_tasklet(
        "t",
        {"i": "0:N"},
        inputs={"a": Memlet.simple("A", "i")},
        code="b = a + 1",
        outputs={"b": Memlet.simple("tmp", "i")},
    )
    tmp_node = [n for n in st.data_nodes() if n.data == "tmp"][0]
    b_node = st.add_write("B")
    st.add_edge(tmp_node, b_node, Memlet.simple("tmp", "0:N"), None, None)
    return sdfg


def two_state_sdfg():
    from repro.sdfg import InterstateEdge

    sdfg = SDFG("two")
    sdfg.add_array("A", ("N",), dtypes.float64)
    sdfg.add_transient("t1", ("N",), dtypes.float64, find_new_name=False)
    sdfg.add_array("B", ("N",), dtypes.float64)
    s1 = sdfg.add_state("s1")
    s1.add_mapped_tasklet(
        "m1",
        {"i": "0:N"},
        inputs={"a": Memlet.simple("A", "i")},
        code="b = a * 2",
        outputs={"b": Memlet.simple("t1", "i")},
    )
    s2 = sdfg.add_state("s2")
    s2.add_mapped_tasklet(
        "m2",
        {"i": "0:N"},
        inputs={"a": Memlet.simple("t1", "i")},
        code="b = a + 1",
        outputs={"b": Memlet.simple("B", "i")},
    )
    sdfg.add_edge(s1, s2, InterstateEdge())
    return sdfg


def nested_sdfg():
    inner = SDFG("inner")
    inner.add_array("x", ("N",), dtypes.float64)
    ist = inner.add_state()
    ist.add_mapped_tasklet(
        "scale",
        {"i": "0:N"},
        inputs={"a": Memlet.simple("x", "i")},
        code="b = a * 5",
        outputs={"b": Memlet.simple("x", "i")},
    )
    outer = SDFG("outer")
    outer.add_array("A", ("N",), dtypes.float64)
    st = outer.add_state()
    node = st.add_nested_sdfg(inner, ["x"], ["x"], symbol_mapping={"N": "N"})
    st.add_edge(st.add_read("A"), node, Memlet.simple("A", "0:N"), None, "x")
    st.add_edge(node, st.add_write("A"), Memlet.simple("A", "0:N"), "x", None)
    return outer


def tasklet_chain_sdfg():
    """tasklet -> scalar transient -> tasklet, inside one map scope."""
    sdfg = SDFG("tchain")
    sdfg.add_array("A", ("N",), dtypes.float64)
    sdfg.add_array("B", ("N",), dtypes.float64)
    sdfg.add_transient("mid", (1,), dtypes.float64, find_new_name=False)
    st = sdfg.add_state()
    me, mx = st.add_map("m", {"i": "0:N"})
    t1 = st.add_tasklet("t1", ["a"], ["x"], "x = a * 2")
    t2 = st.add_tasklet("t2", ["y"], ["b"], "b = y + 1")
    mid = st.add_read("mid")
    r, w = st.add_read("A"), st.add_write("B")
    st.add_memlet_path(r, me, t1, memlet=Memlet.simple("A", "i"), dst_conn="a")
    st.add_edge(t1, mid, Memlet.simple("mid", "0"), "x", None)
    st.add_edge(mid, t2, Memlet.simple("mid", "0"), None, "y")
    st.add_memlet_path(t2, mx, w, memlet=Memlet.simple("B", "i"), src_conn="b")
    return sdfg


def otf_maps_sdfg():
    """Producer map feeding a consumer map through a transient, with a
    shifted read (``tmp[j - 1]``) so the recompute is non-trivial."""
    sdfg = SDFG("otf")
    sdfg.add_array("A", ("N",), dtypes.float64)
    sdfg.add_array("B", ("N",), dtypes.float64)
    sdfg.add_transient("tmp", ("N",), dtypes.float64, find_new_name=False)
    st = sdfg.add_state()
    st.add_mapped_tasklet(
        "prod",
        {"i": "0:N"},
        inputs={"a": Memlet.simple("A", "i")},
        code="t = a * 2.0",
        outputs={"t": Memlet.simple("tmp", "i")},
    )
    tmp_node = [n for n in st.data_nodes() if n.data == "tmp"][0]
    st.add_mapped_tasklet(
        "cons",
        {"j": "1:N"},
        inputs={"t": Memlet.simple("tmp", "j - 1")},
        code="b = t + 1.0",
        outputs={"b": Memlet.simple("B", "j")},
        input_nodes={"tmp": tmp_node},
    )
    return sdfg


def vec_inputs(rng):
    return {"A": rng.rand(9), "N": 9}


def vec2_inputs(rng):
    return {"A": rng.rand(9), "C": np.zeros(9), "N": 9}


def vecB_inputs(rng):
    return {"A": rng.rand(9), "B": np.zeros(9), "N": 9}


def filter_inputs(rng):
    return {"A": rng.rand(9), "out": np.zeros(9), "N": 9}


#: transformation name -> (builder, inputs builder, options, preconditions)
CASES = {
    "MapCollapse": (nested_copy_sdfg, copy2_inputs, None, []),
    "MapExpansion": (flat_copy_sdfg, copy2_inputs, None, []),
    "MapInterchange": (nested_copy_sdfg, copy2_inputs, None, []),
    "MapTiling": (nested_copy_sdfg, copy2_inputs, {"tile_sizes": (4,)}, []),
    "Vectorization": (mm_sdfg, mm_inputs, None, ["MapReduceFusion"]),
    "MapToForLoop": (scale_sdfg, vec_inputs, None, []),
    "MapFusion": (two_maps_sdfg, vec2_inputs, None, []),
    "MapReduceFusion": (mm_sdfg, mm_inputs, None, []),
    "TaskletFusion": (tasklet_chain_sdfg, vecB_inputs, None, []),
    "OnTheFlyMapFusion": (otf_maps_sdfg, vecB_inputs, None, []),
    "LocalStorage": (nested_copy_sdfg, copy2_inputs, None, []),
    "LocalStream": (stream_filter_sdfg, filter_inputs, None, []),
    "DoubleBuffering": (nested_copy_sdfg, copy2_inputs, None, ["LocalStorage"]),
    "RedundantArray": (redundant_sdfg, vecB_inputs, None, []),
    "StateFusion": (two_state_sdfg, vecB_inputs, None, []),
    "InlineSDFG": (nested_sdfg, vec_inputs, None, []),
    "GPUTransform": (nested_copy_sdfg, copy2_inputs, None, []),
    "FPGATransform": (nested_copy_sdfg, copy2_inputs, None, []),
    "MPITransform": (nested_copy_sdfg, copy2_inputs, None, []),
}


def test_every_registered_transformation_has_a_case():
    """New transformations must add a differential property case."""
    assert set(CASES) == set(REGISTRY)


@pytest.mark.parametrize("name", sorted(CASES))
def test_transformation_preserves_outputs(name):
    builder, make_inputs, options, preconditions = CASES[name]
    sdfg = builder()
    for pre in preconditions:
        assert apply_transformations(sdfg, pre) == 1, f"precondition {pre} failed"
    inputs = make_inputs(np.random.RandomState(0))
    guard = GuardedOptimizer(sdfg, verify=True, verify_inputs=inputs, tolerance=1e-8)
    assert guard.apply(name, options=options) is True, guard.report.summary()
    att = guard.report.attempts[-1]
    assert att.status == "applied"
    assert att.verified == "ok", att
    assert att.max_abs_error is not None and att.max_abs_error <= 1e-8
