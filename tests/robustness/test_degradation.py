"""Fault injection for the backend degradation chain
(cpp → python → interpreter): a missing host compiler, a failing
compiler invocation, a broken ctypes load, or a raising generator must
each still yield a runnable artifact, with every fallback recorded."""

import subprocess
import unittest.mock

import numpy as np
import pytest

import repro as rp
from repro.codegen import cpp_gen
from repro.codegen.common import CodegenError
from repro.codegen.compiler import compile_sdfg
from repro.codegen.python_gen import PythonGenerator
from repro.sdfg import SDFG, Memlet, dtypes

N = rp.symbol("N")


def scale_sdfg():
    sdfg = SDFG("scale")
    sdfg.add_array("A", ("N",), dtypes.float64)
    st = sdfg.add_state()
    st.add_mapped_tasklet(
        "s",
        {"i": "0:N"},
        inputs={"a": Memlet.simple("A", "i")},
        code="b = a * 2",
        outputs={"b": Memlet.simple("A", "i")},
    )
    return sdfg


def run_and_check(compiled):
    A = np.random.rand(8)
    ref = A * 2
    compiled(A=A, N=8)
    np.testing.assert_allclose(A, ref)


def test_missing_compiler_degrades_cpp_to_python():
    sdfg = scale_sdfg()
    with unittest.mock.patch.object(cpp_gen, "find_host_compiler", lambda: None):
        compiled = compile_sdfg(sdfg, backend="cpp")
    assert compiled.requested_backend == "cpp"
    assert compiled.backend == "python"
    assert [rec["to"] for rec in compiled.degradation] == ["python"]
    assert compiled.degradation[0]["code"] == "CG101"
    run_and_check(compiled)


def test_failing_compiler_invocation_degrades():
    sdfg = scale_sdfg()

    def boom(cmd, **kw):
        raise OSError("gcc: cannot execute binary file")

    with unittest.mock.patch.object(cpp_gen.subprocess, "run", boom):
        compiled = compile_sdfg(sdfg, backend="cpp")
    assert compiled.backend == "python"
    assert compiled.degradation[0]["code"] == "CG101"
    run_and_check(compiled)


def test_compile_error_degrades():
    sdfg = scale_sdfg()
    fake = subprocess.CompletedProcess(args=[], returncode=1, stdout="", stderr="ICE")
    with unittest.mock.patch.object(cpp_gen.subprocess, "run", lambda *a, **k: fake):
        compiled = compile_sdfg(sdfg, backend="cpp")
    assert compiled.backend == "python"
    assert compiled.degradation[0]["code"] == "CG102"
    run_and_check(compiled)


def test_ctypes_load_failure_degrades(monkeypatch):
    # In-process loading only happens with crash isolation off (the
    # isolated harness dlopens in the child instead).
    monkeypatch.setenv("REPRO_ISOLATE", "0")
    sdfg = scale_sdfg()
    if cpp_gen.find_host_compiler() is None:
        pytest.skip("no host compiler; covered by missing-compiler test")

    def bad_cdll(path):
        raise OSError(f"{path}: invalid ELF header")

    with unittest.mock.patch.object(cpp_gen.ctypes, "CDLL", bad_cdll):
        compiled = compile_sdfg(sdfg, backend="cpp")
    assert compiled.backend == "python"
    assert compiled.degradation[0]["code"] == "CG103"
    run_and_check(compiled)


def test_python_generator_failure_degrades_to_interpreter():
    sdfg = scale_sdfg()

    def raise_codegen(self):
        raise CodegenError("unsupported construct", code="CG000")

    with unittest.mock.patch.object(PythonGenerator, "generate", raise_codegen):
        compiled = compile_sdfg(sdfg, backend="python")
    assert compiled.requested_backend == "python"
    assert compiled.backend == "interpreter"
    assert [rec["to"] for rec in compiled.degradation] == ["interpreter"]
    run_and_check(compiled)


def test_double_degradation_cpp_to_interpreter():
    """Both generators down: cpp → python → interpreter still runs."""
    sdfg = scale_sdfg()

    def raise_codegen(self):
        raise CodegenError("unsupported construct", code="CG000")

    with unittest.mock.patch.object(cpp_gen, "find_host_compiler", lambda: None), \
         unittest.mock.patch.object(PythonGenerator, "generate", raise_codegen):
        compiled = compile_sdfg(sdfg, backend="cpp")
    assert compiled.backend == "interpreter"
    assert [rec["to"] for rec in compiled.degradation] == ["python", "interpreter"]
    run_and_check(compiled)


def test_fallback_false_reraises():
    sdfg = scale_sdfg()
    with unittest.mock.patch.object(cpp_gen, "find_host_compiler", lambda: None):
        with pytest.raises(CodegenError, match="no host C..? compiler"):
            compile_sdfg(sdfg, backend="cpp", fallback=False)


def test_malformed_generated_python_degrades():
    """Generated source the host CPython rejects (SyntaxError) falls
    through to the interpreter rather than raising."""
    sdfg = scale_sdfg()
    with unittest.mock.patch.object(
        PythonGenerator, "generate", lambda self: "def main(:\n"
    ):
        compiled = compile_sdfg(sdfg, backend="python")
    assert compiled.backend == "interpreter"
    assert compiled.degradation[0]["error"] == "SyntaxError"
    run_and_check(compiled)


def test_no_degradation_recorded_on_clean_compile():
    compiled = compile_sdfg(scale_sdfg(), backend="python")
    assert compiled.backend == "python"
    assert compiled.requested_backend == "python"
    assert compiled.degradation == []
    run_and_check(compiled)


def test_invalid_sdfg_is_not_masked_by_fallback():
    """Degradation covers backend faults, not broken SDFGs: validation
    errors must still surface."""
    from repro.sdfg import InvalidSDFGError

    sdfg = SDFG("broken")
    st = sdfg.add_state()
    st.add_access("ghost")
    with pytest.raises(InvalidSDFGError):
        compile_sdfg(sdfg, backend="cpp")
