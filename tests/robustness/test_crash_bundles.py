"""Crash-bundle naming under concurrency.

The pre-service harness named bundles with ``tempfile.mkdtemp`` inside
one process; a *pool* of crash-isolated workers (and a supervisor
writing bundles on their behalf) needs names that cannot collide across
threads or processes: ``<stem>_<pid>_<seq>``."""

import os
import re
import subprocess
import sys
import threading

from repro.runtime.isolation import _unique_bundle_dir, write_crash_bundle

SRC = os.path.realpath(os.path.join(os.path.dirname(__file__), "..", "..", "src"))


def test_bundle_dir_name_encodes_pid_and_sequence(tmp_path):
    first = _unique_bundle_dir(str(tmp_path), "scale")
    second = _unique_bundle_dir(str(tmp_path), "scale")
    pattern = re.compile(rf"scale_{os.getpid()}_(\d{{6}})$")
    m1, m2 = pattern.search(first), pattern.search(second)
    assert m1 and m2, (first, second)
    assert int(m2.group(1)) > int(m1.group(1)), "sequence is monotonic"
    assert os.path.isdir(first) and os.path.isdir(second)


def test_simultaneous_crashing_workers_get_distinct_bundles(tmp_path):
    """The regression case: many threads (supervisor writing for several
    dying workers at once) racing the same stem must never collide."""
    dirs = []
    lock = threading.Lock()
    barrier = threading.Barrier(8)

    def crashing_worker():
        barrier.wait()  # maximize simultaneity
        for _ in range(10):
            path = _unique_bundle_dir(str(tmp_path), "scale")
            with lock:
                dirs.append(path)

    threads = [threading.Thread(target=crashing_worker) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    assert len(dirs) == 80
    assert len(set(dirs)) == 80, "two simultaneous crashes shared a bundle"
    for path in dirs:
        assert os.path.isdir(path)


def test_two_processes_writing_bundles_never_collide(tmp_path):
    """Distinct pids in the name make cross-process collisions
    structurally impossible — even with identical stems and sequences."""
    script = f"""
import sys
sys.path.insert(0, {SRC!r})
from repro.runtime.isolation import _unique_bundle_dir
for _ in range(25):
    print(_unique_bundle_dir({str(tmp_path)!r}, "scale"))
"""
    procs = [
        subprocess.Popen([sys.executable, "-c", script],
                         stdout=subprocess.PIPE, stderr=subprocess.STDOUT)
        for _ in range(2)
    ]
    paths = []
    for p in procs:
        out, _ = p.communicate(timeout=120)
        assert p.returncode == 0, out.decode(errors="replace")
        paths.extend(out.decode().split())
    assert len(paths) == 50
    assert len(set(paths)) == 50


def test_stale_bundle_name_from_previous_run_is_skipped(tmp_path):
    """A leftover directory with the next name (counter restarted after
    a crash of the *supervisor*) is skipped, not reused."""
    probe = _unique_bundle_dir(str(tmp_path), "scale")
    seq = int(probe.rsplit("_", 1)[1])
    squatter = os.path.join(str(tmp_path), f"scale_{os.getpid()}_{seq + 1:06d}")
    os.makedirs(squatter)
    marker = os.path.join(squatter, "marker")
    open(marker, "w").close()
    nxt = _unique_bundle_dir(str(tmp_path), "scale")
    assert nxt != squatter
    assert os.path.exists(marker), "existing bundle left untouched"


def test_write_crash_bundle_concurrent_same_sdfg(tmp_path, monkeypatch):
    """End-to-end through write_crash_bundle: same SDFG name crashing in
    several threads at once produces one intact bundle each."""
    from repro.sdfg import SDFG, dtypes

    monkeypatch.setenv("REPRO_CRASH_DIR", str(tmp_path))

    def make_sdfg():
        sdfg = SDFG("same_name")
        sdfg.add_array("A", ("N",), dtypes.float64)
        sdfg.add_state()
        return sdfg

    bundles = []
    lock = threading.Lock()
    barrier = threading.Barrier(4)

    def crash():
        barrier.wait()
        for _ in range(3):
            b = write_crash_bundle(
                make_sdfg(), {"sdfg": "same_name", "symbols": {"N": 4},
                              "arrays": []}, stderr="boom"
            )
            with lock:
                bundles.append(b)

    threads = [threading.Thread(target=crash) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
    assert len(bundles) == 12 and None not in bundles
    assert len(set(bundles)) == 12
    for b in bundles:
        assert os.path.exists(os.path.join(b, "sdfg.json"))
        assert os.path.exists(os.path.join(b, "manifest.json"))
