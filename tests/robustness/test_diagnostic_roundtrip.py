"""Property-based wire-format tests: every diagnostic the stack can
emit — and ones only a newer peer could emit — survives
``to_json``/``from_json`` round-trips."""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.diagnostics import CODES, Diagnostic, Severity

_location = st.none() | st.text(min_size=0, max_size=40)
_severities = st.sampled_from(list(Severity))
_registered = st.sampled_from(sorted(CODES))
#: Codes no current build emits (a newer peer, a typo'd tool) — the
#: wire format must rehydrate them rather than crash.
_unknown = st.from_regex(r"[A-Z]{1,2}[0-9]{3}", fullmatch=True).filter(
    lambda c: c not in CODES
)


def _diagnostics(codes):
    return st.builds(
        Diagnostic,
        code=codes,
        severity=_severities,
        message=st.text(max_size=200),
        sdfg=_location,
        state=_location,
        node=_location,
        data=_location,
    )


@settings(max_examples=200, deadline=None)
@given(_diagnostics(_registered))
def test_registered_codes_round_trip(diag):
    wire = json.loads(json.dumps(diag.to_json()))  # a real serialize hop
    back = Diagnostic.from_json(wire)
    assert back == diag


def test_every_registered_code_round_trips_exactly():
    """Exhaustive, not sampled: each of the registered codes."""
    for code in sorted(CODES):
        for severity in Severity:
            diag = Diagnostic(code=code, severity=severity,
                              message=CODES[code], sdfg="s", state=None,
                              node="n", data=None)
            assert Diagnostic.from_json(diag.to_json()) == diag


@settings(max_examples=100, deadline=None)
@given(_diagnostics(_unknown))
def test_unknown_codes_rehydrate_without_crashing(diag):
    back = Diagnostic.from_json(json.loads(json.dumps(diag.to_json())))
    assert back.code == diag.code
    assert back.severity == diag.severity


@settings(max_examples=50, deadline=None)
@given(code=_registered, severity=st.text(min_size=1, max_size=20))
def test_unknown_severities_degrade_to_warning(code, severity):
    wire = {"code": code, "severity": severity, "message": "m"}
    back = Diagnostic.from_json(wire)
    if severity in Severity.__members__:
        assert back.severity == Severity[severity]
    else:
        assert back.severity == Severity.WARNING
