"""Tests for the static write-conflict detector (paper §3.2: writes
that may conflict require a write-conflict-resolution memlet)."""

import pytest

from repro.sdfg import SDFG, Memlet, dtypes
from repro.sdfg.validation import detect_write_conflicts, validate_sdfg
from repro.diagnostics import Severity


def racy_sdfg(wcr=None, dynamic=False):
    """A 2D map writing ``out[i]``: iterations over j overlap."""
    sdfg = SDFG("racy" if wcr is None else "safe")
    sdfg.add_array("A", ("N", "N"), dtypes.float64)
    sdfg.add_array("out", ("N",), dtypes.float64)
    st = sdfg.add_state()
    st.add_mapped_tasklet(
        "acc",
        {"i": "0:N", "j": "0:N"},
        inputs={"a": Memlet.simple("A", "i, j")},
        code="o = a",
        outputs={"o": Memlet(data="out", subset="i", wcr=wcr, dynamic=dynamic)},
    )
    return sdfg


def test_racy_map_is_flagged():
    warns = detect_write_conflicts(racy_sdfg())
    assert len(warns) == 1
    w = warns[0]
    assert w.code == "W501"
    assert w.severity == Severity.WARNING
    assert w.data == "out"
    assert "'j'" in w.message and "WCR" in w.message


def test_wcr_silences_the_warning():
    assert detect_write_conflicts(racy_sdfg(wcr="sum")) == []


def test_dynamic_memlet_is_programmer_contract():
    assert detect_write_conflicts(racy_sdfg(dynamic=True)) == []


def test_warning_included_in_collect_all_not_raised():
    sdfg = racy_sdfg()
    # Fail-fast validation passes (warnings never raise)...
    sdfg.validate()
    # ...but collect_all surfaces the warning.
    diags = validate_sdfg(sdfg, collect_all=True)
    assert [d.code for d in diags] == ["W501"]


def test_injective_writes_pass_clean():
    sdfg = SDFG("inj")
    sdfg.add_array("A", ("N", "N"), dtypes.float64)
    sdfg.add_array("B", ("N", "N"), dtypes.float64)
    st = sdfg.add_state()
    st.add_mapped_tasklet(
        "c",
        {"i": "0:N", "j": "0:N"},
        inputs={"a": Memlet.simple("A", "i, j")},
        code="b = a",
        outputs={"b": Memlet.simple("B", "i, j")},
    )
    assert detect_write_conflicts(sdfg) == []


def test_tiled_map_not_a_false_positive():
    """After MapTiling the inner param's range depends on the tile
    param: distinct tiles stay disjoint and must not be flagged."""
    from repro.transformations import MapTiling, apply_transformations

    sdfg = SDFG("tile")
    sdfg.add_array("A", ("N",), dtypes.float64)
    sdfg.add_array("B", ("N",), dtypes.float64)
    st = sdfg.add_state()
    st.add_mapped_tasklet(
        "c",
        {"i": "0:N"},
        inputs={"a": Memlet.simple("A", "i")},
        code="b = a",
        outputs={"b": Memlet.simple("B", "i")},
    )
    assert apply_transformations(sdfg, MapTiling, options={"tile_sizes": (4,)}) == 1
    assert detect_write_conflicts(sdfg) == []


@pytest.mark.parametrize("kernel", ["matmul", "jacobi2d", "histogram", "query", "spmv"])
def test_paper_kernels_pass_clean(kernel):
    """The paper's WCR-annotated reductions (spmv, query, histogram) and
    injective stencils pass without warnings."""
    from repro.workloads import kernels

    sdfg = getattr(kernels, f"{kernel}_sdfg")()
    assert detect_write_conflicts(sdfg) == []


def test_all_polybench_builders_pass_clean():
    import repro.workloads.polybench as pb

    flagged = {}
    for name in pb.all_kernels():
        warns = detect_write_conflicts(pb.get(name).make_sdfg())
        if warns:
            flagged[name] = [str(w) for w in warns]
    assert flagged == {}


# =====================================================================
# Chunk-axis disjointness proofs for the parallel execution tier
# =====================================================================
#
# ``analyze_map_parallelism`` extends the W501 conflict analysis with a
# cross-chunk question: if the iteration domain is split into contiguous
# chunks along one parameter, can two chunks ever write the same
# element?  These cases pin the proof obligations down.

from repro.sdfg.nodes import MapEntry
from repro.sdfg.validation import analyze_map_parallelism


def _analyze(sdfg):
    sdfg.validate()
    state = sdfg.states()[0]
    entry = next(n for n in state.nodes() if isinstance(n, MapEntry))
    return analyze_map_parallelism(sdfg, state, entry)


def _slice_map_sdfg(out_subset, code="o = a", in_subset="i"):
    """Map over ``i`` in ``0:N`` writing ``out[<out_subset>]``."""
    sdfg = SDFG("slices")
    sdfg.add_array("A", ("4*N",), dtypes.float64)
    sdfg.add_array("out", ("4*N",), dtypes.float64)
    st = sdfg.add_state()
    st.add_mapped_tasklet(
        "w",
        {"i": "0:N"},
        inputs={"a": Memlet.simple("A", in_subset)},
        code=code,
        outputs={"o": Memlet.simple("out", out_subset)},
    )
    return sdfg


@pytest.mark.parametrize(
    "subset,eligible",
    [
        # Injective point writes: trivially chunk-disjoint.
        ("i", True),
        # Strided points with a gap: disjoint (stride 2 > span 1).
        ("2*i", True),
        ("3*i + 1", True),
        # Adjacent but disjoint slices: [2i, 2i+2) tiles the axis.
        ("2*i:2*i+2", True),
        ("4*i:4*i+4", True),
        # Overlapping slices: [i, i+2) collides with chunk neighbors.
        ("i:i+2", False),
        # Slice wider than its stride: [2i, 2i+3) overlaps [2i+2, ...).
        ("2*i:2*i+3", False),
        # Negative/reversed coefficient is refused conservatively.
        ("N - i", False),
    ],
)
def test_chunk_axis_disjointness_cases(subset, eligible):
    verdict = _analyze(_slice_map_sdfg(subset))
    assert verdict.eligible is eligible, (subset, verdict.reasons)
    if eligible:
        assert verdict.param == "i"
        assert "out" in verdict.direct


def test_symbolic_stride_is_refused():
    """A write at ``K*i`` with symbolic K cannot be proven chunk-disjoint
    (K = 0 aliases every iteration onto one element)."""
    sdfg = SDFG("symstride")
    sdfg.add_array("A", ("N",), dtypes.float64)
    sdfg.add_array("out", ("K*N + N",), dtypes.float64)
    st = sdfg.add_state()
    st.add_mapped_tasklet(
        "w",
        {"i": "0:N"},
        inputs={"a": Memlet.simple("A", "i")},
        code="o = a",
        outputs={"o": Memlet.simple("out", "K*i")},
    )
    verdict = _analyze(sdfg)
    assert not verdict.eligible
    assert any("out" in r for r in verdict.reasons)


def test_indirect_indexing_stays_ineligible():
    """``out[idx[i]] = v`` (dynamic non-WCR write that is not a
    recognized scatter-reduction) must never be parallelized: the proof
    cannot see through the indirection."""
    sdfg = SDFG("indirect")
    sdfg.add_array("idx", ("N",), dtypes.int64)
    sdfg.add_array("out", ("N",), dtypes.float64)
    st = sdfg.add_state()
    st.add_mapped_tasklet(
        "scatter",
        {"i": "0:N"},
        inputs={"j": Memlet.simple("idx", "i")},
        code="o = float(j)",
        outputs={"o": Memlet(data="out", subset="0:N", dynamic=True)},
    )
    verdict = _analyze(sdfg)
    assert not verdict.eligible
    assert any("dynamic" in r or "out" in r for r in verdict.reasons)


def test_wcr_map_is_eligible_via_private_merge():
    """A Sum-WCR write that would race in place is still parallelizable
    through per-worker privatization + operator merge."""
    verdict = _analyze(racy_sdfg(wcr="sum"))
    assert verdict.eligible
    assert "out" in verdict.wcr_merge


def test_racy_map_parallelizes_along_the_disjoint_param_only():
    """The W501-flagged map (``out[i]`` written for every ``j``) is
    still chunk-parallelizable along ``i``: the overlap lives entirely
    inside one chunk, where execution order stays serial.  The proof
    must pick ``i`` — never ``j``."""
    verdict = _analyze(racy_sdfg())
    assert verdict.eligible
    assert verdict.param == "i"


def test_interior_stream_is_refused():
    from repro.workloads import kernels

    verdict = _analyze(kernels.query_sdfg())
    assert not verdict.eligible
    assert any("stream" in r.lower() for r in verdict.reasons)
