"""Tests for the static write-conflict detector (paper §3.2: writes
that may conflict require a write-conflict-resolution memlet)."""

import pytest

from repro.sdfg import SDFG, Memlet, dtypes
from repro.sdfg.validation import detect_write_conflicts, validate_sdfg
from repro.diagnostics import Severity


def racy_sdfg(wcr=None, dynamic=False):
    """A 2D map writing ``out[i]``: iterations over j overlap."""
    sdfg = SDFG("racy" if wcr is None else "safe")
    sdfg.add_array("A", ("N", "N"), dtypes.float64)
    sdfg.add_array("out", ("N",), dtypes.float64)
    st = sdfg.add_state()
    st.add_mapped_tasklet(
        "acc",
        {"i": "0:N", "j": "0:N"},
        inputs={"a": Memlet.simple("A", "i, j")},
        code="o = a",
        outputs={"o": Memlet(data="out", subset="i", wcr=wcr, dynamic=dynamic)},
    )
    return sdfg


def test_racy_map_is_flagged():
    warns = detect_write_conflicts(racy_sdfg())
    assert len(warns) == 1
    w = warns[0]
    assert w.code == "W501"
    assert w.severity == Severity.WARNING
    assert w.data == "out"
    assert "'j'" in w.message and "WCR" in w.message


def test_wcr_silences_the_warning():
    assert detect_write_conflicts(racy_sdfg(wcr="sum")) == []


def test_dynamic_memlet_is_programmer_contract():
    assert detect_write_conflicts(racy_sdfg(dynamic=True)) == []


def test_warning_included_in_collect_all_not_raised():
    sdfg = racy_sdfg()
    # Fail-fast validation passes (warnings never raise)...
    sdfg.validate()
    # ...but collect_all surfaces the warning.
    diags = validate_sdfg(sdfg, collect_all=True)
    assert [d.code for d in diags] == ["W501"]


def test_injective_writes_pass_clean():
    sdfg = SDFG("inj")
    sdfg.add_array("A", ("N", "N"), dtypes.float64)
    sdfg.add_array("B", ("N", "N"), dtypes.float64)
    st = sdfg.add_state()
    st.add_mapped_tasklet(
        "c",
        {"i": "0:N", "j": "0:N"},
        inputs={"a": Memlet.simple("A", "i, j")},
        code="b = a",
        outputs={"b": Memlet.simple("B", "i, j")},
    )
    assert detect_write_conflicts(sdfg) == []


def test_tiled_map_not_a_false_positive():
    """After MapTiling the inner param's range depends on the tile
    param: distinct tiles stay disjoint and must not be flagged."""
    from repro.transformations import MapTiling, apply_transformations

    sdfg = SDFG("tile")
    sdfg.add_array("A", ("N",), dtypes.float64)
    sdfg.add_array("B", ("N",), dtypes.float64)
    st = sdfg.add_state()
    st.add_mapped_tasklet(
        "c",
        {"i": "0:N"},
        inputs={"a": Memlet.simple("A", "i")},
        code="b = a",
        outputs={"b": Memlet.simple("B", "i")},
    )
    assert apply_transformations(sdfg, MapTiling, options={"tile_sizes": (4,)}) == 1
    assert detect_write_conflicts(sdfg) == []


@pytest.mark.parametrize("kernel", ["matmul", "jacobi2d", "histogram", "query", "spmv"])
def test_paper_kernels_pass_clean(kernel):
    """The paper's WCR-annotated reductions (spmv, query, histogram) and
    injective stencils pass without warnings."""
    from repro.workloads import kernels

    sdfg = getattr(kernels, f"{kernel}_sdfg")()
    assert detect_write_conflicts(sdfg) == []


def test_all_polybench_builders_pass_clean():
    import repro.workloads.polybench as pb

    flagged = {}
    for name in pb.all_kernels():
        warns = detect_write_conflicts(pb.get(name).make_sdfg())
        if warns:
            flagged[name] = [str(w) for w in warns]
    assert flagged == {}
