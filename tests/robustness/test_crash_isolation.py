"""Crash isolation against a *genuinely* crashing cpp artifact: a
compiled shared object whose static initializer segfaults (or hangs).
The subprocess harness must contain the crash, write a minimized repro
bundle, and the degradation chain must still return correct results
from the python backend — without taking the host process down."""

import json
import os

import numpy as np
import pytest

from repro.codegen import cpp_gen
from repro.codegen.compiler import compile_sdfg
from repro.runtime.isolation import BackendCrashError, run_isolated
from repro.runtime.watchdog import BREAKERS, WatchdogViolation
from repro.sdfg import SDFG, Memlet, dtypes

pytestmark = pytest.mark.skipif(
    cpp_gen.find_host_compiler() is None, reason="no host C++ compiler"
)

#: Static initializer that dies with SIGSEGV the moment the child
#: dlopens the artifact.  ``raise`` rather than a null dereference: the
#: latter is undefined behavior that -O3 is entitled to optimize away.
SEGFAULT_GLOBAL = (
    "#include <csignal>\n"
    "struct __repro_boom { __repro_boom() { ::raise(SIGSEGV); } };\n"
    "static __repro_boom __repro_boom_instance;\n"
)

#: Static initializer that never returns: dlopen hangs forever, so only
#: the watchdog deadline can end the call.
HANG_GLOBAL = (
    "struct __repro_spin { __repro_spin() { for (;;) { } } };\n"
    "static __repro_spin __repro_spin_instance;\n"
)


def scale_sdfg(code_global: str = ""):
    sdfg = SDFG("scale")
    sdfg.add_array("A", ("N",), dtypes.float64)
    st = sdfg.add_state()
    tasklet, _, _ = st.add_mapped_tasklet(
        "s",
        {"i": "0:N"},
        inputs={"a": Memlet.simple("A", "i")},
        code="b = a * 2",
        outputs={"b": Memlet.simple("A", "i")},
    )
    tasklet.code_global = code_global
    return sdfg


@pytest.fixture
def crash_env(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_ISOLATE", "1")
    monkeypatch.setenv("REPRO_CRASH_DIR", str(tmp_path / "crashes"))
    monkeypatch.setenv("REPRO_RETRIES", "1")
    monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0.001")
    return tmp_path / "crashes"


def test_segfault_contained_bundle_written_results_from_python(crash_env):
    """The satellite acceptance case end to end: genuine SIGSEGV in the
    artifact, harness contains it, bundle lands on disk, and the call
    still returns correct results via the python backend."""
    compiled = compile_sdfg(scale_sdfg(SEGFAULT_GLOBAL), backend="cpp")
    assert compiled.backend == "cpp", "compile itself must not crash"

    A = np.random.rand(8)
    ref = A * 2
    compiled(A=A, N=8)  # the host process survives this line
    np.testing.assert_allclose(A, ref)
    assert compiled.backend == "python", "served by the degraded backend"

    hop = next(h for h in compiled.degradation if h["from"] == "cpp")
    assert hop["to"] == "python"
    assert hop["error"] == "BackendCrashError"
    assert hop["code"] == "E201"
    assert hop["attempts"] == 2  # first call + one retry
    assert "signal" in hop["message"]

    bundle = hop["bundle"]
    assert bundle and os.path.isdir(bundle)
    assert os.path.realpath(bundle).startswith(os.path.realpath(str(crash_env)))
    with open(os.path.join(bundle, "sdfg.json")) as f:
        sdfg_json = json.load(f)
    assert sdfg_json["name"] == "scale"
    with open(os.path.join(bundle, "manifest.json")) as f:
        manifest = json.load(f)
    assert "lib" not in manifest, "bundle must be machine-independent"
    assert manifest["symbols"] == {"N": 8}
    assert [a["name"] for a in manifest["arrays"]] == ["A"]
    assert manifest["arrays"][0]["shape"] == [8]


def test_crash_feeds_circuit_breaker(crash_env):
    compiled = compile_sdfg(scale_sdfg(SEGFAULT_GLOBAL), backend="cpp")
    compiled(A=np.random.rand(8), N=8)
    assert BREAKERS.failures("cpp") >= 1
    assert BREAKERS.last_code("cpp") == "E201"


def test_repeated_crashes_open_breaker_and_skip_cpp(crash_env):
    """After `threshold` contained crashes the cpp breaker opens: the
    next compile_sdfg skips cpp entirely with a recorded hop."""
    for _ in range(BREAKERS.threshold):
        crashy = compile_sdfg(scale_sdfg(SEGFAULT_GLOBAL), backend="cpp")
        crashy(A=np.random.rand(8), N=8)
    assert BREAKERS.is_open("cpp")

    compiled = compile_sdfg(scale_sdfg(), backend="cpp")
    assert compiled.backend == "python"
    assert compiled.degradation[0]["error"] == "CircuitBreakerOpen"
    assert compiled.degradation[0]["code"] == "E201"


def test_hang_killed_by_watchdog_deadline(crash_env):
    compiled = compile_sdfg(
        scale_sdfg(HANG_GLOBAL), backend="cpp", deadline=1.0
    )
    with pytest.raises(WatchdogViolation) as exc:
        compiled(A=np.random.rand(8), N=8)
    assert exc.value.code == "R805"
    rec = compiled.degradation[-1]
    assert rec["code"] == "R805" and rec["to"] is None


def test_clean_cpp_run_through_harness(crash_env):
    """Isolation must be transparent for healthy artifacts: same
    results, backend stays cpp, breaker records the success."""
    BREAKERS.record_failure("cpp", code="E201")  # pre-existing strike
    compiled = compile_sdfg(scale_sdfg(), backend="cpp")
    assert compiled.backend == "cpp"
    A = np.random.rand(8)
    ref = A * 2
    compiled(A=A, N=8)
    np.testing.assert_allclose(A, ref)
    assert compiled.degradation == []
    assert BREAKERS.failures("cpp") == 0, "success closes the strike count"


def test_isolation_off_runs_in_process(monkeypatch):
    monkeypatch.setenv("REPRO_ISOLATE", "0")
    compiled = compile_sdfg(scale_sdfg(), backend="cpp")
    assert compiled.backend == "cpp"
    A = np.random.rand(8)
    ref = A * 2
    compiled(A=A, N=8)
    np.testing.assert_allclose(A, ref)


def test_crash_error_reports_signal_and_is_retryable(crash_env):
    """The surfaced error names the killing signal, is marked retryable,
    and the caller's arrays stay pristine (the child worked on copies)."""
    compiled = compile_sdfg(scale_sdfg(SEGFAULT_GLOBAL), backend="cpp")
    A = np.arange(8, dtype=np.float64)
    before = A.copy()

    def no_degrade(err, attempts):
        raise err

    compiled._degrade_at_call = no_degrade
    with pytest.raises(BackendCrashError) as exc:
        compiled(A=A, N=8)
    err = exc.value
    assert err.retryable
    assert err.returncode is not None and err.returncode < 0
    assert err.bundle and os.path.isdir(err.bundle)
    np.testing.assert_array_equal(A, before), "caller arrays untouched"
