"""Tests for the structured diagnostics layer: collect-all validation,
stable codes, fail-fast compatibility, and the CLI self-check."""

import json

import pytest

from repro.diagnostics import CODES, DiagnosticCollector, Severity, self_check
from repro.sdfg import SDFG, InvalidSDFGError, Memlet, dtypes
from repro.sdfg.validation import validate_sdfg


def multi_error_sdfg():
    from repro.sdfg import InterstateEdge

    sdfg = SDFG("broken")
    sdfg.add_array("A", ("N",), dtypes.float64)
    st = sdfg.add_state("s")
    st.add_access("ghost")                      # V201
    st.add_tasklet("t", [], ["o"], "o = nope")  # V202 (+ V205: no out edges)
    st2 = sdfg.add_state("s2")
    a = st2.add_access("A")
    b = st2.add_access("ghost2")                # V201
    st2.add_edge(a, b, Memlet(data="ghost2", subset="0"), None, None)  # V301
    sdfg.add_edge(st, st2, InterstateEdge())
    return sdfg


def test_collect_all_returns_every_diagnostic():
    diags = validate_sdfg(multi_error_sdfg(), collect_all=True)
    errors = [d for d in diags if d.severity >= Severity.ERROR]
    codes = sorted(d.code for d in errors)
    # Both states' problems are reported, not just the first error.
    assert codes.count("V201") == 2
    assert "V202" in codes and "V301" in codes
    assert len(errors) >= 4


def test_fail_fast_raises_first_error_with_code():
    with pytest.raises(InvalidSDFGError) as exc:
        validate_sdfg(multi_error_sdfg())
    assert exc.value.code in CODES
    assert exc.value.diagnostic.severity == Severity.ERROR
    assert exc.value.diagnostic.sdfg == "broken"


def test_sdfg_validate_method_unchanged():
    """sdfg.validate() stays fail-fast for all existing callers."""
    with pytest.raises(InvalidSDFGError):
        multi_error_sdfg().validate()


def test_valid_sdfg_collects_nothing():
    sdfg = SDFG("ok")
    sdfg.add_array("A", ("N",), dtypes.float64)
    st = sdfg.add_state()
    st.add_mapped_tasklet(
        "c",
        {"i": "0:N"},
        inputs={"a": Memlet.simple("A", "i")},
        code="b = a",
        outputs={"b": Memlet.simple("A", "i")},
    )
    assert validate_sdfg(sdfg, collect_all=True) == []


def test_diagnostics_are_json_serializable():
    diags = validate_sdfg(multi_error_sdfg(), collect_all=True)
    payload = json.dumps([d.to_json() for d in diags])
    decoded = json.loads(payload)
    assert decoded[0]["code"] in CODES
    assert decoded[0]["severity"] == "ERROR"


def test_every_used_code_is_registered():
    diags = validate_sdfg(multi_error_sdfg(), collect_all=True)
    for d in diags:
        assert d.code in CODES, f"unregistered diagnostic code {d.code}"


def test_collector_severity_ordering():
    ctx = DiagnosticCollector(collect_all=True)
    ctx.info("V001", "i")
    ctx.warning("W501", "w")
    ctx.error("V002", "e")
    assert len(ctx.diagnostics) == 3
    assert [d.code for d in ctx.errors()] == ["V002"]
    assert [d.code for d in ctx.warnings()] == ["W501"]


def test_codegen_error_carries_diagnostic():
    from repro.codegen.common import CodegenError

    err = CodegenError("nope", code="CG102")
    assert err.code == "CG102"
    assert err.diagnostic.code == "CG102"
    assert err.diagnostic.severity == Severity.ERROR


def test_nested_sdfg_errors_are_collected():
    inner = SDFG("inner")
    inner.add_array("x", ("N",), dtypes.float64)
    ist = inner.add_state()
    ist.add_access("inner_ghost")  # V201 inside the nested SDFG
    outer = SDFG("outer")
    outer.add_array("A", ("N",), dtypes.float64)
    st = outer.add_state()
    node = st.add_nested_sdfg(inner, ["x"], ["x"], symbol_mapping={"N": "N"})
    st.add_edge(st.add_read("A"), node, Memlet.simple("A", "0:N"), None, "x")
    st.add_edge(node, st.add_write("A"), Memlet.simple("A", "0:N"), "x", None)
    st.add_access("outer_ghost")  # V201 in the outer SDFG
    diags = validate_sdfg(outer, collect_all=True)
    sdfgs = {d.sdfg for d in diags if d.code == "V201"}
    assert sdfgs == {"inner", "outer"}


def test_self_check_passes():
    assert self_check(verbose=False) == 0


def test_cli_entry_point():
    from repro.diagnostics import main

    assert main(["--self-check"]) == 0
    assert main(["--list-codes"]) == 0
