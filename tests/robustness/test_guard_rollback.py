"""Fault injection for the transactional transformation engine:
transformations that corrupt the graph (structurally or semantically)
must be contained — rolled back to a byte-identical snapshot — and the
guarded fixpoint must stay safe on every workload."""

import numpy as np
import pytest

import repro as rp
from repro.sdfg import SDFG, InvalidSDFGError, Memlet, dtypes
from repro.sdfg.nodes import Tasklet
from repro.transformations import (
    GuardedOptimizer,
    MapReduceFusion,
    canonical_snapshot,
)
from repro.transformations.base import Transformation

N = rp.symbol("N")


def copy_sdfg():
    sdfg = SDFG("copy")
    sdfg.add_array("A", ("N",), dtypes.float64)
    sdfg.add_array("B", ("N",), dtypes.float64)
    st = sdfg.add_state()
    st.add_mapped_tasklet(
        "c",
        {"i": "0:N"},
        inputs={"a": Memlet.simple("A", "i")},
        code="b = a * 2",
        outputs={"b": Memlet.simple("B", "i")},
    )
    return sdfg


class _Injected(Transformation):
    """Base for fault-injection transformations: always matches."""

    @classmethod
    def expressions(cls):
        return []

    @classmethod
    def matches(cls, sdfg, strict=False):
        yield cls(sdfg, None, {})


class DanglingAccess(_Injected):
    """Structural corruption: access node to an undefined container."""

    def apply(self):
        self.sdfg.states()[0].add_access("__ghost__")


class RankBreaker(_Injected):
    """Structural corruption: memlet subset rank no longer matches."""

    def apply(self):
        st = self.sdfg.states()[0]
        for e in st.edges():
            if not e.data.is_empty():
                e.data.subset = rp.Memlet(data=e.data.data, subset="0, 0, 0").subset


class ExplodingApply(_Injected):
    """The transformation itself crashes mid-rewrite."""

    def apply(self):
        self.sdfg.states()[0].add_access("__half_done__")
        raise RuntimeError("exploded mid-rewrite")


class SilentSemanticsChange(_Injected):
    """Passes validation but changes results: only differential
    verification can catch it."""

    def apply(self):
        for st in self.sdfg.states():
            for n in st.nodes():
                if isinstance(n, Tasklet):
                    n.code = n.code.replace("* 2", "* 3")


@pytest.mark.parametrize(
    "fault", [DanglingAccess, RankBreaker, ExplodingApply], ids=lambda c: c.__name__
)
def test_structural_corruption_rolls_back_byte_identical(fault):
    sdfg = copy_sdfg()
    before = canonical_snapshot(sdfg)
    guard = GuardedOptimizer(sdfg)
    assert guard.apply(fault) is False
    assert canonical_snapshot(sdfg) == before
    att = guard.report.attempts[-1]
    assert att.status == "rolled_back"
    assert att.reason
    # The restored SDFG is still fully usable.
    A = np.random.rand(7)
    B = np.zeros(7)
    sdfg.compile()(A=A, B=B, N=7)
    np.testing.assert_allclose(B, 2 * A)


def test_semantic_corruption_caught_by_differential_verification():
    sdfg = copy_sdfg()
    before = canonical_snapshot(sdfg)
    # Without verification the corruption would slip through validation...
    unguarded = GuardedOptimizer(copy_sdfg(), verify=False)
    assert unguarded.apply(SilentSemanticsChange) is True
    # ...with differential verification it is rolled back.
    guard = GuardedOptimizer(sdfg, verify=True)
    assert guard.apply(SilentSemanticsChange) is False
    assert canonical_snapshot(sdfg) == before
    att = guard.report.attempts[-1]
    assert att.status == "rolled_back"
    assert att.code == "G103"
    assert "diverged" in att.reason


def test_rollback_restores_transformation_history():
    sdfg = copy_sdfg()
    guard = GuardedOptimizer(sdfg)
    guard.apply(DanglingAccess)
    assert "DanglingAccess" not in sdfg.transformation_history


def test_legitimate_transformation_commits():
    @rp.program
    def mm(A: rp.float64[N, N], B: rp.float64[N, N], C: rp.float64[N, N]):
        C = A @ B

    mm._sdfg = None
    sdfg = mm.to_sdfg()
    guard = GuardedOptimizer(sdfg, verify=True)
    assert guard.apply(MapReduceFusion) is True
    att = guard.report.attempts[-1]
    assert att.status == "applied" and att.verified == "ok"
    assert att.max_abs_error is not None and att.max_abs_error <= 1e-8
    assert sdfg.transformation_history == ["MapReduceFusion"]


def test_report_is_machine_readable():
    sdfg = copy_sdfg()
    guard = GuardedOptimizer(sdfg)
    guard.apply(DanglingAccess)
    guard.apply(MapReduceFusion)  # no match on a plain copy
    js = guard.report.to_json()
    assert js["sdfg"] == "copy"
    statuses = [a["status"] for a in js["attempts"]]
    assert statuses == ["rolled_back", "no_match"]
    import json

    json.dumps(js)  # serializable


def test_fixpoint_retires_corrupting_transformation():
    sdfg = copy_sdfg()
    guard = GuardedOptimizer(sdfg)
    applied = guard.apply_to_fixpoint([DanglingAccess], max_applications=100)
    assert applied == 0
    # Exactly one rollback: the corruptor is retired, not retried forever.
    assert len(guard.report.rolled_back()) == 1


@pytest.mark.parametrize("kernel", ["matmul", "jacobi2d", "histogram", "query", "spmv"])
def test_guarded_strict_fixpoint_on_kernel_suite(kernel):
    from repro.workloads import kernels

    sdfg = getattr(kernels, f"{kernel}_sdfg")()
    guard = GuardedOptimizer(sdfg)
    guard.apply_to_fixpoint()  # strict set
    assert not guard.report.rolled_back(), guard.report.summary()
    sdfg.validate()


@pytest.mark.parametrize("name", ["gemm", "jacobi-2d", "atax"])
def test_guarded_strict_fixpoint_on_polybench(name):
    import repro.workloads.polybench as pb

    sdfg = pb.get(name).make_sdfg()
    guard = GuardedOptimizer(sdfg)
    guard.apply_to_fixpoint()
    assert not guard.report.rolled_back(), guard.report.summary()
    sdfg.validate()
