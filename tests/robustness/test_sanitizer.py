"""Dynamic memlet sanitizer: each R-code must fire on its seeded fault
with the exact element index and SDFG location, on both the generated
Python backend and the reference interpreter; clean kernels must run
finding-free and agree with unsanitized runs to 1e-8."""

import copy

import numpy as np
import pytest

from repro.codegen.compiler import compile_sdfg
from repro.runtime.sanitizer import (
    SEEDED_FAULTS,
    GuardedView,
    Sanitizer,
    SanitizerError,
    fundamental_kernel_cases,
)
from repro.runtime.watchdog import WatchdogViolation

BACKENDS = ("python", "interpreter")


# ------------------------------------------------------------ seeded faults
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("code", ["R801", "R802", "R803", "R804"])
def test_seeded_fault_fires_with_exact_location(code, backend):
    sdfg, kwargs, expect = SEEDED_FAULTS[code]()
    compiled = compile_sdfg(sdfg, backend=backend, sanitize=True)
    with pytest.raises(SanitizerError) as exc:
        compiled(**kwargs)
    err = exc.value
    assert err.code == expect["code"]
    assert err.index == expect["index"], "finding must carry the exact element"
    assert err.diagnostic.data == expect["data"]
    assert err.diagnostic.sdfg == sdfg.name


@pytest.mark.parametrize("backend", BACKENDS)
def test_seeded_faults_collect_mode_does_not_abort(backend):
    sdfg, kwargs, expect = SEEDED_FAULTS["R801"]()
    compiled = compile_sdfg(sdfg, backend=backend, sanitize="collect")
    compiled(**kwargs)  # must complete
    findings = compiled.last_findings
    assert findings, "collect mode must still record the finding"
    assert any(f.code == "R801" and f.data == "X" for f in findings)


def test_r805_unbounded_loop_killed_by_deadline():
    sdfg, kwargs, expect = SEEDED_FAULTS["R805"]()
    compiled = compile_sdfg(sdfg, backend="python", deadline=0.5)
    with pytest.raises(WatchdogViolation) as exc:
        compiled(**kwargs)
    assert exc.value.code == "R805"


# --------------------------------------------------------- kernel fidelity
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("name", sorted(fundamental_kernel_cases()))
def test_kernels_clean_and_bitwise_close_under_sanitizer(name, backend):
    factory, data, extra, outputs = fundamental_kernel_cases()[name]
    ref_args = {**copy.deepcopy(data), **extra}
    san_args = {**copy.deepcopy(data), **extra}
    compile_sdfg(factory(), backend=backend)(**ref_args)
    guarded = compile_sdfg(factory(), backend=backend, sanitize="collect")
    guarded(**san_args)
    assert guarded.last_findings == [], f"{name} must run finding-free"
    for out in outputs:
        np.testing.assert_allclose(
            san_args[out], ref_args[out], rtol=1e-8, atol=1e-8
        )


def test_sanitizer_overhead_reported_via_instrumentation():
    factory, data, extra, outputs = fundamental_kernel_cases()["matmul"]
    guarded = compile_sdfg(factory(), backend="python", sanitize="collect")
    guarded(**{**copy.deepcopy(data), **extra})

    def walk(nodes):
        for node in nodes:
            yield node
            yield from walk(node.children.values())

    events = [n for n in walk(guarded.last_report.events)
              if n.kind == "sanitizer"]
    labels = {n.label for n in events}
    assert "checks" in labels and "overhead" in labels
    checks = next(n for n in events if n.label == "checks")
    assert checks.iterations > 0, "guards must actually have run"
    overhead = next(n for n in events if n.label == "overhead")
    assert overhead.duration is not None and overhead.duration >= 0.0


# ----------------------------------------------------------- env plumbing
def test_env_knob_enables_sanitizer(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    sdfg, kwargs, _ = SEEDED_FAULTS["R801"]()
    compiled = compile_sdfg(sdfg, backend="python")
    with pytest.raises(SanitizerError):
        compiled(**kwargs)


def test_sanitize_false_overrides_env(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    sdfg, kwargs, _ = SEEDED_FAULTS["R801"]()
    kwargs["I"][3] = -2  # silent numpy wraparound instead of a hard raise
    compiled = compile_sdfg(sdfg, backend="python", sanitize=False)
    compiled(**kwargs)  # no guard: completes (reading X[-2] silently)


def test_sanitized_program_cached_separately():
    """A sanitized build must never be served from the plain program's
    cache slot (and vice versa)."""
    from repro.codegen.progcache import ProgramCache

    cache = ProgramCache()
    sdfg, kwargs, _ = SEEDED_FAULTS["R801"]()
    plain = compile_sdfg(sdfg, backend="python", cache=cache)
    guarded = compile_sdfg(sdfg, backend="python", cache=cache, sanitize=True)
    assert "__guard.load" in guarded.source
    assert "__guard.load" not in plain.source
    with pytest.raises(SanitizerError):
        guarded(**copy.deepcopy(kwargs))
    soft = copy.deepcopy(kwargs)
    soft["I"][3] = -2  # wraparound variant: plain build must run unchecked
    plain(**soft)


# --------------------------------------------------------- GuardedView unit
def test_guarded_view_checks_indirect_subscripts():
    san = Sanitizer(mode="raise")
    arr = np.arange(6, dtype=np.float64)
    view = GuardedView.wrap(arr, san, "X", None, "X[0:N]", ("s", "st", "n"))
    assert view[2] == 2.0
    with pytest.raises(SanitizerError) as exc:
        view[np.int64(6)]
    assert exc.value.code == "R801"
    with pytest.raises(SanitizerError):
        view[-1]  # negative = wraparound bug class, not Python sugar


def test_guarded_view_derived_arrays_lose_guard():
    san = Sanitizer(mode="raise")
    arr = np.arange(6, dtype=np.float64)
    view = GuardedView.wrap(arr, san, "X", None, "", None)
    derived = view + 1.0
    assert derived._san is None  # ufunc results are plain again
    sliced = view[1:3]
    assert sliced._san is None


def test_finding_dedupe_and_cap():
    san = Sanitizer(mode="collect")
    for _ in range(5):
        san.check_bounds("X", (4,), (9,), "X[9]", ("s", "st", "n"))
    assert san.counters["R801"] == 5
    assert len(san.findings) == 1, "identical findings must dedupe"
