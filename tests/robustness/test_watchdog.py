"""Execution watchdog: deadlines kill unbounded loops within budget,
memory budgets stop runaway transients, retries back off exponentially,
and repeatedly-failing backends trip the circuit breaker into the
degradation chain."""

import time
import unittest.mock

import numpy as np
import pytest

import repro as rp
from repro.codegen.compiler import compile_sdfg
from repro.runtime.isolation import BackendCrashError
from repro.runtime.sanitizer import SEEDED_FAULTS
from repro.runtime.watchdog import (
    BREAKERS,
    CircuitBreakerRegistry,
    RetryPolicy,
    Watchdog,
    WatchdogViolation,
)
from repro.sdfg import SDFG, Memlet, dtypes


def scale_sdfg():
    sdfg = SDFG("scale")
    sdfg.add_array("A", ("N",), dtypes.float64)
    st = sdfg.add_state()
    st.add_mapped_tasklet(
        "s",
        {"i": "0:N"},
        inputs={"a": Memlet.simple("A", "i")},
        code="b = a * 2",
        outputs={"b": Memlet.simple("A", "i")},
    )
    return sdfg


# ------------------------------------------------------------- deadlines
@pytest.mark.parametrize("backend", ("python", "interpreter"))
def test_unbounded_interstate_loop_killed_within_deadline(backend):
    """The acceptance case: an SDFG whose interstate loop makes no
    progress must be killed within its deadline, and the degradation
    record must show the violation."""
    sdfg, kwargs, expect = SEEDED_FAULTS["R805"]()
    deadline = 0.5
    compiled = compile_sdfg(sdfg, backend=backend, deadline=deadline)
    start = time.monotonic()
    with pytest.raises(WatchdogViolation) as exc:
        compiled(**kwargs)
    elapsed = time.monotonic() - start
    assert elapsed < deadline + 2.0, "cooperative kill must be prompt"
    assert exc.value.code == "R805"
    assert exc.value.kind == "deadline"
    assert compiled.degradation, "the violation must be recorded"
    rec = compiled.degradation[-1]
    assert rec["code"] == "R805"
    assert rec["from"] == backend
    assert rec["to"] is None, "watchdog violations do not degrade"


def test_deadline_env_knob(monkeypatch):
    monkeypatch.setenv("REPRO_DEADLINE", "0.4")
    sdfg, kwargs, _ = SEEDED_FAULTS["R805"]()
    compiled = compile_sdfg(sdfg, backend="python")
    assert compiled.deadline == 0.4
    with pytest.raises(WatchdogViolation):
        compiled(**kwargs)


def test_deadline_not_tripped_by_healthy_run():
    compiled = compile_sdfg(scale_sdfg(), backend="python", deadline=30.0)
    A = np.random.rand(8)
    ref = A * 2
    compiled(A=A, N=8)
    np.testing.assert_allclose(A, ref)
    assert compiled.degradation == []


def test_watchdog_checkpoints_reported():
    compiled = compile_sdfg(scale_sdfg(), backend="python", deadline=30.0)
    compiled(A=np.random.rand(8), N=8)

    def walk(nodes):
        for node in nodes:
            yield node
            yield from walk(node.children.values())

    events = [n for n in walk(compiled.last_report.events)
              if n.kind == "watchdog"]
    assert events and events[0].label == "checkpoints"
    assert events[0].iterations > 0


# --------------------------------------------------------- memory budget
@pytest.mark.parametrize("backend", ("python", "interpreter"))
def test_memory_budget_stops_transient_allocation(backend):
    sdfg, kwargs, _ = SEEDED_FAULTS["R803"]()  # has an N-element transient
    compiled = compile_sdfg(sdfg, backend=backend, memory_budget=8)
    with pytest.raises(WatchdogViolation) as exc:
        compiled(**kwargs)
    assert exc.value.code == "R805"
    assert exc.value.kind == "memory"
    assert "T" in str(exc.value), "violation must name the allocation"


def test_memory_budget_env_knob(monkeypatch):
    monkeypatch.setenv("REPRO_MEMORY_BUDGET", "8")
    sdfg, kwargs, _ = SEEDED_FAULTS["R803"]()
    compiled = compile_sdfg(sdfg, backend="python")
    with pytest.raises(WatchdogViolation):
        compiled(**kwargs)


def test_generous_budget_allows_run():
    sdfg, kwargs, _ = SEEDED_FAULTS["R803"]()
    compiled = compile_sdfg(sdfg, backend="python", memory_budget=1 << 20)
    compiled(**kwargs)  # transient fits; reads of zeros are fine unsanitized


# ---------------------------------------------------------- watchdog unit
def test_watchdog_remaining_and_arm():
    dog = Watchdog(deadline=100.0)
    assert 99.0 < dog.remaining() <= 100.0
    dog.start -= 50.0
    assert 49.0 < dog.remaining() <= 50.0
    dog.arm()
    assert 99.0 < dog.remaining() <= 100.0
    assert Watchdog().remaining() is None


def test_watchdog_checkpoint_counts_and_stores_violation():
    dog = Watchdog(deadline=0.0, sdfg_name="x")
    dog.start -= 1.0
    with pytest.raises(WatchdogViolation):
        dog.checkpoint()
    assert dog.checkpoints == 1
    assert dog.violation is not None
    assert dog.violation.diagnostic.sdfg == "x"


# ------------------------------------------------------------ retry policy
def test_retry_policy_exponential_backoff():
    policy = RetryPolicy(retries=3, backoff=0.1)
    assert policy.delay(0) == pytest.approx(0.1)
    assert policy.delay(1) == pytest.approx(0.2)
    assert policy.delay(2) == pytest.approx(0.4)


def test_retry_policy_from_env(monkeypatch):
    monkeypatch.setenv("REPRO_RETRIES", "4")
    monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0.25")
    policy = RetryPolicy.from_env()
    assert policy.retries == 4
    assert policy.backoff == 0.25


def test_call_retries_then_succeeds(monkeypatch):
    """A contained crash is retried with backoff; a success on retry
    leaves no degradation record."""
    monkeypatch.setenv("REPRO_RETRIES", "2")
    monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0.001")
    compiled = compile_sdfg(scale_sdfg(), backend="python")
    real_entry = compiled._entry
    calls = {"n": 0}

    def flaky(arrays, symbols, instr=None, guard=None):
        calls["n"] += 1
        if calls["n"] < 3:
            raise BackendCrashError("transient crash", sdfg="scale")
        return real_entry(arrays, symbols, instr, guard)

    compiled._entry = flaky
    A = np.random.rand(8)
    ref = A * 2
    compiled(A=A, N=8)
    np.testing.assert_allclose(A, ref)
    assert calls["n"] == 3
    assert compiled.degradation == []


def test_call_crash_degrades_after_retries(monkeypatch):
    """Retries exhausted: the call degrades to the next backend in the
    chain and the hop records the attempt count."""
    monkeypatch.setenv("REPRO_RETRIES", "1")
    monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0.001")
    compiled = compile_sdfg(scale_sdfg(), backend="python")

    def always_crash(arrays, symbols, instr=None, guard=None):
        raise BackendCrashError("hard crash", sdfg="scale")

    compiled._entry = always_crash
    A = np.random.rand(8)
    ref = A * 2
    compiled(A=A, N=8)  # served by the interpreter fallback
    np.testing.assert_allclose(A, ref)
    assert compiled.backend == "interpreter"
    hop = compiled.degradation[-1]
    assert hop["from"] == "python" and hop["to"] == "interpreter"
    assert hop["attempts"] == 2  # first try + one retry


# --------------------------------------------------------- circuit breaker
def test_breaker_opens_after_threshold():
    reg = CircuitBreakerRegistry(threshold=3, cooldown=300.0)
    for _ in range(2):
        reg.record_failure("cpp", code="E201")
    assert not reg.is_open("cpp")
    reg.record_failure("cpp", code="E201")
    assert reg.is_open("cpp")
    assert reg.failures("cpp") == 3
    assert reg.last_code("cpp") == "E201"


def test_breaker_success_closes():
    reg = CircuitBreakerRegistry(threshold=2, cooldown=300.0)
    reg.record_failure("cpp")
    reg.record_failure("cpp")
    assert reg.is_open("cpp")
    reg.record_success("cpp")
    assert not reg.is_open("cpp")
    assert reg.failures("cpp") == 0


def test_breaker_half_open_probe_after_cooldown():
    reg = CircuitBreakerRegistry(threshold=2, cooldown=0.05)
    reg.record_failure("cpp")
    reg.record_failure("cpp")
    assert reg.is_open("cpp")
    time.sleep(0.06)
    assert not reg.is_open("cpp"), "cooldown elapsed: one probe allowed"
    reg.record_failure("cpp")  # probe fails
    assert reg.is_open("cpp"), "failed probe re-opens immediately"


def test_open_breaker_skips_backend_at_compile():
    """An open cpp breaker short-circuits compile_sdfg: the backend is
    skipped with a recorded hop, without touching the compiler."""
    for _ in range(BREAKERS.threshold):
        BREAKERS.record_failure("cpp", code="E201")
    assert BREAKERS.is_open("cpp")
    compiled = compile_sdfg(scale_sdfg(), backend="cpp")
    assert compiled.backend in ("python", "interpreter")
    hop = compiled.degradation[0]
    assert hop["error"] == "CircuitBreakerOpen"
    assert hop["code"] == "E201"
    assert "circuit breaker open" in hop["reason"]
    A = np.random.rand(8)
    ref = A * 2
    compiled(A=A, N=8)
    np.testing.assert_allclose(A, ref)


def test_watchdog_violation_feeds_breaker():
    sdfg, kwargs, _ = SEEDED_FAULTS["R805"]()
    compiled = compile_sdfg(sdfg, backend="python", deadline=0.3)
    with pytest.raises(WatchdogViolation):
        compiled(**kwargs)
    assert BREAKERS.failures("python") == 1
    assert BREAKERS.last_code("python") == "R805"


# ----------------------------------------------------------- retry jitter
def test_retry_jitter_spreads_delays_within_bounds():
    """With jitter=j, the delay for attempt n is uniform over
    [b*2^n*(1-j), b*2^n*(1+j)] — never negative, mean preserved."""
    import random

    policy = RetryPolicy(retries=3, backoff=0.1, jitter=0.5,
                         rng=random.Random(42))
    for attempt in range(4):
        base = 0.1 * (2 ** attempt)
        delays = [policy.delay(attempt) for _ in range(200)]
        assert all(base * 0.5 <= d <= base * 1.5 for d in delays)
        spread = max(delays) - min(delays)
        assert spread > base * 0.5, "jitter must actually spread the delays"


def test_retry_jitter_deterministic_with_injected_rng():
    import random

    a = RetryPolicy(backoff=0.05, jitter=0.3, rng=random.Random(7))
    b = RetryPolicy(backoff=0.05, jitter=0.3, rng=random.Random(7))
    assert [a.delay(n) for n in (0, 1, 2)] == [b.delay(n) for n in (0, 1, 2)]


def test_retry_no_jitter_is_pure_exponential():
    policy = RetryPolicy(backoff=0.05, jitter=0.0)
    assert [policy.delay(n) for n in (0, 1, 2)] == [0.05, 0.1, 0.2]


def test_retry_jitter_clamped_and_from_env(monkeypatch):
    assert RetryPolicy(jitter=2.5).jitter == 1.0
    assert RetryPolicy(jitter=-1.0).jitter == 0.0
    monkeypatch.setenv("REPRO_RETRY_JITTER", "0.4")
    assert RetryPolicy.from_env().jitter == 0.4
    policy = RetryPolicy(backoff=0.1, jitter=1.0)
    for attempt in range(3):
        assert policy.delay(attempt) >= 0.0, "full jitter never goes negative"


# ------------------------------------------- half-open probe concurrency
def test_half_open_admits_exactly_one_probe_across_threads():
    """N threads race is_open() after the cooldown: exactly one caller
    is admitted as the probe, every loser keeps being short-circuited."""
    import threading

    reg = CircuitBreakerRegistry(threshold=2, cooldown=0.05)
    reg.record_failure("cpp", code="E201")
    reg.record_failure("cpp", code="E201")
    assert reg.is_open("cpp")
    time.sleep(0.06)

    results = []
    barrier = threading.Barrier(8)

    def racer():
        barrier.wait()
        results.append(reg.is_open("cpp"))

    threads = [threading.Thread(target=racer) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30)
    assert results.count(False) == 1, "exactly one half-open probe"
    assert results.count(True) == 7, "losers stay short-circuited"
    assert reg.state("cpp") == "half_open"

    # While the probe is in flight, later callers are still rejected.
    assert reg.is_open("cpp")

    reg.record_success("cpp")
    assert reg.state("cpp") == "closed"
    assert not reg.is_open("cpp")


def test_half_open_transitions_are_logged_and_broadcast():
    seen = []
    reg = CircuitBreakerRegistry(threshold=1, cooldown=0.05)
    reg.on_transition(lambda key, old, new: seen.append((key, old, new)))

    reg.record_failure("tenant_x", code="E201")
    time.sleep(0.06)
    assert not reg.is_open("tenant_x")  # admitted as the probe
    reg.record_failure("tenant_x", code="E201")  # probe fails: re-open
    time.sleep(0.06)
    assert not reg.is_open("tenant_x")  # second probe
    reg.record_success("tenant_x")  # probe succeeds: closed

    expected = [
        ("tenant_x", "closed", "open"),
        ("tenant_x", "open", "half_open"),
        ("tenant_x", "half_open", "open"),
        ("tenant_x", "open", "half_open"),
        ("tenant_x", "half_open", "closed"),
    ]
    assert seen == expected
    assert reg.transitions == expected, "bounded log mirrors the listeners"


def test_failed_probe_restarts_full_cooldown():
    reg = CircuitBreakerRegistry(threshold=1, cooldown=0.2)
    reg.record_failure("cpp", code="E201")
    time.sleep(0.21)
    assert not reg.is_open("cpp")  # the probe
    reg.record_failure("cpp", code="E201")  # probe fails
    assert reg.is_open("cpp")
    assert reg.cooldown_remaining("cpp") > 0.1, "cooldown restarted in full"
