"""Unit + property tests for graph algorithms."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.graph import (
    CycleError,
    OrderedMultiDiGraph,
    bfs_order,
    dfs_preorder,
    dominators,
    postdominators,
    topological_sort,
    weakly_connected_components,
)


def chain(n):
    g = OrderedMultiDiGraph()
    nodes = list(range(n))
    for i in range(n - 1):
        g.add_edge(nodes[i], nodes[i + 1], None)
    return g, nodes


class TestTraversal:
    def test_dfs_preorder_chain(self):
        g, nodes = chain(5)
        assert dfs_preorder(g) == nodes

    def test_bfs_levels(self):
        g = OrderedMultiDiGraph()
        g.add_edge("a", "b", None)
        g.add_edge("a", "c", None)
        g.add_edge("b", "d", None)
        g.add_edge("c", "d", None)
        assert bfs_order(g) == ["a", "b", "c", "d"]

    def test_traversal_handles_cycles(self):
        g = OrderedMultiDiGraph()
        g.add_edge("a", "b", None)
        g.add_edge("b", "a", None)
        order = dfs_preorder(g, ["a"])
        assert order == ["a", "b"]


class TestToposort:
    def test_chain(self):
        g, nodes = chain(6)
        assert topological_sort(g) == nodes

    def test_diamond_stable(self):
        g = OrderedMultiDiGraph()
        g.add_edge("a", "b", None)
        g.add_edge("a", "c", None)
        g.add_edge("b", "d", None)
        g.add_edge("c", "d", None)
        assert topological_sort(g) == ["a", "b", "c", "d"]

    def test_cycle_raises(self):
        g = OrderedMultiDiGraph()
        g.add_edge("a", "b", None)
        g.add_edge("b", "a", None)
        with pytest.raises(CycleError):
            topological_sort(g)

    def test_disconnected(self):
        g = OrderedMultiDiGraph()
        g.add_node("x")
        g.add_edge("a", "b", None)
        order = topological_sort(g)
        assert set(order) == {"x", "a", "b"}

    @given(
        st.lists(
            st.tuples(st.integers(0, 15), st.integers(0, 15)).filter(
                lambda ab: ab[0] < ab[1]
            ),
            max_size=40,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_property_edges_respect_order(self, edges):
        # Edges always go low -> high, so the graph is a DAG by construction.
        g = OrderedMultiDiGraph()
        for a, b in edges:
            g.add_edge(a, b, None)
        order = topological_sort(g)
        pos = {n: i for i, n in enumerate(order)}
        for e in g.edges():
            assert pos[e.src] < pos[e.dst]


class TestComponents:
    def test_single_component(self):
        g, _ = chain(4)
        assert len(weakly_connected_components(g)) == 1

    def test_multiple_components(self):
        g = OrderedMultiDiGraph()
        g.add_edge("a", "b", None)
        g.add_edge("c", "d", None)
        g.add_node("e")
        comps = weakly_connected_components(g)
        assert [sorted(map(str, c)) for c in comps] == [["a", "b"], ["c", "d"], ["e"]]

    def test_direction_ignored(self):
        g = OrderedMultiDiGraph()
        g.add_edge("a", "b", None)
        g.add_edge("c", "b", None)
        assert len(weakly_connected_components(g)) == 1


class TestDominators:
    """Scope detection relies on dominator/post-dominator structure
    (map-entry dominates the scope, map-exit post-dominates it)."""

    def make_scope_graph(self):
        #      entry
        #      /   \
        #     t1   t2
        #      \   /
        #      exit -> after
        g = OrderedMultiDiGraph()
        g.add_edge("entry", "t1", None)
        g.add_edge("entry", "t2", None)
        g.add_edge("t1", "exit", None)
        g.add_edge("t2", "exit", None)
        g.add_edge("exit", "after", None)
        return g

    def test_entry_dominates_all(self):
        g = self.make_scope_graph()
        dom = dominators(g, "entry")
        for n in ["t1", "t2", "exit", "after"]:
            assert "entry" in dom[n]

    def test_branch_nodes_do_not_dominate_join(self):
        g = self.make_scope_graph()
        dom = dominators(g, "entry")
        assert "t1" not in dom["exit"]
        assert "t2" not in dom["exit"]

    def test_self_domination(self):
        g = self.make_scope_graph()
        dom = dominators(g, "entry")
        for n, ds in dom.items():
            assert n in ds

    def test_postdominators(self):
        g = self.make_scope_graph()
        pdom = postdominators(g, "after")
        assert "exit" in pdom["t1"]
        assert "exit" in pdom["t2"]
        assert "t1" not in pdom["entry"]
