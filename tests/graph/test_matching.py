"""Tests for the VF2-style subgraph matcher."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph import OrderedMultiDiGraph, subgraph_monomorphisms


class L:
    """Labeled node."""

    def __init__(self, kind):
        self.kind = kind

    def __repr__(self):
        return f"L({self.kind})"


def kind_match(pn, hn):
    return pn.kind == hn.kind


class TestBasicMatching:
    def test_single_edge_pattern(self):
        host = OrderedMultiDiGraph()
        a, b, c = L("map"), L("tasklet"), L("data")
        host.add_edge(a, b, None)
        host.add_edge(b, c, None)

        pat = OrderedMultiDiGraph()
        pm, pt = L("map"), L("tasklet")
        pat.add_edge(pm, pt, None)

        matches = list(subgraph_monomorphisms(pat, host, node_match=kind_match))
        assert len(matches) == 1
        assert matches[0][pm] is a
        assert matches[0][pt] is b

    def test_no_match(self):
        host = OrderedMultiDiGraph()
        host.add_edge(L("a"), L("b"), None)
        pat = OrderedMultiDiGraph()
        pat.add_edge(L("x"), L("y"), None)
        assert list(subgraph_monomorphisms(pat, host, node_match=kind_match)) == []

    def test_path_pattern_in_chain(self):
        host = OrderedMultiDiGraph()
        ns = [L("n") for _ in range(5)]
        for i in range(4):
            host.add_edge(ns[i], ns[i + 1], None)
        pat = OrderedMultiDiGraph()
        p = [L("n") for _ in range(3)]
        pat.add_edge(p[0], p[1], None)
        pat.add_edge(p[1], p[2], None)
        matches = list(subgraph_monomorphisms(pat, host, node_match=kind_match))
        assert len(matches) == 3  # three consecutive windows

    def test_edge_match_callback(self):
        host = OrderedMultiDiGraph()
        a, b = L("n"), L("n")
        host.add_edge(a, b, "good")
        host.add_edge(a, b, "bad")
        pat = OrderedMultiDiGraph()
        pa, pb = L("n"), L("n")
        pat.add_edge(pa, pb, "good")
        matches = list(
            subgraph_monomorphisms(
                pat, host, node_match=kind_match, edge_match=lambda p, h: p == h
            )
        )
        assert len(matches) == 1

    def test_monomorphism_ignores_extra_host_edges(self):
        host = OrderedMultiDiGraph()
        a, b = L("n"), L("n")
        host.add_edge(a, b, None)
        host.add_edge(b, a, None)  # extra back edge
        pat = OrderedMultiDiGraph()
        pa, pb = L("n"), L("n")
        pat.add_edge(pa, pb, None)
        matches = list(subgraph_monomorphisms(pat, host, node_match=kind_match))
        assert len(matches) == 2  # both directions match the single-edge pattern

    def test_induced_rejects_extra_edges(self):
        host = OrderedMultiDiGraph()
        a, b = L("n"), L("n")
        host.add_edge(a, b, None)
        host.add_edge(b, a, None)
        pat = OrderedMultiDiGraph()
        pa, pb = L("n"), L("n")
        pat.add_edge(pa, pb, None)
        matches = list(
            subgraph_monomorphisms(pat, host, node_match=kind_match, induced=True)
        )
        assert matches == []

    def test_injective(self):
        # A two-node pattern must not map both nodes to the same host node.
        host = OrderedMultiDiGraph()
        a = L("n")
        host.add_edge(a, a, None)  # self-loop
        pat = OrderedMultiDiGraph()
        pa, pb = L("n"), L("n")
        pat.add_edge(pa, pb, None)
        assert list(subgraph_monomorphisms(pat, host, node_match=kind_match)) == []

    def test_disconnected_pattern(self):
        host = OrderedMultiDiGraph()
        a, b = L("x"), L("y")
        host.add_node(a)
        host.add_node(b)
        pat = OrderedMultiDiGraph()
        pat.add_node(L("x"))
        pat.add_node(L("y"))
        matches = list(subgraph_monomorphisms(pat, host, node_match=kind_match))
        assert len(matches) == 1


class TestAgainstNetworkX:
    """Differential test: our matcher must agree with networkx's DiGraphMatcher
    on match *counts* for random labeled DAG patterns."""

    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_counts_match_networkx(self, data):
        n_host = data.draw(st.integers(3, 7))
        labels = "ab"
        host_edges = data.draw(
            st.lists(
                st.tuples(st.integers(0, n_host - 1), st.integers(0, n_host - 1)).filter(
                    lambda ab: ab[0] != ab[1]
                ),
                max_size=12,
                unique=True,
            )
        )
        host_labels = [data.draw(st.sampled_from(labels)) for _ in range(n_host)]

        # Build both representations.
        ours_host = OrderedMultiDiGraph()
        hnodes = [L(host_labels[i]) for i in range(n_host)]
        for hn in hnodes:
            ours_host.add_node(hn)
        nxg = nx.DiGraph()
        for i in range(n_host):
            nxg.add_node(i, kind=host_labels[i])
        for a, b in host_edges:
            ours_host.add_edge(hnodes[a], hnodes[b], None)
            nxg.add_edge(a, b)

        # Pattern: a 2-node, 1-edge labeled pattern.
        la = data.draw(st.sampled_from(labels))
        lb = data.draw(st.sampled_from(labels))
        pat = OrderedMultiDiGraph()
        pa, pb = L(la), L(lb)
        pat.add_edge(pa, pb, None)
        npat = nx.DiGraph()
        npat.add_node("pa", kind=la)
        npat.add_node("pb", kind=lb)
        npat.add_edge("pa", "pb")

        ours = len(list(subgraph_monomorphisms(pat, ours_host, node_match=kind_match)))
        gm = nx.algorithms.isomorphism.DiGraphMatcher(
            nxg, npat, node_match=lambda a, b: a["kind"] == b["kind"]
        )
        theirs = len(list(gm.subgraph_monomorphisms_iter()))
        assert ours == theirs
