"""Unit tests for the ordered multigraph."""

import pytest

from repro.graph import Edge, GraphError, OrderedMultiDiGraph


class Node:
    """Opaque hashable node for testing."""

    def __init__(self, label):
        self.label = label

    def __repr__(self):
        return f"Node({self.label})"


@pytest.fixture
def diamond():
    g = OrderedMultiDiGraph()
    a, b, c, d = (Node(x) for x in "abcd")
    g.add_edge(a, b, "ab")
    g.add_edge(a, c, "ac")
    g.add_edge(b, d, "bd")
    g.add_edge(c, d, "cd")
    return g, (a, b, c, d)


class TestBasics:
    def test_add_node_idempotent(self):
        g = OrderedMultiDiGraph()
        n = Node("x")
        g.add_node(n)
        g.add_node(n)
        assert g.number_of_nodes() == 1

    def test_insertion_order_preserved(self):
        g = OrderedMultiDiGraph()
        ns = [Node(i) for i in range(10)]
        for n in reversed(ns):
            g.add_node(n)
        assert g.nodes() == list(reversed(ns))

    def test_add_edge_adds_nodes(self, diamond):
        g, (a, b, c, d) = diamond
        assert g.number_of_nodes() == 4
        assert g.number_of_edges() == 4

    def test_parallel_edges(self):
        g = OrderedMultiDiGraph()
        a, b = Node("a"), Node("b")
        e1 = g.add_edge(a, b, "first")
        e2 = g.add_edge(a, b, "second")
        assert g.number_of_edges() == 2
        assert g.edges_between(a, b) == [e1, e2]

    def test_connectors(self):
        g = OrderedMultiDiGraph()
        a, b = Node("a"), Node("b")
        e = g.add_edge(a, b, None, src_conn="OUT_1", dst_conn="IN_1")
        assert e.src_conn == "OUT_1"
        assert e.dst_conn == "IN_1"
        r = e.reversed()
        assert r.src is b and r.dst_conn == "OUT_1"

    def test_degrees(self, diamond):
        g, (a, b, c, d) = diamond
        assert g.out_degree(a) == 2
        assert g.in_degree(d) == 2
        assert g.in_degree(a) == 0

    def test_successors_dedup(self):
        g = OrderedMultiDiGraph()
        a, b = Node("a"), Node("b")
        g.add_edge(a, b, 1)
        g.add_edge(a, b, 2)
        assert g.successors(a) == [b]

    def test_sources_sinks(self, diamond):
        g, (a, b, c, d) = diamond
        assert g.source_nodes() == [a]
        assert g.sink_nodes() == [d]


class TestRemoval:
    def test_remove_edge(self, diamond):
        g, (a, b, c, d) = diamond
        e = g.edges_between(a, b)[0]
        g.remove_edge(e)
        assert g.number_of_edges() == 3
        assert g.edges_between(a, b) == []

    def test_remove_edge_twice_raises(self, diamond):
        g, (a, b, c, d) = diamond
        e = g.edges_between(a, b)[0]
        g.remove_edge(e)
        with pytest.raises(GraphError):
            g.remove_edge(e)

    def test_remove_node_removes_incident_edges(self, diamond):
        g, (a, b, c, d) = diamond
        g.remove_node(b)
        assert g.number_of_nodes() == 3
        assert g.number_of_edges() == 2

    def test_remove_missing_node_raises(self):
        g = OrderedMultiDiGraph()
        with pytest.raises(GraphError):
            g.remove_node(Node("ghost"))


class TestQueries:
    def test_all_edges_dedup(self, diamond):
        g, (a, b, c, d) = diamond
        assert len(g.all_edges(b)) == 2
        assert len(g.all_edges(a, b)) == 3  # ab shared between both

    def test_copy_structure_is_independent(self, diamond):
        g, (a, b, c, d) = diamond
        h = g.copy_structure()
        h.remove_node(b)
        assert g.number_of_nodes() == 4
        assert h.number_of_nodes() == 3

    def test_contains_len_iter(self, diamond):
        g, (a, b, c, d) = diamond
        assert a in g
        assert len(g) == 4
        assert list(g) == [a, b, c, d]

    def test_out_edges_of_missing_node(self):
        g = OrderedMultiDiGraph()
        with pytest.raises(GraphError):
            g.out_edges(Node("ghost"))
