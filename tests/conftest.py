"""Shared fixtures: keep cross-test global state out of the picture."""

import pytest

from repro.chaos.engine import active_engine, uninstall_engine
from repro.runtime.watchdog import reset_breakers


@pytest.fixture(autouse=True)
def _fresh_breakers():
    """Circuit breakers are process-global by design (they aggregate
    failures across compilations); tests must not leak open breakers
    into each other."""
    reset_breakers()
    yield
    reset_breakers()


@pytest.fixture(autouse=True)
def _no_leaked_chaos():
    """A test that installs a fault plan (directly or via REPRO_FAULTS)
    must not leave it armed for the next test."""
    yield
    if active_engine() is not None:
        uninstall_engine()
