"""Shared fixtures: keep cross-test global state out of the picture."""

import pytest

from repro.runtime.watchdog import reset_breakers


@pytest.fixture(autouse=True)
def _fresh_breakers():
    """Circuit breakers are process-global by design (they aggregate
    failures across compilations); tests must not leak open breakers
    into each other."""
    reset_breakers()
    yield
    reset_breakers()
