"""Property tests for the symbolic engine's memoization layer: cached
results must be indistinguishable from uncached recomputation, and the
hit/miss counters must be monotonic."""

from hypothesis import given, settings, strategies as st

from repro.symbolic import (
    Integer,
    Symbol,
    cache_snapshot,
    cache_stats,
    clear_caches,
    parse_expr,
    simplify,
)
from repro.symbolic import memo

SYMS = ("N", "M", "K", "TSTEPS")


def exprs(max_leaves: int = 10) -> st.SearchStrategy:
    base = st.one_of(
        st.integers(min_value=-20, max_value=20).map(Integer),
        st.sampled_from(SYMS).map(Symbol),
    )

    def extend(children):
        return st.one_of(
            st.tuples(children, children).map(lambda ab: ab[0] + ab[1]),
            st.tuples(children, children).map(lambda ab: ab[0] - ab[1]),
            st.tuples(children, children).map(lambda ab: ab[0] * ab[1]),
            st.tuples(children, st.integers(min_value=1, max_value=7)).map(
                lambda ab: ab[0] // ab[1]
            ),
            children.map(lambda a: -a),
        )

    return st.recursive(base, extend, max_leaves=max_leaves)


#: Polybench-style size bindings: every size symbol in [1, 128].
bindings = st.fixed_dictionaries({s: st.integers(1, 128) for s in SYMS})


class TestMemoizedEqualsUncached:
    @settings(max_examples=200, deadline=None)
    @given(e=exprs(), env=bindings)
    def test_simplify(self, e, env):
        cached = simplify(e)  # may hit a previous iteration's entry
        clear_caches()
        fresh = simplify(e)
        assert cached == fresh
        assert cached.evaluate(env) == fresh.evaluate(env) == e.evaluate(env)

    @settings(max_examples=200, deadline=None)
    @given(e=exprs(), env=bindings)
    def test_subs(self, e, env):
        mapping = {Symbol(k): Integer(v) for k, v in env.items()}
        cached = e.subs(mapping)
        clear_caches()
        fresh = e.subs(mapping)
        assert cached == fresh
        assert cached.evaluate({}) == e.evaluate(env)

    @settings(max_examples=100, deadline=None)
    @given(env=bindings)
    def test_parse(self, env):
        text = "N * M + K // 2 - TSTEPS"
        cached = parse_expr(text)
        clear_caches()
        fresh = parse_expr(text)
        assert cached == fresh
        assert cached.evaluate(env) == fresh.evaluate(env)


class TestCounters:
    def test_hit_on_second_identical_call(self):
        clear_caches(reset_counters=True)
        e = parse_expr("N * 4 + M")
        before = cache_snapshot().get("simplify", (0, 0))
        simplify(e)
        simplify(e)
        hits, misses = cache_snapshot().get("simplify", (0, 0))
        assert misses >= before[1] + 1
        assert hits >= before[0] + 1

    @settings(max_examples=50, deadline=None)
    @given(e=exprs(max_leaves=6))
    def test_monotonic(self, e):
        before = cache_snapshot()
        simplify(e)
        e.subs({Symbol("N"): Integer(3)})
        after = cache_snapshot()
        for name, (h0, m0) in before.items():
            h1, m1 = after.get(name, (h0, m0))
            assert h1 >= h0 and m1 >= m0

    def test_stats_shape(self):
        clear_caches(reset_counters=True)
        simplify(parse_expr("N + 1"))
        stats = cache_stats()
        assert "simplify" in stats
        rec = stats["simplify"]
        assert set(rec) == {"hits", "misses", "entries"}
        assert rec["hits"] + rec["misses"] >= 1

    def test_clear_preserves_counters_by_default(self):
        clear_caches(reset_counters=True)
        simplify(parse_expr("N + 2"))
        snap = cache_snapshot()
        clear_caches()
        assert cache_snapshot() == snap
        assert cache_stats()["simplify"]["entries"] == 0

    def test_unhashable_key_bypasses(self):
        # Bypass path: compute runs, nothing stored, miss counted.
        before = memo.stats().get("adhoc", {"hits": 0, "misses": 0, "entries": 0})
        out = memo.memoized("adhoc", ["not", "hashable"], lambda: 42)
        assert out == 42
        rec = memo.stats()["adhoc"]
        assert rec["misses"] == before["misses"] + 1
        assert rec["entries"] == before["entries"]
