"""Unit tests for the symbolic expression tree."""

import math

import pytest

from repro.symbolic import (
    Abs,
    Add,
    CeilDiv,
    Eq,
    Expr,
    FloorDiv,
    Integer,
    Max,
    Min,
    Mod,
    Mul,
    Pow,
    Real,
    Symbol,
    parse_expr,
    symbols,
    sympify,
)
from repro.symbolic.expr import TRUE, FALSE, And, Or, Not, evaluate_to_int

N, M, K = symbols("N M K")
i, j = symbols("i j")


class TestConstruction:
    def test_integer_fold(self):
        assert Integer(2) + Integer(3) == Integer(5)
        assert Integer(2) * Integer(3) == Integer(6)
        assert Integer(7) - 10 == Integer(-3)

    def test_symbol_identity(self):
        assert Symbol("N") == Symbol("N")
        assert Symbol("N") != Symbol("M")
        assert hash(Symbol("N")) == hash(Symbol("N"))

    def test_invalid_symbol_name(self):
        with pytest.raises(ValueError):
            Symbol("3x")
        with pytest.raises(ValueError):
            Symbol("")

    def test_add_collects_like_terms(self):
        assert 2 * N + 3 * N == 5 * N
        assert N + N - 2 * N == Integer(0)

    def test_add_sorts_deterministically(self):
        a = N + M + K
        b = K + M + N
        assert a == b
        assert str(a) == str(b)

    def test_mul_merges_powers(self):
        assert N * N == N**2
        assert N**2 * N == N**3
        assert (N**2) / N == N  # exact division via negative powers folds

    def test_mul_zero_annihilates(self):
        assert 0 * N == Integer(0)
        assert N * 0 * M == Integer(0)

    def test_distribute_constant_over_add(self):
        # Crucial for cancelation of differences of sums.
        assert (N + 3) - (N + 1) == Integer(2)
        assert 2 * (N + 1) == 2 * N + 2

    def test_neg(self):
        assert -(-N) == N
        assert str(-N) == "-N"

    def test_pow_folding(self):
        assert Pow.make(Integer(2), Integer(10)) == Integer(1024)
        assert Pow.make(N, Integer(0)) == Integer(1)
        assert Pow.make(N, Integer(1)) == N


class TestDivision:
    def test_exact_integer_division(self):
        assert (4 * N) / 2 == 2 * N
        assert (4 * N + 8) / 4 == N + 2

    def test_inexact_becomes_floordiv(self):
        e = N / 2
        assert isinstance(e, FloorDiv)
        assert e.evaluate({"N": 7}) == 3

    def test_floordiv_semantics(self):
        assert (N // 3).evaluate({"N": -7}) == -3  # Python floor semantics

    def test_ceildiv(self):
        e = CeilDiv.make(N, Integer(4))
        assert e.evaluate({"N": 9}) == 3
        assert e.evaluate({"N": 8}) == 2
        assert CeilDiv.make(Integer(9), Integer(4)) == Integer(3)

    def test_div_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            N / 0

    def test_mod(self):
        assert Mod.make(Integer(7), Integer(4)) == Integer(3)
        assert (N % 1) == Integer(0)
        assert ((4 * N) % 2) == Integer(0)
        assert (N % N) == Integer(0)


class TestMinMaxAbs:
    def test_min_max_consts(self):
        assert Min.make(Integer(3), Integer(5)) == Integer(3)
        assert Max.make(Integer(3), Integer(5)) == Integer(5)

    def test_min_flattens_and_dedups(self):
        e = Min.make(N, Min.make(M, N))
        assert isinstance(e, Min)
        assert len(e.args) == 2

    def test_min_single_arg_collapses(self):
        assert Min.make(N, N) == N

    def test_evaluate(self):
        e = Max.make(N, M + 1)
        assert e.evaluate({"N": 3, "M": 7}) == 8

    def test_abs(self):
        assert Abs.make(Integer(-4)) == Integer(4)
        assert Abs.make(N).evaluate({"N": -3}) == 3


class TestSubstitution:
    def test_subs_by_name_and_symbol(self):
        e = N + 2 * M
        assert e.subs({"N": 1, "M": 2}) == Integer(5)
        assert e.subs({N: 1, M: 2}) == Integer(5)

    def test_subs_expression(self):
        e = N * N
        assert e.subs({"N": M + 1}) == (M + 1) ** 2

    def test_subs_partial(self):
        e = N + M
        r = e.subs({"N": 3})
        assert r == M + 3
        assert r.free_symbols == frozenset({M})

    def test_free_symbols(self):
        e = (N + M) * K // 2
        assert {s.name for s in e.free_symbols} == {"N", "M", "K"}


class TestEvaluation:
    def test_unbound_symbol_raises(self):
        with pytest.raises(KeyError):
            N.evaluate({})

    def test_evaluate_to_int(self):
        assert evaluate_to_int("N*2+1", {"N": 5}) == 11
        assert evaluate_to_int(7) == 7

    def test_bool_raises(self):
        with pytest.raises(TypeError):
            bool(N + 1)

    def test_as_int(self):
        assert (Integer(3) + 4).as_int() == 7
        with pytest.raises(KeyError):
            N.as_int()


class TestBooleans:
    def test_constant_relations_fold(self):
        assert Eq.make(Integer(3), Integer(3)) == TRUE
        assert (Integer(2) < Integer(1)) == FALSE

    def test_symbolic_relation(self):
        c = N < M
        assert c.evaluate({"N": 1, "M": 2}) is True
        assert c.evaluate({"N": 2, "M": 2}) is False

    def test_and_or_folding(self):
        assert And.make(TRUE, TRUE) == TRUE
        assert And.make(TRUE, FALSE) == FALSE
        assert Or.make(FALSE, TRUE) == TRUE
        assert And.make() == TRUE
        assert Or.make() == FALSE

    def test_not_negates_relations(self):
        assert Not.make(N < M) == (N >= M)
        assert Not.make(Not.make(N < M)) == (N < M)

    def test_relation_simplifies_via_difference(self):
        assert ((N + 1) > N) == TRUE
        assert (N - N == 0)


class TestParser:
    def test_arithmetic(self):
        assert parse_expr("2*N + 1") == 2 * N + 1
        assert parse_expr("(N+1)*(N+1)") == (N + 1) ** 2

    def test_functions(self):
        assert parse_expr("min(N, M)") == Min.make(N, M)
        assert parse_expr("int_ceil(N, 4)") == CeilDiv.make(N, Integer(4))

    def test_comparison_chain(self):
        e = parse_expr("0 <= i < N")
        assert e.evaluate({"i": 3, "N": 5}) is True
        assert e.evaluate({"i": 7, "N": 5}) is False

    def test_bool_ops(self):
        e = parse_expr("i < N and not (i == 3)")
        assert e.evaluate({"i": 2, "N": 5}) is True
        assert e.evaluate({"i": 3, "N": 5}) is False

    def test_rejects_unknown_calls(self):
        from repro.symbolic.parser import SymbolicSyntaxError

        with pytest.raises(SymbolicSyntaxError):
            parse_expr("foo(N)")

    def test_rejects_garbage(self):
        from repro.symbolic.parser import SymbolicSyntaxError

        with pytest.raises(SymbolicSyntaxError):
            parse_expr("N +")

    def test_sympify_roundtrip(self):
        for text in ["N", "2*N + 1", "N // 2", "N % 4", "min(N, M)", "-N + M*K"]:
            e = parse_expr(text)
            assert parse_expr(str(e)) == e, text


class TestImmutability:
    def test_integers_immutable(self):
        with pytest.raises(AttributeError):
            Integer(3).value = 4

    def test_symbols_immutable(self):
        with pytest.raises(AttributeError):
            N.name = "Q"

    def test_sympify_types(self):
        assert sympify(3) == Integer(3)
        assert sympify(3.0) == Integer(3)
        assert isinstance(sympify(3.5), Real)
        assert sympify(N) is N
        with pytest.raises(TypeError):
            sympify(object())
