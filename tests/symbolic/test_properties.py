"""Property-based tests (hypothesis) for the symbolic engine.

The central invariant: canonicalization never changes the value of an
expression.  We generate random expression trees, evaluate them under
random positive bindings, and check that the canonical form, the
string-parse round-trip, and substitution all preserve semantics.
"""

from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.symbolic import Expr, Integer, Range, Subset, Symbol, parse_expr

SYMS = ("N", "M", "K")


def exprs(max_depth: int = 4) -> st.SearchStrategy:
    base = st.one_of(
        st.integers(min_value=-20, max_value=20).map(Integer),
        st.sampled_from(SYMS).map(Symbol),
    )

    def extend(children):
        return st.one_of(
            st.tuples(children, children).map(lambda ab: ab[0] + ab[1]),
            st.tuples(children, children).map(lambda ab: ab[0] - ab[1]),
            st.tuples(children, children).map(lambda ab: ab[0] * ab[1]),
            st.tuples(children, st.integers(min_value=1, max_value=7)).map(
                lambda ab: ab[0] // ab[1]
            ),
            st.tuples(children, st.integers(min_value=1, max_value=7)).map(
                lambda ab: ab[0] % ab[1]
            ),
            children.map(lambda a: -a),
        )

    return st.recursive(base, extend, max_leaves=12)


BINDINGS = st.fixed_dictionaries(
    {name: st.integers(min_value=1, max_value=50) for name in SYMS}
)


@given(exprs(), BINDINGS)
@settings(max_examples=200, deadline=None)
def test_canonicalization_preserves_value(e: Expr, bindings):
    # Rebuilding the expression from scratch (add 0, multiply by 1) must
    # not change its value under any binding.
    v = e.evaluate(bindings)
    assert (e + 0).evaluate(bindings) == v
    assert (e * 1).evaluate(bindings) == v
    assert (0 + (e * 1)).evaluate(bindings) == v


@given(exprs(), BINDINGS)
@settings(max_examples=200, deadline=None)
def test_parse_str_roundtrip(e: Expr, bindings):
    reparsed = parse_expr(str(e))
    assert reparsed.evaluate(bindings) == e.evaluate(bindings)


@given(exprs(), BINDINGS)
@settings(max_examples=150, deadline=None)
def test_subs_equals_evaluate(e: Expr, bindings):
    substituted = e.subs(bindings)
    assert substituted.is_constant()
    assert substituted.evaluate({}) == e.evaluate(bindings)


@given(exprs(), exprs(), BINDINGS)
@settings(max_examples=150, deadline=None)
def test_arithmetic_homomorphism(a: Expr, b: Expr, bindings):
    assert (a + b).evaluate(bindings) == a.evaluate(bindings) + b.evaluate(bindings)
    assert (a - b).evaluate(bindings) == a.evaluate(bindings) - b.evaluate(bindings)
    assert (a * b).evaluate(bindings) == a.evaluate(bindings) * b.evaluate(bindings)


@given(
    st.integers(min_value=0, max_value=30),
    st.integers(min_value=1, max_value=30),
    st.integers(min_value=1, max_value=5),
    BINDINGS,
)
@settings(max_examples=150, deadline=None)
def test_range_size_matches_python_range(start, length, step, bindings):
    r = Range(start, start + length, step)
    assert r.size().evaluate(bindings) == len(range(start, start + length, step))
    assert r.max_element().evaluate(bindings) == max(
        range(start, start + length, step)
    )


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=10),
            st.integers(min_value=1, max_value=10),
        ),
        min_size=1,
        max_size=3,
    )
)
@settings(max_examples=100, deadline=None)
def test_subset_volume_is_product(dims):
    sub = Subset([Range(s, s + l) for s, l in dims])
    vol = sub.num_elements().as_int()
    expected = 1
    for _, l in dims:
        expected *= l
    assert vol == expected


@given(
    st.integers(min_value=0, max_value=5),
    st.integers(min_value=1, max_value=8),
    st.integers(min_value=0, max_value=3),
    st.integers(min_value=1, max_value=4),
)
@settings(max_examples=100, deadline=None)
def test_image_covers_every_concrete_point(lo, n, off, width):
    """The image of a subset under a map range contains every subset
    instance produced by any concrete parameter value — soundness of
    memlet propagation."""
    param = Range(lo, lo + n)
    sub = Subset.from_string(f"i+{off}:i+{off}+{width}")
    img = sub.image({"i": param})
    img_lo = img[0].min_element().as_int()
    img_hi = img[0].max_element().as_int()
    for iv in range(lo, lo + n):
        inst = sub.subs({"i": iv})
        assert img_lo <= inst[0].min_element().as_int()
        assert inst[0].max_element().as_int() <= img_hi
