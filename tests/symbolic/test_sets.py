"""Unit tests for symbolic ranges and subsets."""

import pytest

from repro.symbolic import Integer, Range, Subset, Symbol, symbols
from repro.symbolic.sets import decide_nonnegative, linear_coefficient

N, M, T = symbols("N M T")
i, j, t = symbols("i j t")


class TestRange:
    def test_point(self):
        r = Range.point(i + 1)
        assert r.is_point()
        assert r.num_elements() == Integer(1)
        assert str(r) == "1 + i"

    def test_size(self):
        assert Range(0, N).size() == N
        assert Range(1, N - 1).size() == N - 2
        assert Range(0, N, 2).size().evaluate({"N": 7}) == 4

    def test_zero_step_rejected(self):
        with pytest.raises(ValueError):
            Range(0, N, 0)

    def test_evaluate(self):
        assert list(Range(0, "N", 2).evaluate({"N": 7})) == [0, 2, 4, 6]

    def test_max_element_strided(self):
        r = Range(0, 10, 3)  # 0,3,6,9
        assert r.max_element().as_int() == 9

    def test_max_element_tiled(self):
        r = Range(0, 4, 1, 4)  # 4 tiles of width 4 -> last element 3*1+4-1
        assert r.max_element().as_int() == 6
        assert r.num_elements().as_int() == 16

    def test_covers(self):
        assert Range(0, N).covers(Range(1, N - 1))
        assert not Range(1, N - 1).covers(Range(0, N))
        assert Range(0, N).covers(Range(0, N))

    def test_union_bb(self):
        u = Range(0, 5).union_bb(Range(3, 9))
        assert u.evaluate({}) == range(0, 9)

    def test_offset(self):
        r = Range(i, i + 3).offset_by(-i)
        assert str(r) == "0:3"

    def test_str_roundtrip_strided(self):
        assert str(Range(0, N, 2)) == "0:N:2"


class TestSubsetParsing:
    def test_from_string_mixed(self):
        s = Subset.from_string("0:N, k, 2*i:2*i+2")
        assert s.dims == 3
        assert s[1].is_point()
        assert s.num_elements() == 2 * N

    def test_from_array(self):
        s = Subset.from_array([N, M])
        assert str(s) == "0:N, 0:M"

    def test_from_indices(self):
        s = Subset.from_indices([i, j])
        assert s.is_point()
        assert s.num_elements() == Integer(1)

    def test_malformed(self):
        with pytest.raises(ValueError):
            Subset.from_string("0:1:2:3:4")

    def test_nested_functions_in_dims(self):
        s = Subset.from_string("max(0, i-1):min(N, i+2), j")
        assert s.dims == 2


class TestSubsetOps:
    def test_volume(self):
        assert Subset.from_string("0:N, 0:M").num_elements() == N * M

    def test_covers(self):
        full = Subset.from_array([N, M])
        assert full.covers(Subset.from_string("1:N-1, 0:M"))
        assert not Subset.from_string("1:N-1, 0:M").covers(full)

    def test_covers_dim_mismatch(self):
        assert not Subset.from_array([N]).covers(Subset.from_array([N, M]))

    def test_intersects_disjoint(self):
        a = Subset.from_string("0:4")
        b = Subset.from_string("4:8")
        assert a.intersects(b) is False

    def test_intersects_overlap(self):
        a = Subset.from_string("0:5")
        b = Subset.from_string("4:8")
        assert a.intersects(b) is True

    def test_offset_relative(self):
        outer = Subset.from_string("i:i+3, 0:M")
        inner = Subset.from_string("i+1, j")
        rel = inner.offset(outer, negative=True)
        assert str(rel[0]) == "1"

    def test_compose(self):
        outer = Subset.from_string("10:20")
        inner = Subset.from_string("2:5")
        assert str(outer.compose(inner)) == "12:15"

    def test_compose_strided(self):
        outer = Subset.from_string("0:20:2")
        inner = Subset.from_string("1:4")
        c = outer.compose(inner)
        assert c.evaluate({}) == (slice(2, 8, 2),)

    def test_union_bb(self):
        a = Subset.from_string("0:5, 2:3")
        b = Subset.from_string("3:9, 0:1")
        u = a.union_bb(b)
        assert u.evaluate({}) == (slice(0, 9, 1), slice(0, 3, 1))

    def test_evaluate_indices(self):
        s = Subset.from_string("t % 2, i-1").subs({"t": 3, "i": 5})
        assert s.evaluate_indices({}) == (1, 4)
        with pytest.raises(ValueError):
            Subset.from_string("0:4").evaluate_indices({})


class TestImage:
    """Memlet propagation's core operation (paper section 4.3 step 1)."""

    def test_identity_param(self):
        img = Subset.from_string("i").image({"i": Range(0, N)})
        assert str(img) == "0:N"

    def test_laplace_stencil(self):
        # A[t%2, i-1:i+2] over i in [1, N-1) covers A[t%2, 0:N]
        img = Subset.from_string("t % 2, i-1:i+2").image({"i": Range(1, N - 1)})
        assert str(img) == "t % 2, 0:N"

    def test_negative_coefficient(self):
        img = Subset.from_string("N-1-i").image({"i": Range(0, N)})
        assert Subset.from_array([N]).covers(img)
        assert img[0].min_element().subs({"N": 10}).as_int() == 0

    def test_strided_param(self):
        img = Subset.from_string("i:i+4").image({"i": Range(0, N, 4)})
        lo = img[0].min_element()
        assert lo == Integer(0)
        # hi covers through the last tile
        assert img[0].max_element().subs({"N": 16}).as_int() == 15

    def test_multi_param(self):
        img = Subset.from_string("i, j").image({"i": Range(0, N), "j": Range(0, M)})
        assert str(img) == "0:N, 0:M"

    def test_unrelated_param_untouched(self):
        img = Subset.from_string("k").image({"i": Range(0, N)})
        assert str(img) == "k"

    def test_nonlinear_falls_back_to_envelope(self):
        img = Subset.from_string("i*i").image({"i": Range(0, 4)})
        assert img[0].min_element().as_int() == 0
        assert img[0].max_element().as_int() == 9


class TestDecisionProcedure:
    def test_constants(self):
        assert decide_nonnegative(Integer(0)) is True
        assert decide_nonnegative(Integer(-1)) is False

    def test_positive_symbol_model(self):
        assert decide_nonnegative(N) is True
        assert decide_nonnegative(N - 1) is True
        assert decide_nonnegative(-N) is False

    def test_undecidable(self):
        assert decide_nonnegative(N - M) is None

    def test_linear_coefficient(self):
        assert linear_coefficient(3 * i + N, i) == Integer(3)
        assert linear_coefficient(N - i, i) == Integer(-1)
        assert linear_coefficient(i * i, i) is None
        assert linear_coefficient(N * i, i) == N
