"""Cross-process safety of the disk cache tiers and the file lock.

Two real processes hammer one cache directory (stores force constant
LRU eviction, lookups race the evictions); the invariants are "no
process crashes" and "the directory converges to a consistent state".
"""

import json
import os
import subprocess
import sys

import pytest

from repro.filelock import FileLock, LockTimeout, cache_lock

#: The repo's src/ directory, independent of pytest's cwd.
SRC = os.path.realpath(
    os.path.join(os.path.dirname(__file__), "..", "..", "src")
)


def run_procs(scripts, tmp_path, timeout=180):
    env = os.environ.copy()
    env["PYTHONPATH"] = os.pathsep.join(
        [SRC] + env.get("PYTHONPATH", "").split(os.pathsep)
    ).rstrip(os.pathsep)
    procs = [
        subprocess.Popen([sys.executable, "-c", script], env=env,
                         stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
                         cwd=str(tmp_path))
        for script in scripts
    ]
    outputs = []
    for p in procs:
        out, _ = p.communicate(timeout=timeout)
        outputs.append((p.returncode, out.decode(errors="replace")))
    return outputs


# -------------------------------------------------------------- FileLock
def test_filelock_mutual_exclusion_across_processes(tmp_path):
    """Two processes do read-modify-write cycles on one counter file
    under the lock; a lost update proves a mutual-exclusion hole."""
    counter = tmp_path / "counter.txt"
    counter.write_text("0")
    script = f"""
import sys
sys.path.insert(0, {SRC!r})
from repro.filelock import FileLock
lock = FileLock({str(counter.with_suffix(".lock"))!r}, timeout=60.0)
for _ in range(150):
    with lock:
        with open({str(counter)!r}) as f:
            value = int(f.read())
        with open({str(counter)!r}, "w") as f:
            f.write(str(value + 1))
print("done")
"""
    results = run_procs([script, script], tmp_path)
    for code, out in results:
        assert code == 0, out
    assert int(counter.read_text()) == 300, "lost update: lock is not exclusive"


def test_filelock_timeout_and_context_manager(tmp_path):
    path = str(tmp_path / "x.lock")
    outer = FileLock(path, timeout=0.2)
    assert outer.acquire()
    inner = FileLock(path, timeout=0.2)
    assert inner.acquire(best_effort=True) is False, "best-effort returns False"
    with pytest.raises(LockTimeout):
        with FileLock(path, timeout=0.2):
            pass
    outer.release()
    with FileLock(path, timeout=1.0):
        pass  # freed lock is acquirable again


def test_cache_lock_helper(tmp_path):
    lock = cache_lock(str(tmp_path))
    assert lock.path == os.path.join(str(tmp_path), ".lock")
    with lock:
        assert os.path.exists(lock.path)


# ----------------------------------------------------- ProgramCache tier
PROGCACHE_HAMMER = """
import json, os, sys
sys.path.insert(0, {src!r})
from repro.codegen.progcache import ProgramCache, ProgramCacheEntry, program_key
cache = ProgramCache(cache_dir={cache_dir!r}, max_entries=8)
for i in range({rounds}):
    key = program_key("sdfg%03d" % (i % 24), "python")
    entry = ProgramCacheEntry(
        key=key, backend="python", sdfg_name="s%d" % i,
        source="def entry(): pass", arg_arrays=["A"], symbol_order=["N"],
    )
    cache.store(key, entry, None)
    got = cache.lookup(program_key("sdfg%03d" % ((i * 7) % 24), "python"))
    if got is not None:
        assert got[0].source == "def entry(): pass"
print(json.dumps(cache.stats()))
"""


def test_two_processes_hammer_one_program_cache(tmp_path):
    cache_dir = str(tmp_path / "progcache")
    script = PROGCACHE_HAMMER.format(
        src=SRC, cache_dir=cache_dir, rounds=120
    )
    results = run_procs([script, script], tmp_path)
    for code, out in results:
        assert code == 0, out
        stats = json.loads(out.strip().splitlines()[-1])
        assert stats["stores"] == 120

    # Eviction under contention must converge near the per-process
    # budget — and never lose the directory to a race.
    files = [f for f in os.listdir(cache_dir) if f.endswith(".json")]
    assert 1 <= len(files) <= 16
    for name in files:  # every surviving entry parses cleanly
        with open(os.path.join(cache_dir, name)) as f:
            assert json.load(f)["schema"] == 1
    leftovers = [f for f in os.listdir(cache_dir) if ".tmp." in f]
    assert not leftovers, f"atomic writes leaked temp files: {leftovers}"


# ------------------------------------------------------ TuningCache tier
TUNECACHE_HAMMER = """
import json, os, sys
sys.path.insert(0, {src!r})
from repro.tuning.cache import TuningCache
cache = TuningCache({cache_dir!r}, max_entries=8)
for i in range({rounds}):
    key = "k%03d" % (i % 24)
    cache.put(key, {{"history": [["MapTiling", {{}}]], "runtime": 0.001 * i}})
    got = cache.get("k%03d" % ((i * 5) % 24))
    if got is not None:
        assert "history" in got
print(json.dumps(cache.stats()))
"""


def test_two_processes_hammer_one_tuning_cache(tmp_path):
    cache_dir = str(tmp_path / "tunecache")
    script = TUNECACHE_HAMMER.format(
        src=SRC, cache_dir=cache_dir, rounds=120
    )
    results = run_procs([script, script], tmp_path)
    for code, out in results:
        assert code == 0, out
    files = [f for f in os.listdir(cache_dir) if f.endswith(".json")]
    assert 1 <= len(files) <= 16
    for name in files:
        with open(os.path.join(cache_dir, name)) as f:
            json.load(f)


def test_namespaced_caches_do_not_share_files(tmp_path):
    from repro.codegen.progcache import (
        ProgramCacheEntry,
        namespaced_cache,
        program_key,
        safe_namespace,
    )

    root = str(tmp_path / "tenants")
    alice = namespaced_cache(root, "alice", max_entries=4)
    bob = namespaced_cache(root, "bob", max_entries=4)
    assert alice is not bob
    assert namespaced_cache(root, "alice") is alice, "instances are shared"

    key = program_key("same_sdfg", "python")
    alice.store(key, ProgramCacheEntry(
        key=key, backend="python", sdfg_name="s", source="def entry(): pass",
        arg_arrays=[], symbol_order=[]), None)
    assert bob.lookup(key) is None, "tenants must not see each other's entries"
    assert os.path.exists(
        os.path.join(root, safe_namespace("alice"), f"{key}.json"))
    assert not os.path.exists(
        os.path.join(root, safe_namespace("bob"), f"{key}.json"))

    # Hostile namespace strings cannot escape the root.
    for hostile in ("..", ".", "....", "../evil", "a/b", "/etc/passwd", ""):
        safe = safe_namespace(hostile)
        assert "/" not in safe and safe.strip("."), (hostile, safe)
    evil = namespaced_cache(root, "..")
    assert os.path.realpath(evil.cache_dir).startswith(os.path.realpath(root))

    # The mapping is injective: names that sanitize identically must
    # still land in distinct namespaces (distinct dirs + variant keys).
    assert safe_namespace("a/b") != safe_namespace("a_b")
    assert safe_namespace("a.b") != safe_namespace("a_b")
    assert namespaced_cache(root, "a/b") is not namespaced_cache(root, "a_b")
    # ... while repeat calls for the same raw name stay stable.
    assert safe_namespace("a/b") == safe_namespace("a/b")
