"""Worker retirement is bounded: a wedged worker cannot block the
supervisor thread past the retirement grace."""

import signal
import time

from repro.serve.pool import WorkerHandle


def test_stop_of_a_wedged_worker_is_bounded():
    handle = WorkerHandle(cache_root=None, fault_injection=False)
    try:
        assert handle.alive()
        # SIGSTOP freezes the worker: it will neither drain its stdin
        # nor exit on the shutdown op — the old unbounded path would
        # block on the pipe write or the wait forever.
        handle.proc.send_signal(signal.SIGSTOP)
        start = time.monotonic()
        handle.stop(grace=0.5)
        elapsed = time.monotonic() - start
        assert elapsed < 5.0, f"stop() took {elapsed:.1f}s for a wedged worker"
        assert not handle.alive(), "the deadline expired into a SIGKILL"
    finally:
        if handle.alive():
            handle.kill()
