"""Worker-pool supervision: warm reuse, recycling, crash replay."""

import os

import numpy as np
import pytest

from repro.serve.pool import WorkerPool
from repro.serve import protocol


def scale_job(mult=2.0, n=8, tenant="t", name="pool_scale", **extra):
    from repro.serve.loadtest import scale_sdfg

    job = {
        "op": "execute",
        "tenant": tenant,
        "backend": "python",
        "sdfg": scale_sdfg(mult, name=name).to_json(),
        "arrays": protocol.encode_arrays(
            {"A": np.arange(n, dtype=np.float64)}
        ),
        "symbols": {"N": n},
    }
    job.update(extra)
    return job


@pytest.fixture
def crash_env(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CRASH_DIR", str(tmp_path / "crashes"))
    return tmp_path / "crashes"


def test_pool_serves_and_reuses_warm_workers():
    with WorkerPool(size=1) as pool:
        first = pool.submit(scale_job())
        assert first["status"] == "ok", first
        assert first["warm"] is False
        out = protocol.decode_arrays(first["arrays"])
        np.testing.assert_allclose(out["A"], np.arange(8) * 2.0)

        second = pool.submit(scale_job())
        assert second["status"] == "ok"
        assert second["warm"] is True, "same program on the same worker is warm"
        assert second["served"] == 2


def test_recycle_after_request_count():
    with WorkerPool(size=1, recycle_after=3) as pool:
        for _ in range(3):
            assert pool.submit(scale_job())["status"] == "ok"
        assert pool.stats()["recycled"] == 1, "worker retired after 3 requests"
        # The replacement is cold but must serve correctly.
        resp = pool.submit(scale_job())
        assert resp["status"] == "ok"
        assert resp["warm"] is False
        assert resp["served"] == 1, "a fresh worker took over"


def test_worker_death_is_replayed_then_surfaced(crash_env):
    with WorkerPool(size=1, fault_injection=True) as pool:
        resp = pool.submit(scale_job(inject_fault="segv", deadline=10.0))
        assert resp["status"] == "error"
        assert resp["code"] == "E201"
        assert resp["attempts"] == 2, "one replay before giving up"
        assert resp["retryable"] is True
        assert resp["returncode"] is not None and resp["returncode"] < 0
        stats = pool.stats()
        assert stats["deaths"] == 2 and stats["replays"] == 1
        assert stats["alive"] == 1, "the pool replaced the dead worker"

        # The pool still serves healthy requests afterwards.
        assert pool.submit(scale_job())["status"] == "ok"


def test_worker_death_writes_repro_bundle(crash_env):
    with WorkerPool(size=1, fault_injection=True) as pool:
        resp = pool.submit(scale_job(tenant="mallory", inject_fault="segv",
                                     deadline=10.0))
    bundle = resp["bundle"]
    assert bundle and os.path.isdir(bundle)
    assert os.path.realpath(bundle).startswith(os.path.realpath(str(crash_env)))
    assert "serve_mallory" in os.path.basename(bundle)
    import json

    with open(os.path.join(bundle, "manifest.json")) as f:
        manifest = json.load(f)
    assert manifest["tenant"] == "mallory"
    assert manifest["arrays"]["A"]["shape"] == [8]
    assert "data" not in str(manifest), "bundles carry no array payloads"
    assert os.path.exists(os.path.join(bundle, "sdfg.json"))


def test_hang_hits_backstop_and_worker_is_killed(crash_env):
    with WorkerPool(size=1, fault_injection=True) as pool:
        resp = pool.submit(
            scale_job(inject_fault="hang", hang_seconds=60.0),
            timeout=1.0,
        )
        assert resp["status"] == "error"
        assert resp["code"] == "R805"
        stats = pool.stats()
        assert stats["timeouts"] == 1
        assert stats["alive"] == 1, "hung worker replaced"
        assert pool.submit(scale_job())["status"] == "ok"


def test_fault_injection_refused_unless_enabled(crash_env):
    with WorkerPool(size=1, fault_injection=False) as pool:
        resp = pool.submit(scale_job(inject_fault="segv"))
        assert resp["status"] == "error"
        assert resp["code"] == "E202", "injection must be explicitly armed"
        assert pool.stats()["deaths"] == 0


def test_execute_by_unknown_key_yields_e203():
    with WorkerPool(size=1) as pool:
        job = scale_job()
        del job["sdfg"]
        job["program"] = "0" * 64
        resp = pool.submit(job)
        assert resp["status"] == "error"
        assert resp["code"] == "E203"
        assert resp["program"] == "0" * 64


def test_malformed_sdfg_is_a_request_error_not_a_death():
    with WorkerPool(size=1) as pool:
        job = scale_job()
        job["sdfg"] = {"garbage": True}
        resp = pool.submit(job)
        assert resp["status"] == "error"
        assert resp["code"] in ("E202", "E204")
        assert pool.stats()["deaths"] == 0, "bad input must not kill the worker"
        assert pool.submit(scale_job())["status"] == "ok"


def test_unexpected_dispatch_error_does_not_leak_the_worker(monkeypatch):
    """Regression: submit() only caught WorkerDeath/WorkerTimeout, so any
    other exception mid-request (e.g. a NaN deadline reaching select())
    left the checked-out worker handle neither retired nor checked in —
    each such request permanently drained one worker from the pool."""
    from repro.serve.pool import WorkerHandle

    with WorkerPool(size=1) as pool:
        original = WorkerHandle.request

        def boom(self, job, timeout):
            raise RuntimeError("unexpected dispatch bug")

        monkeypatch.setattr(WorkerHandle, "request", boom)
        with pytest.raises(RuntimeError):
            pool.submit(scale_job())
        monkeypatch.setattr(WorkerHandle, "request", original)

        # The handle was retired and replaced — not leaked: the pool
        # still owns a live worker and serves the next request.
        assert pool.stats()["in_flight"] == 0
        assert pool.submit(scale_job())["status"] == "ok"


def test_oversized_response_yields_error_not_worker_death(monkeypatch):
    """Regression: a response exceeding MAX_MESSAGE_BYTES raised out of
    the worker main loop, killing the worker; the supervisor then
    replayed the identical request into an identical death and the
    client saw a misleading retryable E201."""
    import io
    import json

    from repro.serve import worker as worker_mod

    monkeypatch.setattr(protocol, "MAX_MESSAGE_BYTES", 2048)
    out = io.StringIO()
    job = {"op": "execute", "id": 7}
    worker_mod.send_response(out, job, protocol.ok_response(payload="x" * 8192))
    lines = [line for line in out.getvalue().splitlines() if line]
    assert len(lines) == 1, "exactly one (fallback) response on the stream"
    resp = json.loads(lines[0])
    assert resp["status"] == "error"
    assert resp["code"] == "E204"
    assert resp["id"] == 7, "the reply must still correlate to its request"
    assert "frame limit" in resp["message"]

    # Small responses pass through untouched.
    out = io.StringIO()
    worker_mod.send_response(out, job, protocol.ok_response(op="execute"))
    assert json.loads(out.getvalue())["status"] == "ok"


def test_health_check_replaces_dead_idle_workers():
    with WorkerPool(size=2) as pool:
        victim = pool._workers[0]
        victim.proc.kill()
        victim.proc.wait(timeout=5)
        replaced = pool.health_check()
        assert replaced == 1
        assert pool.stats()["alive"] == 2
        assert pool.submit(scale_job())["status"] == "ok"


def test_two_simultaneous_worker_crashes_get_distinct_bundles(crash_env):
    """Satellite regression: both pool workers die at the same moment;
    each crash gets its own intact repro bundle (pid+seq naming)."""
    import threading

    with WorkerPool(size=2, fault_injection=True) as pool:
        bundles = []
        lock = threading.Lock()
        barrier = threading.Barrier(2)

        def crash(tenant):
            barrier.wait()
            resp = pool.submit(scale_job(tenant=tenant, inject_fault="segv",
                                         deadline=10.0))
            with lock:
                bundles.append((tenant, resp.get("code"), resp.get("bundle")))

        threads = [threading.Thread(target=crash, args=(t,))
                   for t in ("alice", "bob")]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=300)

        assert len(bundles) == 2
        for tenant, code, bundle in bundles:
            assert code == "E201"
            assert bundle and os.path.isdir(bundle), (tenant, bundle)
            assert f"serve_{tenant}" in os.path.basename(bundle)
        paths = {b for _, _, b in bundles}
        assert len(paths) == 2, "simultaneous crashes shared a bundle dir"
        assert pool.stats()["alive"] == 2
