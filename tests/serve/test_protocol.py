"""Wire-protocol unit tests: framing, array payloads, validation."""

import io
import json

import numpy as np
import pytest

from repro.serve import protocol
from repro.serve.protocol import ProtocolError


# ---------------------------------------------------------------- arrays
@pytest.mark.parametrize("dtype", ["float64", "float32", "int32", "int64"])
def test_array_round_trip(dtype):
    arr = (np.arange(24).reshape(2, 3, 4) * 1.5).astype(dtype)
    out = protocol.decode_array(protocol.encode_array(arr))
    np.testing.assert_array_equal(out, arr)
    assert out.dtype == arr.dtype
    assert out.flags.writeable, "decoded arrays must be mutable"


def test_scalar_shape_round_trip():
    arr = np.array(3.5)
    out = protocol.decode_array(protocol.encode_array(arr))
    assert out.shape == ()
    assert out == 3.5


def test_noncontiguous_input_encoded_contiguously():
    arr = np.arange(16, dtype=np.float64).reshape(4, 4)[:, ::2]
    out = protocol.decode_array(protocol.encode_array(arr))
    np.testing.assert_array_equal(out, arr)


def test_short_buffer_rejected_not_truncated():
    payload = protocol.encode_array(np.zeros(8))
    payload["shape"] = [16]  # lies about its size
    with pytest.raises(ProtocolError) as exc:
        protocol.decode_array(payload)
    assert exc.value.code == "E202"
    assert "size mismatch" in str(exc.value)


def test_negative_dimension_rejected():
    payload = protocol.encode_array(np.zeros(8))
    payload["shape"] = [-8]
    with pytest.raises(ProtocolError):
        protocol.decode_array(payload)


def test_junk_array_payloads_rejected():
    for junk in (None, 42, [], {"dtype": "float64"},
                 {"dtype": "nope", "shape": [1], "data": ""}):
        with pytest.raises(ProtocolError):
            protocol.decode_array(junk)


def test_symbols_must_be_integers():
    assert protocol.decode_symbols(None) == {}
    assert protocol.decode_symbols({"N": 8, "M": "9"}) == {"N": 8, "M": 9}
    with pytest.raises(ProtocolError):
        protocol.decode_symbols({"N": "eight"})
    with pytest.raises(ProtocolError):
        protocol.decode_symbols([1, 2])


# --------------------------------------------------------------- framing
def test_send_recv_round_trip():
    buf = io.StringIO()
    protocol.send_message(buf, {"op": "ping", "id": 7})
    buf.seek(0)
    assert protocol.recv_message(buf) == {"op": "ping", "id": 7}
    assert protocol.recv_message(buf) is None, "EOF is a clean None"


def test_recv_rejects_non_json_and_non_objects():
    for line in ("not json\n", "[1,2,3]\n", '"str"\n'):
        with pytest.raises(ProtocolError):
            protocol.recv_message(io.StringIO(line))


def test_messages_are_single_lines():
    buf = io.StringIO()
    protocol.send_message(buf, {"text": "with\nnewline"})
    raw = buf.getvalue()
    assert raw.count("\n") == 1 and raw.endswith("\n")
    assert json.loads(raw) == {"text": "with\nnewline"}


# ------------------------------------------------------------ validation
def _req(**kw):
    base = {"op": "execute", "sdfg": {"name": "x"}}
    base.update(kw)
    return base


def test_validate_accepts_minimal_requests():
    assert protocol.validate_request({"op": "ping"})["op"] == "ping"
    assert protocol.validate_request(_req())["op"] == "execute"
    assert protocol.validate_request(_req(sdfg=None, program="abc"))


@pytest.mark.parametrize("bad,fragment", [
    ({"op": "frobnicate"}, "unknown op"),
    ({"op": "execute"}, "needs 'sdfg'"),
    (_req(v=99), "version mismatch"),
    (_req(tenant=""), "invalid tenant"),
    (_req(tenant="x" * 200), "invalid tenant"),
    (_req(tenant=42), "invalid tenant"),
    (_req(sdfg="not-a-dict"), "serialized SDFG"),
    (_req(backend="fortran"), "unknown backend"),
    (_req(deadline=-1), "invalid deadline"),
    (_req(deadline="soon"), "invalid deadline"),
    (_req(deadline=float("nan")), "invalid deadline"),
    (_req(deadline=float("inf")), "invalid deadline"),
    (_req(deadline=float("-inf")), "invalid deadline"),
    (_req(sanitize="maybe"), "invalid sanitize"),
])
def test_validate_rejects_malformed_requests(bad, fragment):
    with pytest.raises(ProtocolError) as exc:
        protocol.validate_request(bad)
    assert exc.value.code == "E202"
    assert fragment in str(exc.value)


def test_nan_deadline_on_the_wire_is_rejected():
    # json.loads accepts bare NaN tokens, and NaN slips through naive
    # `<= 0` checks — a NaN deadline once leaked a pool worker per
    # request (select() rejects NaN timeouts after checkout).
    raw = json.loads('{"op": "execute", "sdfg": {}, "deadline": NaN}')
    with pytest.raises(ProtocolError) as exc:
        protocol.validate_request(raw)
    assert "invalid deadline" in str(exc.value)


def test_response_shapes():
    ok = protocol.ok_response(op="pong")
    assert ok["status"] == "ok" and ok["v"] == protocol.PROTOCOL_VERSION
    err = protocol.error_response("E201", "boom", attempts=2)
    assert err["status"] == "error" and err["code"] == "E201"
    rej = protocol.rejected_response("R807", "open", retry_after=1.25)
    assert rej["status"] == "rejected" and rej["retry_after"] == 1.25
