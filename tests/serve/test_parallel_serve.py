"""Serve-layer integration of the parallel execution tier: request
passthrough, per-artifact pool ownership, LRU-eviction teardown, and —
the CI gate — no worker-pool leak across 50 requests."""

import numpy as np
import pytest

from repro.runtime.parallel import live_pool_count, live_worker_pids
from repro.serve import protocol
from repro.serve.worker import WorkerRuntime
from repro.workloads import kernels


def _matmul_job(n=24, **extra):
    data = kernels.matmul_data(n)
    job = {
        "op": "execute",
        "sdfg": kernels.matmul_sdfg().to_json(),
        "arrays": protocol.encode_arrays(data),
        "symbols": {"M": n, "K": n, "N": n},
    }
    job.update(extra)
    return job, data


class TestParallelRequests:
    def test_parallel_request_is_correct_and_warm_cached(self):
        rt = WorkerRuntime()
        job, data = _matmul_job(parallel=3)
        ref = kernels.matmul_reference(data)
        r1 = rt.handle(dict(job))
        assert r1["status"] == "ok", r1
        out = protocol.decode_arrays(r1["arrays"])
        np.testing.assert_allclose(out["C"], ref, rtol=1e-8, atol=1e-10)
        r2 = rt.handle(dict(job))
        assert r2["warm"] is True

    def test_parallel_and_serial_artifacts_have_distinct_keys(self):
        rt = WorkerRuntime()
        job, _ = _matmul_job()
        rt.handle(dict(job))
        rt.handle(dict(job, parallel=2))
        assert len(rt._programs) == 2

    def test_explicit_off_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", "4")
        rt = WorkerRuntime()
        job, _ = _matmul_job(parallel="off")
        r = rt.handle(dict(job))
        assert r["status"] == "ok"
        compiled = next(iter(rt._programs.values()))
        assert compiled._pool is None

    def test_ping_reports_pool_stats(self):
        rt = WorkerRuntime()
        job, _ = _matmul_job(parallel=2)
        rt.handle(dict(job))
        ping = rt.handle({"op": "ping"})
        assert ping["pools"] >= 1
        assert "pool_workers" in ping
        assert ping["rss_kb"] is None or ping["rss_kb"] > 0


class TestPoolLeakGate:
    def test_no_pool_leak_across_50_requests(self):
        """The CI gate: 50 warm parallel executes reuse ONE pool; the
        live-pool census must not grow with request count."""
        rt = WorkerRuntime()
        job, data = _matmul_job(parallel=3)
        ref = kernels.matmul_reference(data)
        rt.handle(dict(job))
        pools_after_first = live_pool_count()
        for _ in range(50):
            r = rt.handle(dict(job))
            assert r["status"] == "ok"
        assert live_pool_count() == pools_after_first
        out = protocol.decode_arrays(r["arrays"])
        np.testing.assert_allclose(out["C"], ref, rtol=1e-8, atol=1e-10)

    def test_lru_eviction_closes_pools(self):
        from repro.serve import worker as worker_mod

        rt = WorkerRuntime()
        job, _ = _matmul_job(parallel=2)
        before = live_pool_count()
        # Flood the LRU with per-tenant variants of the same program.
        for i in range(worker_mod.MAX_PROGRAMS + 8):
            rt.handle(dict(job, tenant=f"t{i}"))
        assert len(rt._programs) == worker_mod.MAX_PROGRAMS
        assert live_pool_count() - before <= worker_mod.MAX_PROGRAMS

    def test_no_fork_worker_processes_leak(self):
        """Fork-tier requests (spmv) must not leave orphan children
        after their artifacts are torn down."""
        rt = WorkerRuntime()
        data, csr = kernels.spmv_data(32, 4)
        job = {
            "op": "execute",
            "sdfg": kernels.spmv_sdfg().to_json(),
            "arrays": protocol.encode_arrays(data),
            "symbols": {"H": 32, "W": 32, "nnz": csr.nnz},
            "parallel": "fork:2",
        }
        for _ in range(5):
            r = rt.handle(dict(job))
            assert r["status"] == "ok"
        pids_live = set(live_worker_pids())
        # Tear every artifact down the way recycling would.
        for compiled in rt._programs.values():
            compiled.close()
        assert live_worker_pids() == []
        import os

        for pid in pids_live:
            with pytest.raises(ProcessLookupError):
                os.kill(pid, 0)
