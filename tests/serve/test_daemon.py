"""End-to-end daemon tests over a real Unix socket."""

import json
import os
import socket

import numpy as np
import pytest

from repro.runtime.watchdog import RetryPolicy
from repro.serve.admission import TenantPolicy
from repro.serve.client import ServeClient, ServeError
from repro.serve.daemon import SDFGServer, ServeConfig
from repro.serve.loadtest import scale_sdfg


@pytest.fixture
def server(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CRASH_DIR", str(tmp_path / "crashes"))
    cfg = ServeConfig(
        socket_path=str(tmp_path / "serve.sock"),
        workers=2,
        cache_root=str(tmp_path / "cache"),
        fault_injection=True,
        default_policy=TenantPolicy(breaker_threshold=3, breaker_cooldown=0.5,
                                    deadline_cap=20.0),
        retry=RetryPolicy(retries=1, backoff=0.01, jitter=0.5),
        health_interval=600.0,
    )
    with SDFGServer(cfg) as srv:
        yield srv


def client(server, tenant="default"):
    return ServeClient(socket_path=server.config.socket_path, tenant=tenant)


def test_ping_and_stats(server):
    with client(server) as c:
        pong = c.ping()
        assert pong["status"] == "ok" and pong["op"] == "pong"
        stats = c.stats()
        assert stats["status"] == "ok"
        assert stats["pool"]["size"] == 2
        assert stats["requests"]["total"] >= 1


def test_compile_then_execute_round_trip(server):
    sdfg = scale_sdfg(2.0)
    with client(server, tenant="alice") as c:
        compiled = c.compile(sdfg)
        assert compiled["status"] == "ok"
        assert len(compiled["program"]) == 64, "content hash is the key"

        a = np.arange(16, dtype=np.float64)
        out = c.execute(sdfg, arrays={"A": a}, symbols={"N": 16})
        assert out["status"] == "ok"
        np.testing.assert_allclose(out["arrays"]["A"], a * 2.0)
        assert out["tenant"] == "alice"


def test_execute_by_key_resends_on_e203(server):
    """A key-only execute that misses (worker respawned, or landed on
    the other worker) is transparently resent with the SDFG body."""
    sdfg = scale_sdfg(2.0)
    with client(server, tenant="alice") as c:
        program = c.compile(sdfg)["program"]
        a = np.arange(8, dtype=np.float64)
        # Drive enough key-based executes to hit both pool workers.
        for _ in range(4):
            out = c.execute(sdfg=sdfg, program=program, arrays={"A": a.copy()},
                            symbols={"N": 8})
            assert out["status"] == "ok"


def test_malformed_requests_get_e202_connection_survives(server):
    with client(server) as c:
        resp = c.request({"op": "frobnicate"})
        assert resp["status"] == "error" and resp["code"] == "E202"
        resp = c.request({"op": "execute"})  # no sdfg/program
        assert resp["code"] == "E202"
        # Raw junk on the wire: the daemon answers and keeps the line open.
        c._stream.write("this is not json\n")
        c._stream.flush()
        import repro.serve.protocol as protocol

        resp = protocol.recv_message(c._stream)
        assert resp["code"] == "E202"
        assert c.ping()["status"] == "ok", "connection still usable"


def test_strict_client_raises_serve_error(server):
    with client(server) as c:
        with pytest.raises(ServeError) as exc:
            c.execute(scale_sdfg(2.0), arrays={}, symbols={"N": 4},
                      inject_fault="segv", deadline=10.0)
        assert exc.value.code == "E201"


def test_tenant_caches_are_isolated_on_disk(server):
    sdfg = scale_sdfg(5.0, name="tenant_iso")
    a = np.arange(4, dtype=np.float64)
    with client(server, tenant="alice") as c:
        c.execute(sdfg, arrays={"A": a.copy()}, symbols={"N": 4})
    with client(server, tenant="bob") as c:
        c.execute(sdfg, arrays={"A": a.copy()}, symbols={"N": 4})
    from repro.codegen.progcache import safe_namespace

    root = server.config.cache_root
    alice_dir = os.path.join(root, safe_namespace("alice"))
    bob_dir = os.path.join(root, safe_namespace("bob"))
    assert os.path.isdir(alice_dir)
    assert os.path.isdir(bob_dir)
    # Same program, namespaced keys: no entry file is shared.
    alice = {f for f in os.listdir(alice_dir) if f.endswith(".json")}
    bob = {f for f in os.listdir(bob_dir) if f.endswith(".json")}
    assert alice and bob


def test_daemon_survives_worker_segfault_and_stays_warm(server):
    sdfg = scale_sdfg(2.0)
    a = np.arange(8, dtype=np.float64)
    with client(server, tenant="alice") as c:
        assert c.execute(sdfg, arrays={"A": a.copy()}, symbols={"N": 8})["status"] == "ok"
    with client(server, tenant="mallory") as c:
        resp = c.execute(scale_sdfg(3.0), arrays={}, symbols={"N": 4},
                         inject_fault="segv", deadline=10.0, strict=False)
        assert resp["status"] == "error" and resp["code"] == "E201"
    with client(server, tenant="alice") as c:
        out = c.execute(sdfg, arrays={"A": a.copy()}, symbols={"N": 8})
        assert out["status"] == "ok"
        np.testing.assert_allclose(out["arrays"]["A"], a * 2.0)
    assert server.pool.stats()["alive"] == 2


def test_concurrent_clients_multiplex_one_daemon(server):
    import threading

    sdfg = scale_sdfg(2.0)
    errors = []

    def hammer(tenant):
        try:
            with client(server, tenant=tenant) as c:
                for _ in range(5):
                    a = np.arange(8, dtype=np.float64)
                    out = c.execute(sdfg, arrays={"A": a}, symbols={"N": 8})
                    assert out["status"] == "ok", out
                    np.testing.assert_allclose(out["arrays"]["A"],
                                               np.arange(8) * 2.0)
        except Exception as err:  # noqa: BLE001
            errors.append(f"{tenant}: {err}")

    threads = [threading.Thread(target=hammer, args=(t,))
               for t in ("alice", "bob", "carol")]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
    assert not errors, errors


def test_shutdown_op_stops_the_daemon(tmp_path):
    cfg = ServeConfig(socket_path=str(tmp_path / "s.sock"), workers=1)
    srv = SDFGServer(cfg).start()
    try:
        with ServeClient(socket_path=cfg.socket_path) as c:
            assert c.shutdown()["status"] == "ok"
        srv._stop.wait(timeout=10)
        assert srv._stop.is_set()
    finally:
        srv.stop()


def test_shutdown_op_can_be_disabled(tmp_path):
    cfg = ServeConfig(socket_path=str(tmp_path / "s.sock"), workers=1,
                      allow_shutdown=False)
    with SDFGServer(cfg) as srv:
        with ServeClient(socket_path=cfg.socket_path) as c:
            resp = c.shutdown()
            assert resp["status"] == "error" and resp["code"] == "E202"
            assert c.ping()["status"] == "ok"
        assert not srv._stop.is_set()


def test_tcp_transport(tmp_path):
    cfg = ServeConfig(tcp=("127.0.0.1", 0), workers=1)
    with SDFGServer(cfg) as srv:
        host, port = srv.address[0], srv.address[1]
        with ServeClient(tcp=(host, port)) as c:
            assert c.ping()["status"] == "ok"
            a = np.arange(4, dtype=np.float64)
            out = c.execute(scale_sdfg(2.0), arrays={"A": a}, symbols={"N": 4})
            np.testing.assert_allclose(out["arrays"]["A"], a * 2.0)
