"""The acceptance scenario from the issue: three tenants share one
daemon (pool of 2) — one segfaults every request, one blows deadlines,
one is healthy.  The healthy tenant must see zero failed requests, the
crashing tenant's breaker must open and later close via a half-open
probe, and the daemon must never exit."""

import threading
import time

import numpy as np
import pytest

from repro.runtime.watchdog import RetryPolicy
from repro.serve.admission import TenantPolicy
from repro.serve.client import ServeClient
from repro.serve.daemon import SDFGServer, ServeConfig
from repro.serve.loadtest import runaway_sdfg, scale_sdfg

BREAKER_THRESHOLD = 3
BREAKER_COOLDOWN = 1.5


@pytest.fixture
def server(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CRASH_DIR", str(tmp_path / "crashes"))
    cfg = ServeConfig(
        socket_path=str(tmp_path / "serve.sock"),
        workers=2,
        fault_injection=True,
        default_policy=TenantPolicy(
            breaker_threshold=BREAKER_THRESHOLD,
            breaker_cooldown=BREAKER_COOLDOWN,
            deadline_cap=20.0,
        ),
        retry=RetryPolicy(retries=1, backoff=0.01, jitter=0.5),
        health_interval=600.0,
    )
    with SDFGServer(cfg) as srv:
        yield srv


def test_noisy_tenants_cannot_hurt_a_healthy_one(server):
    sock = server.config.socket_path
    healthy_results = []
    noisy_results = {"mallory": [], "slowpoke": []}
    failures = []

    def healthy(n_requests=12):
        sdfg = scale_sdfg(2.0, name="healthy_kernel")
        try:
            with ServeClient(socket_path=sock, tenant="alice") as c:
                for _ in range(n_requests):
                    a = np.arange(16, dtype=np.float64)
                    out = c.execute(sdfg, arrays={"A": a}, symbols={"N": 16},
                                    strict=False, deadline=15.0)
                    healthy_results.append(
                        (out.get("status"), out.get("code"))
                    )
                    if out.get("status") != "ok":
                        failures.append(f"healthy request failed: {out}")
                    elif not np.allclose(out["arrays"]["A"],
                                         np.arange(16) * 2.0):
                        failures.append("healthy request returned wrong data")
        except Exception as err:  # noqa: BLE001
            failures.append(f"healthy client died: {err}")

    def crasher(n_requests=5):
        sdfg = scale_sdfg(3.0, name="crash_kernel")
        try:
            with ServeClient(socket_path=sock, tenant="mallory") as c:
                for _ in range(n_requests):
                    out = c.execute(sdfg, arrays={}, symbols={"N": 4},
                                    inject_fault="segv", strict=False,
                                    deadline=10.0)
                    noisy_results["mallory"].append(
                        (out.get("status"), out.get("code"))
                    )
                    if out.get("status") == "ok":
                        failures.append("injected segfault reported ok")
        except Exception as err:  # noqa: BLE001
            failures.append(f"crashing client died: {err}")

    def slow(n_requests=2):
        sdfg = runaway_sdfg()
        try:
            with ServeClient(socket_path=sock, tenant="slowpoke") as c:
                for _ in range(n_requests):
                    out = c.execute(sdfg, arrays={"A": np.zeros(4)},
                                    symbols={"N": 4}, deadline=0.5,
                                    strict=False)
                    noisy_results["slowpoke"].append(
                        (out.get("status"), out.get("code"))
                    )
                    if out.get("status") == "ok":
                        failures.append("runaway loop reported ok")
        except Exception as err:  # noqa: BLE001
            failures.append(f"slow client died: {err}")

    threads = [
        threading.Thread(target=healthy),
        threading.Thread(target=crasher),
        threading.Thread(target=slow),
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=300)
        assert not t.is_alive(), "a driver thread hung"

    assert not failures, failures

    # Every healthy request succeeded — that is the whole point.
    assert len(healthy_results) == 12
    assert all(status == "ok" for status, _ in healthy_results)

    # The noisy tenants got structured errors, then fast rejections.
    mallory_codes = [code for _, code in noisy_results["mallory"]]
    assert "E201" in mallory_codes, "contained worker death surfaced"
    slow_codes = [code for _, code in noisy_results["slowpoke"]]
    assert all(c in ("R805", "R807") for c in slow_codes), slow_codes

    # Mallory's breaker opened (E201 strikes >= threshold, or rejections
    # prove it opened mid-run).
    state = server.admission.breakers.state("mallory")
    assert state in ("open", "half_open") or "R807" in mallory_codes

    # The daemon never exited: pool is intact and serving.
    stats = server.pool.stats()
    assert stats["alive"] == 2
    assert stats["deaths"] >= 2, "the crashes really did kill workers"
    with ServeClient(socket_path=sock, tenant="alice") as c:
        assert c.ping()["status"] == "ok"


def test_breaker_recovers_via_half_open_probe(server):
    """After the cooldown the first request is admitted as the single
    half-open probe; a healthy probe closes the breaker for good."""
    sock = server.config.socket_path
    crash = scale_sdfg(3.0, name="crash_kernel")
    good = scale_sdfg(2.0, name="recovery_kernel")

    with ServeClient(socket_path=sock, tenant="mallory") as c:
        for _ in range(BREAKER_THRESHOLD):
            out = c.execute(crash, arrays={}, symbols={"N": 4},
                            inject_fault="segv", strict=False, deadline=10.0)
            assert out["code"] == "E201", out
        assert server.admission.breakers.state("mallory") == "open"

        # While open: fast rejection, no worker consumed.
        deaths_before = server.pool.stats()["deaths"]
        out = c.execute(crash, arrays={}, symbols={"N": 4},
                        inject_fault="segv", strict=False, deadline=10.0)
        assert out["status"] == "rejected" and out["code"] == "R807"
        assert out["retry_after"] > 0
        assert server.pool.stats()["deaths"] == deaths_before

        time.sleep(BREAKER_COOLDOWN + 0.2)

        # The probe: a now-healthy request closes the breaker.
        a = np.arange(8, dtype=np.float64)
        out = c.execute(good, arrays={"A": a}, symbols={"N": 8},
                        strict=False, deadline=15.0)
        assert out["status"] == "ok", out
        assert server.admission.breakers.state("mallory") == "closed"

        # Fully recovered: subsequent requests flow normally.
        out = c.execute(good, arrays={"A": a}, symbols={"N": 8},
                        strict=False, deadline=15.0)
        assert out["status"] == "ok"

    # Breaker transitions were mirrored onto the instrumentation bus.
    transitions = [tuple(t) for t in server.admission.breakers.transitions]
    assert ("mallory", "closed", "open") in transitions
    assert ("mallory", "open", "half_open") in transitions
    assert ("mallory", "half_open", "closed") in transitions
