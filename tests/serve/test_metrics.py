"""The ``metrics`` endpoint end-to-end: worker telemetry propagated to
the daemon's sink, aggregated, and served over the socket."""

import numpy as np
import pytest

from repro.runtime.watchdog import RetryPolicy
from repro.serve.admission import TenantPolicy
from repro.serve.client import ServeClient
from repro.serve.daemon import SDFGServer, ServeConfig
from repro.serve.loadtest import scale_sdfg
from repro.telemetry.__main__ import fetch_snapshot, render_dashboard
from repro.telemetry.aggregate import merge_cache_counters, merge_tenant_counters


def make_config(tmp_path, **overrides):
    defaults = dict(
        socket_path=str(tmp_path / "serve.sock"),
        workers=1,
        cache_root=str(tmp_path / "cache"),
        default_policy=TenantPolicy(breaker_threshold=2,
                                    breaker_cooldown=0.5),
        retry=RetryPolicy(retries=1, backoff=0.01, jitter=0.0),
        health_interval=600.0,
        telemetry_window=3600.0,
    )
    defaults.update(overrides)
    return ServeConfig(**defaults)


@pytest.fixture
def server(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CRASH_DIR", str(tmp_path / "crashes"))
    with SDFGServer(make_config(tmp_path)) as srv:
        yield srv


def drive_traffic(server, tenant="alice", n=6):
    sdfg = scale_sdfg(2.0, name="metrics_kernel")
    a = np.arange(8, dtype=np.float64)
    with ServeClient(socket_path=server.config.socket_path,
                     tenant=tenant) as c:
        for _ in range(n):
            out = c.execute(sdfg, arrays={"A": a.copy()}, symbols={"N": 8})
            assert out["status"] == "ok"


def test_metrics_reports_worker_kernels_and_tenants(server):
    drive_traffic(server, tenant="alice", n=6)
    with ServeClient(socket_path=server.config.socket_path) as c:
        response = c.metrics()
    assert response["status"] == "ok" and response["op"] == "metrics"
    snap = response["metrics"]

    # Kernel timings crossed the worker→supervisor boundary: the worker
    # measured them in its own process, the daemon aggregated them.
    kernel = snap["kernels"]["metrics_kernel"]
    assert kernel["count"] == 6
    assert kernel["warm"] == 5 and kernel["cold"] == 1
    assert 0 < kernel["p50"] <= kernel["p95"] <= kernel["p99"]

    tenants = merge_tenant_counters(snap)
    assert tenants["alice"]["requests"] == 6
    assert tenants["alice"]["ok"] == 6
    assert tenants["alice"]["errors"] == 0

    # The worker's artifact LRU hits are visible fleet-wide.
    caches = merge_cache_counters(snap)
    assert caches["artifacts"]["hit"] == 5
    assert caches["artifacts"]["miss"] == 1
    assert caches["artifacts"]["hit_rate"] == pytest.approx(5 / 6)

    assert isinstance(snap["breaker_states"], dict)
    assert snap["totals"]["events"] > 0

    # The daemon's stats() surfaces the sink's health too.
    with ServeClient(socket_path=server.config.socket_path) as c:
        stats = c.stats()
    assert stats["telemetry"]["published"] > 0


def test_metrics_snapshot_renders_and_fetches(server):
    drive_traffic(server, n=3)
    snap = fetch_snapshot(server.config.socket_path)
    text = render_dashboard(snap)
    assert "metrics_kernel" in text and "alice" in text


def test_breaker_state_appears_in_metrics(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CRASH_DIR", str(tmp_path / "crashes"))
    cfg = make_config(tmp_path, fault_injection=True,
                      retry=RetryPolicy(retries=0, backoff=0.01, jitter=0.0))
    with SDFGServer(cfg) as server:
        sdfg = scale_sdfg(2.0, name="killer")
        a = np.arange(4, dtype=np.float64)
        with ServeClient(socket_path=server.config.socket_path,
                         tenant="mallory") as c:
            for _ in range(2):  # breaker_threshold=2 worker kills
                resp = c.execute(sdfg, arrays={"A": a.copy()},
                                 symbols={"N": 4}, strict=False,
                                 inject_fault="segv")
                assert resp["status"] == "error"
            snap = c.metrics()["metrics"]
        assert snap["breaker_states"].get("mallory") == "open"
        transitions = [
            t for w in snap["windows"] for t in w["breaker_transitions"]
        ]
        assert any(t[1] == "mallory" and t[3] == "open" for t in transitions)
        # Rejected requests while open are charged to the tenant.
        with ServeClient(socket_path=server.config.socket_path,
                         tenant="mallory") as c:
            resp = c.execute(sdfg, arrays={"A": a.copy()}, symbols={"N": 4},
                             strict=False)
            assert resp.get("code") == "R807"
            snap = c.metrics()["metrics"]
        assert merge_tenant_counters(snap)["mallory"]["rejected"] >= 1


def test_metrics_disabled_returns_structured_error(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CRASH_DIR", str(tmp_path / "crashes"))
    with SDFGServer(make_config(tmp_path, telemetry=False)) as server:
        with ServeClient(socket_path=server.config.socket_path) as c:
            response = c.metrics()
            assert response["status"] == "error"
            assert response["code"] == "E202"
            assert "telemetry" in response["message"]
            # The connection survives and other ops still work.
            assert c.ping()["status"] == "ok"
        with ServeClient(socket_path=server.config.socket_path) as c:
            assert c.stats()["telemetry"] is None
        with pytest.raises(RuntimeError, match="telemetry is disabled"):
            fetch_snapshot(server.config.socket_path)
