"""Admission-control gates (R806/R807/R808) and load shedding (W801)."""

import time

import pytest

from repro.instrumentation import InstrumentationRecorder
from repro.serve.admission import (
    AdmissionController,
    AdmissionError,
    LoadShedder,
    TenantPolicy,
)


def controller(**policy_kw):
    policy_kw.setdefault("breaker_cooldown", 0.2)
    return AdmissionController(default_policy=TenantPolicy(**policy_kw))


# --------------------------------------------------------- in-flight cap
def test_inflight_cap_rejects_r806_and_recovers():
    ctrl = controller(max_inflight=2)
    t1 = ctrl.admit("alice")
    t2 = ctrl.admit("alice")
    with pytest.raises(AdmissionError) as exc:
        ctrl.admit("alice")
    assert exc.value.code == "R806"
    assert exc.value.retry_after is not None

    # Other tenants have their own cap.
    ctrl.admit("bob").complete()

    t1.complete()
    t2.complete()
    ctrl.admit("alice").complete()  # slot freed


def test_ticket_complete_is_idempotent():
    ctrl = controller(max_inflight=1)
    ticket = ctrl.admit("alice")
    ticket.complete()
    ticket.complete()
    ticket.complete()
    stats = ctrl.stats()["tenants"]["alice"]
    assert stats["inflight"] == 0
    assert stats["ok"] == 1, "double settle must not double count"


# ------------------------------------------------------- circuit breaker
def test_breaker_opens_on_contained_failures_and_rejects_r807():
    ctrl = controller(breaker_threshold=3)
    for _ in range(3):
        ctrl.admit("mallory").complete(failure_code="E201")
    with pytest.raises(AdmissionError) as exc:
        ctrl.admit("mallory")
    assert exc.value.code == "R807"
    assert exc.value.retry_after is not None and exc.value.retry_after > 0
    # A different tenant is untouched by mallory's breaker.
    ctrl.admit("alice").complete()


def test_breaker_half_open_probe_closes_on_success():
    ctrl = controller(breaker_threshold=2, breaker_cooldown=0.1)
    for _ in range(2):
        ctrl.admit("mallory").complete(failure_code="E201")
    with pytest.raises(AdmissionError):
        ctrl.admit("mallory")
    time.sleep(0.15)
    probe = ctrl.admit("mallory")  # the single half-open probe
    assert ctrl.breakers.state("mallory") == "half_open"
    probe.complete(cost_seconds=0.01)  # success
    assert ctrl.breakers.state("mallory") == "closed"
    ctrl.admit("mallory").complete()


def test_breaker_half_open_probe_failure_reopens():
    ctrl = controller(breaker_threshold=2, breaker_cooldown=0.1)
    for _ in range(2):
        ctrl.admit("mallory").complete(failure_code="E201")
    time.sleep(0.15)
    probe = ctrl.admit("mallory")
    probe.complete(failure_code="R805")
    assert ctrl.breakers.state("mallory") == "open"
    with pytest.raises(AdmissionError) as exc:
        ctrl.admit("mallory")
    assert exc.value.code == "R807"


def test_half_open_probe_rolled_back_when_inflight_cap_rejects():
    """A probe rejected by a later gate must not strand the breaker.

    Regression: the breaker gate admitted one caller as the half-open
    probe, but when gate 2 (in-flight cap) then rejected that same
    request no Ticket existed to settle it — the breaker stayed
    HALF_OPEN with a phantom probe forever and the tenant was rejected
    with R807 (retry_after=0) even after becoming healthy.
    """
    ctrl = controller(max_inflight=1, breaker_threshold=1,
                      breaker_cooldown=0.05)
    held = ctrl.admit("m")  # occupies the tenant's only in-flight slot
    # A concurrent request's failure opens the breaker underneath it.
    ctrl.breakers.record_failure("m", code="E201")
    assert ctrl.breakers.state("m") == "open"

    time.sleep(0.08)  # cooldown elapses while `held` is still in flight
    with pytest.raises(AdmissionError) as exc:
        ctrl.admit("m")  # admitted by gate 1 as probe, bounced by gate 2
    assert exc.value.code == "R806"
    assert ctrl.breakers.state("m") == "open", \
        "the rejected probe must be rolled back, not stranded half-open"

    # The rollback leaves the cooldown already elapsed: as soon as the
    # slot frees, the tenant is immediately probed again.
    held.complete(failure_code="E201")
    probe = ctrl.admit("m")
    assert ctrl.breakers.state("m") == "half_open"
    probe.complete(cost_seconds=0.01)
    assert ctrl.breakers.state("m") == "closed"


def test_half_open_probe_rolled_back_when_budget_gate_rejects():
    """Same leak through gate 3: breaker-opening failures also charge
    the budget, so the probe can plausibly be rejected with R808."""
    ctrl = controller(breaker_threshold=1, breaker_cooldown=0.05,
                      budget_seconds=0.1, budget_window=10.0)
    ctrl.admit("m").complete(cost_seconds=5.0, failure_code="E201")
    assert ctrl.breakers.state("m") == "open"
    time.sleep(0.08)
    # Cooldown elapsed: this request passes gate 1 as the probe but is
    # rejected by gate 3 (the 5s spend blew the 0.1s budget).
    with pytest.raises(AdmissionError) as exc:
        ctrl.admit("m")
    assert exc.value.code == "R808"
    assert ctrl.breakers.state("m") == "open", \
        "the rejected probe must be rolled back, not stranded half-open"
    # Once the budget clears, the tenant is re-probed — not R807-locked.
    ctrl._tenants["m"].spend.clear()
    probe = ctrl.admit("m")
    assert ctrl.breakers.state("m") == "half_open"
    probe.complete(cost_seconds=0.01)
    assert ctrl.breakers.state("m") == "closed"


def test_per_tenant_breaker_policy_is_honored():
    """Regression: TenantPolicy.breaker_threshold/cooldown in `policies`
    were silently ignored (the registry only saw the default policy)."""
    ctrl = AdmissionController(
        default_policy=TenantPolicy(breaker_threshold=5,
                                    breaker_cooldown=60.0),
        policies={"fragile": TenantPolicy(breaker_threshold=1,
                                          breaker_cooldown=0.05)},
    )
    # The fragile tenant opens after a single failure...
    ctrl.admit("fragile").complete(failure_code="E201")
    assert ctrl.breakers.state("fragile") == "open"
    # ... and its short per-tenant cooldown (not the 60s default)
    # governs when the probe is re-admitted.
    assert ctrl.breakers.cooldown_remaining("fragile") <= 0.05
    time.sleep(0.08)
    probe = ctrl.admit("fragile")
    assert ctrl.breakers.state("fragile") == "half_open"
    probe.complete()
    # A default-policy tenant still needs 5 strikes.
    for _ in range(4):
        ctrl.admit("normal").complete(failure_code="E201")
    assert ctrl.breakers.state("normal") == "closed"
    ctrl.admit("normal").complete(failure_code="E201")
    assert ctrl.breakers.state("normal") == "open"


def test_validation_failures_do_not_charge_the_breaker():
    ctrl = controller(breaker_threshold=2)
    for _ in range(5):
        ctrl.admit("clumsy").complete(failure_code="V202")
    ctrl.admit("clumsy").complete()  # still admitted
    assert ctrl.breakers.state("clumsy") == "closed"


# ------------------------------------------------------- deadline budget
def test_rolling_budget_rejects_r808_until_window_expires():
    ctrl = controller(budget_seconds=0.1, budget_window=0.4)
    ctrl.admit("hog").complete(cost_seconds=0.15)  # blows the budget
    with pytest.raises(AdmissionError) as exc:
        ctrl.admit("hog")
    assert exc.value.code == "R808"
    assert 0.0 <= exc.value.retry_after <= 0.4
    # Light tenants are unaffected.
    ctrl.admit("alice").complete(cost_seconds=0.01)
    # The window rolls over and the hog is welcome again.
    time.sleep(0.45)
    ctrl.admit("hog").complete(cost_seconds=0.01)


def test_budget_unlimited_by_default():
    ctrl = controller()
    for _ in range(10):
        ctrl.admit("heavy").complete(cost_seconds=100.0)
    ctrl.admit("heavy").complete()


# ------------------------------------------------------- deadline clamp
def test_clamp_deadline():
    ctrl = AdmissionController(default_policy=TenantPolicy(deadline_cap=5.0))
    assert ctrl.clamp_deadline("t", None) == 5.0, "cap is the default"
    assert ctrl.clamp_deadline("t", 2.0) == 2.0
    assert ctrl.clamp_deadline("t", 50.0) == 5.0, "requests cannot exceed the cap"
    uncapped = AdmissionController(default_policy=TenantPolicy(deadline_cap=None))
    assert uncapped.clamp_deadline("t", None) is None
    assert uncapped.clamp_deadline("t", 50.0) == 50.0


def test_per_tenant_policy_overrides_default():
    ctrl = AdmissionController(
        default_policy=TenantPolicy(max_inflight=8),
        policies={"cheap": TenantPolicy(max_inflight=1)},
    )
    ctrl.admit("cheap")
    with pytest.raises(AdmissionError):
        ctrl.admit("cheap")
    for _ in range(8):
        ctrl.admit("normal")


# ------------------------------------------------------------- shedding
def test_shed_levels_track_pressure():
    shedder = LoadShedder(capacity=2)
    assert shedder.level() == 0
    for _ in range(2):
        shedder.enter()
    assert shedder.level() == 0, "at capacity is still full service"
    shedder.enter()
    assert shedder.level() == 1
    for _ in range(2):
        shedder.enter()
    assert shedder.level() == 2
    for _ in range(2):
        shedder.enter()
    assert shedder.level() == 3
    for _ in range(7):
        shedder.exit()
    assert shedder.level() == 0, "recovers the moment load drops"


def test_shed_strips_options_in_documented_order():
    shedder = LoadShedder(capacity=1)
    job = {"backend": "cpp", "sanitize": "collect", "profile": True}

    shedder.enter()
    out, shed = shedder.apply(dict(job))
    assert shed == [], "no shedding at full service"

    shedder.enter()  # level 1
    out, shed = shedder.apply(dict(job))
    assert "sanitize" in shed and "profile" in shed
    assert out["backend"] == "cpp", "level 1 keeps the backend"

    shedder.enter()  # level 2
    out, shed = shedder.apply(dict(job))
    assert out["backend"] == "python"
    assert "backend:cpp->python" in shed

    shedder.enter()  # level 3
    out, shed = shedder.apply(dict(job))
    assert out["backend"] == "interpreter"


def test_shed_does_not_mutate_the_original_job():
    shedder = LoadShedder(capacity=1)
    for _ in range(4):
        shedder.enter()
    job = {"backend": "cpp", "sanitize": "raise"}
    out, shed = shedder.apply(job)
    assert job == {"backend": "cpp", "sanitize": "raise"}
    assert out is not job


# ------------------------------------------------------ instrumentation
def test_admission_emits_serve_and_breaker_events():
    recorder = InstrumentationRecorder()
    ctrl = AdmissionController(
        default_policy=TenantPolicy(breaker_threshold=1, breaker_cooldown=60.0),
        recorder=recorder,
    )
    ctrl.admit("mallory").complete(failure_code="E201")
    with pytest.raises(AdmissionError):
        ctrl.admit("mallory")
    labels = set(recorder.root.children.keys())
    assert ("serve", "admit[mallory]") in labels
    assert ("serve", "failure[mallory]:E201") in labels
    assert ("breaker", "mallory:closed->open") in labels
    assert ("serve", "reject[mallory]:R807") in labels
