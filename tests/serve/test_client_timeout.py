"""Client-side socket deadlines: a wedged daemon surfaces as a
retryable ``E205`` instead of blocking the caller forever."""

import pytest

from repro.chaos import FaultPlan, install_plan, uninstall_engine
from repro.serve.client import ServeClient, ServeError, ServeTimeout
from repro.serve.daemon import SDFGServer, ServeConfig


@pytest.fixture
def server(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CRASH_DIR", str(tmp_path / "crashes"))
    cfg = ServeConfig(
        socket_path=str(tmp_path / "serve.sock"),
        workers=1,
        health_interval=600.0,
    )
    with SDFGServer(cfg) as srv:
        yield srv
    uninstall_engine()


def test_read_timeout_raises_retryable_e205(server):
    # Wedge the daemon's response path (in-process: the daemon shares
    # our interpreter, so install_plan reaches it).
    install_plan(FaultPlan.parse("daemon.frame_write:delay@p=1,ms=2000"))
    with ServeClient(socket_path=server.config.socket_path,
                     read_timeout=0.3) as c:
        with pytest.raises(ServeTimeout) as exc:
            c.ping()
    err = exc.value
    assert isinstance(err, ServeError)
    assert err.code == "E205"
    assert err.response["retryable"] is True
    assert "deadline" in str(err)


def test_timed_out_connection_is_unusable(server):
    install_plan(FaultPlan.parse("daemon.frame_write:delay@p=1,ms=2000"))
    c = ServeClient(socket_path=server.config.socket_path, read_timeout=0.3)
    try:
        with pytest.raises(ServeTimeout):
            c.ping()
        # A late response would pair with the next request; the client
        # refuses to reuse the socket.
        with pytest.raises(ConnectionError, match="E205"):
            c.ping()
    finally:
        c.close()


def test_no_read_timeout_by_default(server):
    """The deadline is opt-in: default clients block until the daemon
    answers (here: normally, without any delay installed)."""
    with ServeClient(socket_path=server.config.socket_path) as c:
        assert c._sock.gettimeout() is None
        assert c.ping()["status"] == "ok"
