"""Stream container runtime: FIFO semantics and the structured E101
out-of-bounds diagnostic that replaced the raw ``IndexError``."""

import pytest

from repro.runtime.streams import StreamArray, StreamError, StreamQueue


# ------------------------------------------------------------ StreamQueue
def test_queue_fifo_roundtrip():
    q = StreamQueue()
    q.push(1, 2)
    q.append(3)
    assert len(q) == 3 and bool(q)
    assert [q.pop(), q.read(), q.pop()] == [1, 2, 3]
    assert not q


def test_queue_capacity_overflow():
    q = StreamQueue(capacity=2)
    q.push(1, 2)
    with pytest.raises(RuntimeError, match="overflow"):
        q.push(3)


def test_queue_pop_empty():
    with pytest.raises(RuntimeError, match="empty"):
        StreamQueue().pop()


# ------------------------------------------------------------ StreamArray
def test_array_indexing_and_flattening():
    arr = StreamArray((2, 3))
    arr[1, 2].push(42)
    assert arr.queues[5].pop() == 42
    arr2 = StreamArray((4,))
    arr2[3].push(1)  # scalar index for rank-1 streams
    assert arr2.total_elements() == 1 and arr2.any_nonempty()


def test_oob_raises_structured_e101():
    arr = StreamArray((2, 3), name="S", location=("prog", "state0"))
    with pytest.raises(StreamError) as exc:
        arr[1, 3]
    err = exc.value
    assert err.code == "E101"
    assert err.diagnostic.data == "S"
    assert err.diagnostic.sdfg == "prog"
    assert err.diagnostic.state == "state0"
    assert "dimension 1" in str(err)
    assert "3 not in [0, 3)" in str(err)


def test_negative_index_rejected_not_wrapped():
    """Flattened stream addressing must not silently alias another
    queue, so negative indices are E101 rather than python wraparound."""
    arr = StreamArray((2, 3), name="S")
    with pytest.raises(StreamError, match="-1 not in"):
        arr[1, -1]


def test_rank_mismatch_is_e101():
    arr = StreamArray((2, 3), name="S")
    with pytest.raises(StreamError, match="2 dimensions"):
        arr[1]
    with pytest.raises(StreamError, match="shape"):
        arr[1, 1, 1]


def test_stream_error_is_catchable_as_index_error():
    """Pre-existing ``except IndexError`` call sites keep working."""
    arr = StreamArray((2,))
    with pytest.raises(IndexError):
        arr[5]


def test_anonymous_stream_has_usable_message():
    arr = StreamArray((2,))  # no name/location provenance
    with pytest.raises(StreamError, match="stream 'stream'"):
        arr[2]
