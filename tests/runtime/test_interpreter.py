"""Tests for the reference interpreter (operational semantics, App. A)."""

import numpy as np
import pytest

from repro.runtime import SDFGInterpreter, StreamQueue
from repro.runtime.arguments import ArgumentError, infer_symbols, split_arguments
from repro.sdfg import SDFG, InterstateEdge, Memlet, dtypes


def vadd():
    sdfg = SDFG("vadd")
    sdfg.add_array("A", ("N",), dtypes.float64)
    sdfg.add_array("B", ("N",), dtypes.float64)
    sdfg.add_array("C", ("N",), dtypes.float64)
    st = sdfg.add_state("main")
    st.add_mapped_tasklet(
        "add",
        {"i": "0:N"},
        inputs={"a": Memlet.simple("A", "i"), "b": Memlet.simple("B", "i")},
        code="c = a + b",
        outputs={"c": Memlet.simple("C", "i")},
    )
    return sdfg


class TestBasicExecution:
    def test_vadd(self):
        A, B, C = np.random.rand(16), np.random.rand(16), np.zeros(16)
        SDFGInterpreter(vadd())(A=A, B=B, C=C)
        assert np.allclose(C, A + B)

    def test_symbol_inference_from_shape(self):
        # N inferred from array shapes, not passed.
        A, B, C = np.random.rand(7), np.random.rand(7), np.zeros(7)
        SDFGInterpreter(vadd())(A=A, B=B, C=C)
        assert np.allclose(C, A + B)

    def test_missing_argument_raises(self):
        with pytest.raises(ArgumentError):
            SDFGInterpreter(vadd())(A=np.zeros(4), B=np.zeros(4))

    def test_dtype_mismatch_raises(self):
        with pytest.raises(ArgumentError):
            SDFGInterpreter(vadd())(
                A=np.zeros(4, np.float32), B=np.zeros(4), C=np.zeros(4)
            )

    def test_inconsistent_shapes_raise(self):
        with pytest.raises(ArgumentError):
            SDFGInterpreter(vadd())(A=np.zeros(4), B=np.zeros(5), C=np.zeros(4))

    def test_wcr_sum(self):
        sdfg = SDFG("dot")
        sdfg.add_array("x", ("N",), dtypes.float64)
        sdfg.add_array("r", (1,), dtypes.float64)
        st = sdfg.add_state()
        st.add_mapped_tasklet(
            "sq",
            {"i": "0:N"},
            inputs={"a": Memlet.simple("x", "i")},
            code="o = a * a",
            outputs={"o": Memlet(data="r", subset="0", wcr="sum")},
        )
        x, r = np.random.rand(32), np.zeros(1)
        SDFGInterpreter(sdfg)(x=x, r=r)
        assert np.allclose(r[0], (x * x).sum())

    def test_wcr_min_max(self):
        sdfg = SDFG("minmax")
        sdfg.add_array("x", ("N",), dtypes.float64)
        sdfg.add_array("lo", (1,), dtypes.float64)
        sdfg.add_array("hi", (1,), dtypes.float64)
        st = sdfg.add_state()
        st.add_mapped_tasklet(
            "mm",
            {"i": "0:N"},
            inputs={"a": Memlet.simple("x", "i")},
            code="l = a\nh = a",
            outputs={
                "l": Memlet(data="lo", subset="0", wcr="min"),
                "h": Memlet(data="hi", subset="0", wcr="max"),
            },
        )
        x = np.random.rand(64)
        lo, hi = np.full(1, np.inf), np.full(1, -np.inf)
        SDFGInterpreter(sdfg)(x=x, lo=lo, hi=hi)
        assert lo[0] == x.min() and hi[0] == x.max()

    def test_stencil_vector_read(self):
        # A tasklet reading a 3-element window (paper Fig. 2 Laplace style).
        sdfg = SDFG("stencil")
        sdfg.add_array("A", ("N",), dtypes.float64)
        sdfg.add_array("B", ("N",), dtypes.float64)
        st = sdfg.add_state()
        st.add_mapped_tasklet(
            "lap",
            {"i": "1:N-1"},
            inputs={"w": Memlet.simple("A", "i-1:i+2")},
            code="b = w[0] - 2*w[1] + w[2]",
            outputs={"b": Memlet.simple("B", "i")},
        )
        A = np.random.rand(20)
        B = np.zeros(20)
        SDFGInterpreter(sdfg)(A=A, B=B)
        expected = A[:-2] - 2 * A[1:-1] + A[2:]
        assert np.allclose(B[1:-1], expected)


class TestStateMachine:
    def test_loop(self):
        sdfg = SDFG("loop")
        sdfg.add_array("v", (1,), dtypes.float64)
        sdfg.add_symbol("T")
        body = sdfg.add_state("body")
        t = body.add_tasklet("inc", ["a"], ["b"], "b = a + 1")
        body.add_edge(body.add_read("v"), t, Memlet.simple("v", "0"), None, "a")
        body.add_edge(t, body.add_write("v"), Memlet.simple("v", "0"), "b", None)
        init = sdfg.add_state("init", is_start=True)
        sdfg.add_loop(init, body, None, "k", 0, "k < T", "k + 1")
        v = np.zeros(1)
        SDFGInterpreter(sdfg)(v=v, T=13)
        assert v[0] == 13

    def test_data_dependent_branch(self):
        # Paper Fig. 10a: condition on a container value.
        sdfg = SDFG("branch")
        sdfg.add_array("C", (1,), dtypes.float64)
        start = sdfg.add_state("start")
        double = sdfg.add_state("double")
        t = double.add_tasklet("t", ["ci"], ["co"], "co = 2 * ci")
        double.add_edge(double.add_read("C"), t, Memlet.simple("C", "0"), None, "ci")
        double.add_edge(t, double.add_write("C"), Memlet.simple("C", "0"), "co", None)
        halve = sdfg.add_state("halve")
        t2 = halve.add_tasklet("t", ["ci"], ["co"], "co = ci / 2")
        halve.add_edge(halve.add_read("C"), t2, Memlet.simple("C", "0"), None, "ci")
        halve.add_edge(t2, halve.add_write("C"), Memlet.simple("C", "0"), "co", None)
        sdfg.add_edge(start, double, InterstateEdge(condition="C <= 5"))
        sdfg.add_edge(start, halve, InterstateEdge(condition="C > 5"))
        c = np.array([4.0])
        SDFGInterpreter(sdfg)(C=c)
        assert c[0] == 8.0
        c = np.array([10.0])
        SDFGInterpreter(sdfg)(C=c)
        assert c[0] == 5.0

    def test_no_true_transition_terminates(self):
        sdfg = SDFG("halt")
        s1 = sdfg.add_state("s1")
        s2 = sdfg.add_state("s2")
        sdfg.add_edge(s1, s2, InterstateEdge(condition="1 > 2"))
        SDFGInterpreter(sdfg)()  # terminates at s1


class TestStreamsAndConsume:
    def test_stream_queue(self):
        q = StreamQueue()
        q.push(1, 2, 3)
        assert len(q) == 3
        assert q.pop() == 1
        with pytest.raises(RuntimeError):
            StreamQueue(capacity=1, items=[1]).push(2)
        with pytest.raises(RuntimeError):
            StreamQueue().pop()

    def test_producer_consumer(self):
        """Map pushes into a stream; consume scope drains it."""
        sdfg = SDFG("pc")
        sdfg.add_array("A", ("N",), dtypes.float64)
        sdfg.add_array("out", (1,), dtypes.float64)
        sdfg.add_stream("S", dtypes.float64, transient=True)
        st = sdfg.add_state()
        # producer
        t_in, me, mx = st.add_mapped_tasklet(
            "produce",
            {"i": "0:N"},
            inputs={"a": Memlet.simple("A", "i")},
            code="s = a * 2",
            outputs={"s": Memlet(data="S", subset="0", dynamic=True)},
        )
        s_node = [n for n in st.data_nodes() if n.data == "S"][0]
        # consumer
        ce, cx = st.add_consume("drain", ("p", 2))
        t = st.add_tasklet("acc", ["val"], ["o"], "o = val")
        st.add_edge(s_node, ce, Memlet(data="S", subset="0", dynamic=True), None, "IN_stream")
        st.add_edge(ce, t, Memlet(data="S", subset="0", dynamic=True), "OUT_stream", "val")
        out = st.add_write("out")
        st.add_memlet_path(
            t, cx, out,
            memlet=Memlet(data="out", subset="0", wcr="sum", dynamic=True),
            src_conn="o",
        )
        A = np.arange(5.0)
        o = np.zeros(1)
        SDFGInterpreter(sdfg)(A=A, out=o)
        assert o[0] == A.sum() * 2

    def test_fibonacci_consume(self):
        """Paper Fig. 8: asynchronous Fibonacci without memoization."""
        sdfg = SDFG("fib")
        sdfg.add_stream("S", dtypes.int64, transient=True)
        sdfg.add_array("res", (1,), dtypes.int64)
        sdfg.add_scalar("Nval", dtypes.int64)
        st = sdfg.add_state()
        t0 = st.add_tasklet("init", ["n"], ["s"], "s = n")
        st.add_edge(st.add_read("Nval"), t0, Memlet.simple("Nval", "0"), None, "n")
        s_init = st.add_access("S")
        st.add_edge(t0, s_init, Memlet(data="S", subset="0", dynamic=True), "s", None)
        ce, cx = st.add_consume("fibonacci", ("p", 4))
        body = st.add_tasklet(
            "fib",
            ["val"],
            ["out", "sout"],
            "if val <= 2:\n"
            "    out = 1 if val >= 1 else 0\n"
            "else:\n"
            "    sout.push(val - 1)\n"
            "    sout.push(val - 2)\n"
            "    out = 0\n",
        )
        st.add_edge(s_init, ce, Memlet(data="S", subset="0", dynamic=True), None, "IN_stream")
        st.add_edge(ce, body, Memlet(data="S", subset="0", dynamic=True), "OUT_stream", "val")
        st.add_memlet_path(
            body, cx, st.add_write("res"),
            memlet=Memlet(data="res", subset="0", wcr="sum", dynamic=True),
            src_conn="out",
        )
        st.add_memlet_path(
            body, cx, st.add_access("S"),
            memlet=Memlet(data="S", subset="0", dynamic=True),
            src_conn="sout",
        )
        res = np.zeros(1, np.int64)
        SDFGInterpreter(sdfg)(res=res, Nval=np.array([12]))
        assert res[0] == 144


class TestReduceAndNested:
    def test_reduce_node_axes(self):
        sdfg = SDFG("red")
        sdfg.add_array("A", ("M", "N"), dtypes.float64)
        sdfg.add_array("out", ("M",), dtypes.float64)
        st = sdfg.add_state()
        r = st.add_reduce("sum", axes=(1,))
        st.add_edge(st.add_read("A"), r, Memlet.simple("A", "0:M, 0:N"), None, "IN_1")
        st.add_edge(r, st.add_write("out"), Memlet.simple("out", "0:M"), "OUT_1", None)
        A = np.random.rand(4, 6)
        out = np.zeros(4)
        SDFGInterpreter(sdfg)(A=A, out=out)
        assert np.allclose(out, A.sum(axis=1))

    def test_reduce_all_axes_max(self):
        sdfg = SDFG("redmax")
        sdfg.add_array("A", ("M", "N"), dtypes.float64)
        sdfg.add_array("out", (1,), dtypes.float64)
        st = sdfg.add_state()
        r = st.add_reduce("max")
        st.add_edge(st.add_read("A"), r, Memlet.simple("A", "0:M, 0:N"), None, "IN_1")
        st.add_edge(r, st.add_write("out"), Memlet.simple("out", "0"), "OUT_1", None)
        A = np.random.rand(3, 5)
        out = np.zeros(1)
        SDFGInterpreter(sdfg)(A=A, out=out)
        assert out[0] == A.max()

    def test_nested_sdfg(self):
        inner = SDFG("inner")
        inner.add_array("x", ("K",), dtypes.float64)
        ist = inner.add_state()
        ist.add_mapped_tasklet(
            "scale",
            {"i": "0:K"},
            inputs={"a": Memlet.simple("x", "i")},
            code="b = a * 3",
            outputs={"b": Memlet.simple("x", "i")},
        )
        outer = SDFG("outer")
        outer.add_array("A", ("N",), dtypes.float64)
        st = outer.add_state()
        node = st.add_nested_sdfg(inner, ["x"], ["x"], symbol_mapping={"K": "N"})
        st.add_edge(st.add_read("A"), node, Memlet.simple("A", "0:N"), None, "x")
        st.add_edge(node, st.add_write("A"), Memlet.simple("A", "0:N"), "x", None)
        A = np.ones(6)
        SDFGInterpreter(outer)(A=A)
        assert np.allclose(A, 3.0)


class TestCopies:
    def test_array_copy_with_reindex(self):
        sdfg = SDFG("copy")
        sdfg.add_array("A", ("N", "N"), dtypes.float64)
        sdfg.add_array("B", ("N", "N"), dtypes.float64)
        st = sdfg.add_state()
        a, b = st.add_read("A"), st.add_write("B")
        st.add_edge(
            a, b,
            Memlet(data="A", subset="0:N//2, 0:N//2", other_subset="N//2:N, N//2:N"),
            None, None,
        )
        A = np.random.rand(8, 8)
        B = np.zeros((8, 8))
        SDFGInterpreter(sdfg)(A=A, B=B)
        assert np.allclose(B[4:, 4:], A[:4, :4])

    def test_transient_zero_initialized(self):
        sdfg = SDFG("tmpzero")
        sdfg.add_array("out", ("N",), dtypes.float64)
        sdfg.add_transient("tmp", ("N",), dtypes.float64, find_new_name=False)
        st = sdfg.add_state()
        t_node = st.add_read("tmp")
        o = st.add_write("out")
        st.add_edge(t_node, o, Memlet(data="tmp", subset="0:N"), None, None)
        out = np.ones(4)
        SDFGInterpreter(sdfg)(out=out)
        assert np.allclose(out, 0.0)


class TestArgumentHandling:
    def test_infer_affine_dimension(self):
        sdfg = SDFG("aff")
        sdfg.add_array("A", ("2*N + 1",), dtypes.float64)
        syms = infer_symbols(sdfg, {"A": np.zeros(9)}, {})
        assert syms["N"] == 4

    def test_infer_conflict(self):
        sdfg = SDFG("conflict")
        sdfg.add_array("A", ("N",), dtypes.float64)
        sdfg.add_array("B", ("N",), dtypes.float64)
        with pytest.raises(ArgumentError):
            infer_symbols(sdfg, {"A": np.zeros(4), "B": np.zeros(5)}, {})

    def test_scalar_as_python_number(self):
        sdfg = SDFG("scal")
        sdfg.add_scalar("s", dtypes.int64)
        sdfg.add_array("out", (1,), dtypes.int64)
        st = sdfg.add_state()
        t = st.add_tasklet("t", ["a"], ["b"], "b = a + 1")
        st.add_edge(st.add_read("s"), t, Memlet.simple("s", "0"), None, "a")
        st.add_edge(t, st.add_write("out"), Memlet.simple("out", "0"), "b", None)
        out = np.zeros(1, np.int64)
        SDFGInterpreter(sdfg)(s=41, out=out)
        assert out[0] == 42
