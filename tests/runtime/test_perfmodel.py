"""Tests for machine models and the analytic performance model."""

import numpy as np
import pytest

import repro as rp
from repro.runtime.machine import (
    MACHINES,
    TESLA_P100,
    TESLA_V100,
    XCVU9P,
    XEON_E5_2650V4,
)
from repro.runtime.perfmodel import PerformanceModel, simulate, tasklet_flops
from repro.sdfg import SDFG, Memlet, dtypes
from repro.sdfg.nodes import Tasklet
from repro.transformations import (
    FPGATransform,
    GPUTransform,
    MapReduceFusion,
    apply_transformations,
)

M, K, N = rp.symbol("M"), rp.symbol("K"), rp.symbol("N")


def mm_sdfg():
    @rp.program
    def mm(A: rp.float64[M, K], B: rp.float64[K, N], C: rp.float64[M, N]):
        C = A @ B

    mm._sdfg = None
    sdfg = mm.to_sdfg()
    apply_transformations(sdfg, MapReduceFusion)
    return sdfg


SYMS = {"M": 512, "K": 512, "N": 512}


class TestMachineModels:
    def test_registry(self):
        assert set(MACHINES) == {"cpu", "gpu", "gpu_v100", "fpga"}

    def test_roofline_times(self):
        m = XEON_E5_2650V4
        assert m.time_compute(m.peak_flops_dp * m.compute_efficiency) == pytest.approx(1.0)
        assert m.time_memory(m.mem_bandwidth * m.bandwidth_efficiency) == pytest.approx(1.0)

    def test_random_access_penalty(self):
        m = XEON_E5_2650V4
        assert m.time_memory(1e9, random_access=True) > m.time_memory(1e9)

    def test_transfer_only_on_devices(self):
        assert XEON_E5_2650V4.time_transfer(1e9) == 0.0
        assert TESLA_P100.time_transfer(12.0e9) == pytest.approx(1.0)

    def test_v100_faster_than_p100(self):
        assert TESLA_V100.peak_flops_dp > TESLA_P100.peak_flops_dp

    def test_fpga_pipeline_vs_naive(self):
        ops = 1e9
        assert XCVU9P.time_naive(ops) / XCVU9P.time_pipelined(ops) == pytest.approx(
            XCVU9P.ii_naive, rel=0.01
        )

    def test_fpga_pe_parallelism_capped(self):
        t1 = XCVU9P.time_pipelined(1e9, num_pes=1)
        t16 = XCVU9P.time_pipelined(1e9, num_pes=16)
        assert t16 == pytest.approx(t1 / 16)
        huge = XCVU9P.time_pipelined(1e9, num_pes=10**9)
        assert huge == pytest.approx(t1 / XCVU9P.max_parallel_pes())


class TestTaskletFlops:
    def test_counts_binops(self):
        t = Tasklet("t", ["a", "b"], ["c"], "c = a * b + 1")
        assert tasklet_flops(t) == 2

    def test_pow_and_calls_cost_more(self):
        t = Tasklet("t", ["a"], ["c"], "c = a ** 3")
        assert tasklet_flops(t) == 10
        t2 = Tasklet("t", ["a"], ["c"], "c = math.sqrt(a)")
        assert tasklet_flops(t2) >= 10

    def test_minimum_one(self):
        t = Tasklet("t", ["a"], ["c"], "c = a")
        assert tasklet_flops(t) == 1


class TestSimulation:
    def test_mm_work_counted(self):
        rep = simulate(mm_sdfg(), "cpu", SYMS)
        # One multiply per (i, j, k) iteration.
        assert rep.flops == pytest.approx(512**3, rel=0.01)
        assert rep.time > 0

    def test_gpu_beats_cpu_on_large_mm(self):
        sdfg = mm_sdfg()
        cpu = simulate(sdfg, "cpu", SYMS)
        gpu_sdfg = mm_sdfg()
        apply_transformations(gpu_sdfg, GPUTransform)
        gpu = simulate(gpu_sdfg, "gpu", SYMS)
        assert gpu.time < cpu.time

    def test_gpu_transfers_counted(self):
        gpu_sdfg = mm_sdfg()
        apply_transformations(gpu_sdfg, GPUTransform)
        rep = simulate(gpu_sdfg, "gpu", SYMS)
        # A, B in + C in/out: at least 3 x 512^2 x 8 bytes over PCIe.
        assert rep.transfer_bytes >= 3 * 512 * 512 * 8

    def test_kernel_launch_overhead_dominates_tiny_kernels(self):
        gpu_sdfg = mm_sdfg()
        apply_transformations(gpu_sdfg, GPUTransform)
        tiny = simulate(gpu_sdfg, "gpu", {"M": 4, "K": 4, "N": 4})
        assert tiny.time >= TESLA_P100.launch_latency

    def test_fpga_naive_orders_of_magnitude_slower(self):
        sdfg = mm_sdfg()
        apply_transformations(sdfg, FPGATransform)
        opt = simulate(sdfg, "fpga", SYMS)
        naive = simulate(sdfg, "fpga", SYMS, naive_fpga=True)
        assert naive.time / opt.time > 30

    def test_loop_trip_counts(self):
        sdfg = SDFG("loop")
        sdfg.add_array("v", (1,), dtypes.float64)
        sdfg.add_symbol("T")
        body = sdfg.add_state("body")
        t = body.add_tasklet("t", ["a"], ["b"], "b = a + 1")
        body.add_edge(body.add_read("v"), t, Memlet.simple("v", "0"), None, "a")
        body.add_edge(t, body.add_write("v"), Memlet.simple("v", "0"), "b", None)
        init = sdfg.add_state("init", is_start=True)
        sdfg.add_loop(init, body, None, "k", 0, "k < T", "k + 1")
        model = PerformanceModel(sdfg, {"T": 7})
        visits = model.state_visit_counts()
        assert visits[id(body)] == 7
        rep = simulate(sdfg, "cpu", {"T": 7})
        assert rep.flops == pytest.approx(7, rel=0.01)

    def test_report_breakdown(self):
        rep = simulate(mm_sdfg(), "cpu", SYMS)
        assert rep.breakdown
        assert rep.achieved_flops > 0
        assert 0 < rep.fraction_of_peak(XEON_E5_2650V4) <= 1
