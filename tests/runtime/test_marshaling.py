"""Marshaling-plan fast path: after a first validated call,
``CompiledSDFG.__call__`` must not re-run symbol inference or argument
validation for an identical signature — and must fall back to the slow
path the moment anything about the arguments changes."""

import numpy as np
import pytest

from repro.codegen import compile_sdfg
from repro.runtime import arguments
from repro.runtime.arguments import MarshalingPlan
from repro.workloads import kernels


@pytest.fixture
def counters(monkeypatch):
    """Count invocations of the slow-path validators."""
    counts = {"validate": 0, "infer": 0}
    orig_validate = arguments.validate_arguments
    orig_infer = arguments.infer_symbols

    def counting_validate(*a, **kw):
        counts["validate"] += 1
        return orig_validate(*a, **kw)

    def counting_infer(*a, **kw):
        counts["infer"] += 1
        return orig_infer(*a, **kw)

    monkeypatch.setattr(arguments, "validate_arguments", counting_validate)
    monkeypatch.setattr(arguments, "infer_symbols", counting_infer)
    return counts


class TestFastPath:
    def test_no_revalidation_on_second_call(self, counters):
        compiled = compile_sdfg(kernels.matmul_sdfg())
        data = kernels.matmul_data(16)
        compiled(**data)
        assert counters["validate"] == 1
        assert counters["infer"] == 1

        data2 = kernels.matmul_data(16, seed=1)
        compiled(**data2)
        assert counters["validate"] == 1, "second call must skip validation"
        assert counters["infer"] == 1, "second call must skip inference"
        np.testing.assert_allclose(
            data2["C"], kernels.matmul_reference(data2), rtol=1e-12
        )

    def test_new_shape_through_plan_is_correct(self, counters):
        compiled = compile_sdfg(kernels.matmul_sdfg())
        compiled(**kernels.matmul_data(16))
        # Same signature, different concrete size: the plan re-derives the
        # symbols from the array shapes, so results stay correct.
        big = kernels.matmul_data(24)
        compiled(**big)
        assert counters["validate"] == 1
        np.testing.assert_allclose(
            big["C"], kernels.matmul_reference(big), rtol=1e-12
        )

    def test_dtype_change_falls_back_to_slow_path(self, counters):
        compiled = compile_sdfg(kernels.matmul_sdfg())
        data = kernels.matmul_data(16)
        compiled(**data)
        bad = {k: v.astype(np.float32) for k, v in data.items()}
        with pytest.raises(arguments.ArgumentError):
            compiled(**bad)
        assert counters["validate"] == 2, "surprise must re-enter validation"

    def test_signature_change_rebuilds_plan(self, counters):
        compiled = compile_sdfg(kernels.matmul_sdfg())
        data = kernels.matmul_data(16)
        compiled(**data)
        # Passing N explicitly changes the keyword set -> plan mismatch.
        compiled(N=16, **data)
        assert counters["validate"] == 2
        compiled(N=16, **kernels.matmul_data(16))
        assert counters["validate"] == 2, "rebuilt plan must serve repeat calls"


class TestPlanUnit:
    def test_plan_records_shape_recipes(self):
        compiled = compile_sdfg(kernels.matmul_sdfg())
        data = kernels.matmul_data(16)
        compiled(**data)
        plan = compiled._marshal_plan
        assert isinstance(plan, MarshalingPlan)
        assert not plan.needs_slow
        kinds = {sym: kind for kind, sym, _ in plan.symbol_recipes}
        assert set(kinds) == {"M", "N", "K"}
        assert all(k == "shape" for k in kinds.values())

    def test_apply_rejects_rank_change(self):
        compiled = compile_sdfg(kernels.matmul_sdfg())
        data = kernels.matmul_data(16)
        compiled(**data)
        plan = compiled._marshal_plan
        bad = dict(data)
        bad["A"] = bad["A"].ravel()
        assert plan.apply(bad) is None

    def test_apply_missing_argument_falls_back(self):
        """A name dropping out of the kwargs is signature drift, not an
        exception: apply must return None (slow path re-validates)."""
        compiled = compile_sdfg(kernels.matmul_sdfg())
        data = kernels.matmul_data(16)
        compiled(**data)
        plan = compiled._marshal_plan
        partial = dict(data)
        del partial["A"]
        assert plan.apply(partial) is None

    def test_apply_bad_symbol_raises_with_name(self):
        """Regression for the blanket ``except`` that used to swallow
        genuine argument bugs: an unconvertible symbol must surface as
        an ArgumentError naming the symbol, not a silent None."""
        compiled = compile_sdfg(kernels.matmul_sdfg())
        data = kernels.matmul_data(16)
        compiled(N=16, **data)  # plan with an explicit-symbol recipe
        plan = compiled._marshal_plan
        bad = dict(data, N="sixteen")
        with pytest.raises(arguments.ArgumentError, match="symbol 'N'"):
            plan.apply(bad)

    def test_apply_bad_scalar_raises_with_name(self):
        compiled = compile_sdfg(kernels.query_sdfg())
        data = kernels.query_data(40)
        compiled(**data)
        plan = compiled._marshal_plan
        assert any(is_scalar for _, is_scalar, *_ in plan.array_items)
        bad = dict(data)
        bad["threshold"] = object()  # the query kernel's scalar input
        with pytest.raises(arguments.ArgumentError, match="'threshold'"):
            plan.apply(bad)
