"""Property-based tests of memlet propagation soundness.

The invariant behind accelerator copy generation (paper §4.3 ❶): the
propagated outer memlet of a scope must cover every element any
iteration of the scope actually accesses.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sdfg import SDFG, Memlet, dtypes
from repro.symbolic import Subset


@given(
    st.integers(-3, 3),     # offset of the accessed window
    st.integers(1, 4),      # window width
    st.integers(1, 3),      # access stride coefficient
    st.integers(5, 20),     # concrete N
)
@settings(max_examples=80, deadline=None)
def test_propagated_subset_covers_all_iterations(offset, width, coeff, n):
    lo = max(0, -offset)  # keep the accesses in bounds
    hi_bound = (n - offset - width) // coeff
    if hi_bound <= lo:
        return
    sdfg = SDFG("prop")
    sdfg.add_array("A", ("N",), dtypes.float64)
    sdfg.add_array("B", ("N",), dtypes.float64)
    state = sdfg.add_state()
    subset = f"{coeff}*i + {offset}:{coeff}*i + {offset} + {width}"
    state.add_mapped_tasklet(
        "t",
        {"i": f"{lo}:{hi_bound}"},
        inputs={"a": Memlet(data="A", subset=subset)},
        code="b = a[0]",
        outputs={"b": Memlet.simple("B", "i")},
    )
    sdfg.propagate()
    me = state.entry_nodes()[0]
    outer = state.in_edges(me)[0].data
    out_lo = int(outer.subset[0].min_element().evaluate({"N": n}))
    out_hi = int(outer.subset[0].max_element().evaluate({"N": n}))
    for i in range(lo, hi_bound):
        first = coeff * i + offset
        last = first + width - 1
        assert out_lo <= first and last <= out_hi, (i, outer.subset)


@given(st.integers(2, 8), st.integers(2, 8))
@settings(max_examples=40, deadline=None)
def test_propagated_volume_counts_iterations(m, k):
    """Outer volume = per-iteration accesses x iteration count."""
    sdfg = SDFG("vol")
    sdfg.add_array("A", ("M", "K"), dtypes.float64)
    sdfg.add_array("B", ("M",), dtypes.float64)
    state = sdfg.add_state()
    state.add_mapped_tasklet(
        "t",
        {"i": "0:M", "j": "0:K"},
        inputs={"a": Memlet.simple("A", "i, j")},
        code="b = a",
        outputs={"b": Memlet(data="B", subset="i", wcr="sum")},
    )
    sdfg.propagate()
    me = state.entry_nodes()[0]
    outer = state.in_edges(me)[0].data
    assert outer.volume.evaluate({"M": m, "K": k}) == m * k


def test_propagation_is_idempotent():
    sdfg = SDFG("idem")
    sdfg.add_array("A", ("N",), dtypes.float64)
    state = sdfg.add_state()
    state.add_mapped_tasklet(
        "t",
        {"i": "1:N-1"},
        inputs={"a": Memlet.simple("A", "i-1:i+2")},
        code="b = a[1]",
        outputs={"b": Memlet.simple("A", "i")},
    )
    sdfg.propagate()
    snapshot = sdfg.to_json()
    sdfg.propagate()
    assert sdfg.to_json() == snapshot


def test_memlet_path_fan_out_raises():
    sdfg = SDFG("fan")
    sdfg.add_array("A", ("N",), dtypes.float64)
    sdfg.add_array("B", ("N",), dtypes.float64)
    sdfg.add_array("C", ("N",), dtypes.float64)
    state = sdfg.add_state()
    me, mx = state.add_map("m", {"i": "0:N"})
    t1 = state.add_tasklet("t1", ["a"], ["b"], "b = a")
    t2 = state.add_tasklet("t2", ["a"], ["b"], "b = a")
    r = state.add_read("A")
    in_edge = state.add_memlet_path(r, me, t1, memlet=Memlet.simple("A", "i"),
                                    dst_conn="a")[0]
    # Second consumer on the same relay connector (fan-out).
    me.add_out_connector("OUT_1")
    state.add_edge(me, t2, Memlet.simple("A", "i"), "OUT_1", "a")
    state.add_memlet_path(t1, mx, state.add_write("B"),
                          memlet=Memlet.simple("B", "i"), src_conn="b")
    state.add_memlet_path(t2, mx, state.add_write("C"),
                          memlet=Memlet.simple("C", "i"), src_conn="b")
    with pytest.raises(ValueError, match="fans out"):
        state.memlet_path(in_edge)
