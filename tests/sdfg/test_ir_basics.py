"""Unit tests for dtypes, data descriptors, and memlets."""

import numpy as np
import pytest

from repro.sdfg import (
    Array,
    Memlet,
    ReductionType,
    Scalar,
    StorageType,
    Stream,
    dtypes,
)
from repro.symbolic import Integer, Subset, symbols

N, M = symbols("N M")


class TestDtypes:
    def test_basic_properties(self):
        assert dtypes.float64.bytes == 8
        assert dtypes.float32.bytes == 4
        assert dtypes.int32.ctype == "int"
        assert dtypes.float64.ctype == "double"
        assert dtypes.complex128.ctype == "std::complex<double>"

    def test_predicates(self):
        assert dtypes.int32.is_integer()
        assert dtypes.float32.is_float()
        assert dtypes.complex64.is_complex()
        assert not dtypes.float64.is_integer()

    def test_equality(self):
        assert dtypes.float64 == np.float64
        assert dtypes.float64 == dtypes.typeclass(np.float64)
        assert dtypes.float64 != dtypes.float32

    def test_shape_annotation_syntax(self):
        arr = dtypes.float64[N, M]
        assert isinstance(arr, Array)
        assert arr.shape == (N, M)
        arr1 = dtypes.int32[N]
        assert arr1.dims == 1

    def test_dtype_from_name(self):
        assert dtypes.dtype_from_name("float32") is dtypes.float32
        with pytest.raises(ValueError):
            dtypes.dtype_from_name("quaternion")

    def test_dtype_of(self):
        assert dtypes.dtype_of(np.zeros(3, np.float32)) == dtypes.float32
        assert dtypes.dtype_of(3) == dtypes.int64
        assert dtypes.dtype_of(3.5) == dtypes.float64

    def test_wcr_detection(self):
        assert dtypes.detect_reduction_type("lambda a, b: a + b") == ReductionType.Sum
        assert dtypes.detect_reduction_type("sum") == ReductionType.Sum
        assert dtypes.detect_reduction_type("lambda a, b: max(a, b)") == ReductionType.Max
        assert (
            dtypes.detect_reduction_type("lambda a, b: a - b") == ReductionType.Custom
        )


class TestDescriptors:
    def test_array_strides_row_major(self):
        a = Array(dtypes.float64, (N, M))
        assert a.strides == (M, Integer(1))

    def test_array_total_size(self):
        a = Array(dtypes.float64, (N, M))
        assert a.total_size() == N * M
        assert a.size_bytes() == N * M * 8

    def test_scalar(self):
        s = Scalar(dtypes.int32)
        assert s.total_size() == Integer(1)

    def test_stream(self):
        s = Stream(dtypes.float32, (4,), buffer_size=16)
        assert s.buffer_size == Integer(16)

    def test_validate_bad_shape(self):
        with pytest.raises(ValueError):
            Array(dtypes.float64, (0,)).validate()

    def test_validate_stride_rank(self):
        a = Array(dtypes.float64, (N, M), strides=(1,))
        with pytest.raises(ValueError):
            a.validate()

    def test_clone_independent(self):
        a = Array(dtypes.float64, (N,), transient=True)
        b = a.clone()
        assert b.transient and b.shape == a.shape
        b.transient = False
        assert a.transient

    def test_full_subset(self):
        a = Array(dtypes.float64, (N, M))
        assert str(a.full_subset()) == "0:N, 0:M"


class TestMemlet:
    def test_simple(self):
        m = Memlet.simple("A", "i, j")
        assert m.data == "A"
        assert m.volume == Integer(1)

    def test_volume_default_is_subset_size(self):
        m = Memlet.simple("A", "0:N, 0:M")
        assert m.volume == N * M

    def test_volume_override(self):
        m = Memlet(data="x", subset="0:N", volume=1, dynamic=True)
        assert m.volume == Integer(1)
        assert m.dynamic

    def test_empty(self):
        m = Memlet.empty()
        assert m.is_empty()
        assert m.volume == Integer(0)

    def test_wcr_alias(self):
        m = Memlet(data="b", subset="i", wcr="sum")
        assert m.wcr == "lambda a, b: a + b"
        assert m.reduction_type() == ReductionType.Sum

    def test_subs(self):
        m = Memlet.simple("A", "i, j").subs({"i": 1, "j": 2})
        assert m.subset.evaluate_indices({}) == (1, 2)

    def test_clone_equality(self):
        m = Memlet(data="A", subset="0:N", wcr="sum")
        assert m.clone() == m
        assert m.clone() is not m

    def test_repr_shows_wcr(self):
        m = Memlet(data="b", subset="i", wcr="sum")
        assert "CR" in repr(m)
