"""Tests for SDFG/state construction, scopes, memlet paths, validation."""

import pytest

from repro.sdfg import (
    SDFG,
    InterstateEdge,
    InvalidSDFGError,
    Memlet,
    ScheduleType,
    StorageType,
    dtypes,
)
from repro.symbolic import Integer, symbols

N = symbols("N")[0]


def vadd_sdfg():
    sdfg = SDFG("vadd")
    sdfg.add_array("A", ("N",), dtypes.float64)
    sdfg.add_array("B", ("N",), dtypes.float64)
    sdfg.add_array("C", ("N",), dtypes.float64)
    st = sdfg.add_state("main")
    st.add_mapped_tasklet(
        "add",
        {"i": "0:N"},
        inputs={"a": Memlet.simple("A", "i"), "b": Memlet.simple("B", "i")},
        code="c = a + b",
        outputs={"c": Memlet.simple("C", "i")},
    )
    return sdfg


class TestConstruction:
    def test_add_state_names_unique(self):
        sdfg = SDFG("x")
        s1 = sdfg.add_state("s")
        s2 = sdfg.add_state("s")
        assert s1.name != s2.name

    def test_first_state_is_start(self):
        sdfg = SDFG("x")
        s = sdfg.add_state()
        assert sdfg.start_state is s

    def test_invalid_names(self):
        with pytest.raises(ValueError):
            SDFG("9bad")
        sdfg = SDFG("ok")
        with pytest.raises(ValueError):
            sdfg.add_array("bad name", (1,), dtypes.float64)

    def test_duplicate_array(self):
        sdfg = SDFG("x")
        sdfg.add_array("A", (1,), dtypes.float64)
        with pytest.raises(ValueError):
            sdfg.add_array("A", (2,), dtypes.float64)

    def test_transient_fresh_name(self):
        sdfg = SDFG("x")
        sdfg.add_array("tmp", (1,), dtypes.float64)
        name, _ = sdfg.add_transient("tmp", (2,), dtypes.float64)
        assert name != "tmp"
        assert sdfg.arrays[name].transient

    def test_shape_symbols_declared(self):
        sdfg = SDFG("x")
        sdfg.add_array("A", ("N", "M"), dtypes.float64)
        assert "N" in sdfg.symbols and "M" in sdfg.symbols

    def test_arglist_excludes_transients(self):
        sdfg = vadd_sdfg()
        sdfg.add_transient("scratch", ("N",), dtypes.float64)
        assert "scratch" not in sdfg.arglist()
        assert list(sdfg.arglist()) == ["A", "B", "C"]

    def test_add_state_before_after(self):
        sdfg = SDFG("x")
        s1 = sdfg.add_state("s1")
        s2 = sdfg.add_state("s2")
        sdfg.add_edge(s1, s2, InterstateEdge())
        pre = sdfg.add_state_before(s1)
        post = sdfg.add_state_after(s2)
        assert sdfg.start_state is pre
        assert sdfg.successors(pre) == [s1]
        assert sdfg.successors(s2) == [post]

    def test_add_loop(self):
        sdfg = SDFG("loop")
        body = sdfg.add_state("body")
        guard, after = sdfg.add_loop(
            None, body, None, "t", 0, "t < 10", "t + 1"
        )
        # guard has two outgoing edges: into body (t<10) and to after.
        assert {e.dst for e in sdfg.out_edges(guard)} == {body, after}
        back = sdfg.edges_between(body, guard)
        assert back[0].data.assignments["t"] == Integer(1) + symbols("t")[0]


class TestScopes:
    def test_scope_dict(self):
        sdfg = vadd_sdfg()
        st = sdfg.start_state
        me = st.entry_nodes()[0]
        sd = st.scope_dict()
        tasklet = [n for n in st.nodes() if n.label == "add"][0]
        assert sd[tasklet] is me
        assert sd[me] is None
        assert sd[st.exit_node(me)] is me

    def test_nested_scopes(self):
        sdfg = SDFG("nested")
        sdfg.add_array("A", ("N", "N"), dtypes.float64)
        sdfg.add_array("B", ("N", "N"), dtypes.float64)
        st = sdfg.add_state()
        ome, omx = st.add_map("outer", {"i": "0:N"})
        ime, imx = st.add_map("inner", {"j": "0:N"})
        t = st.add_tasklet("copy", ["a"], ["b"], "b = a")
        r, w = st.add_read("A"), st.add_write("B")
        st.add_memlet_path(r, ome, ime, t, memlet=Memlet.simple("A", "i, j"), dst_conn="a")
        st.add_memlet_path(t, imx, omx, w, memlet=Memlet.simple("B", "i, j"), src_conn="b")
        sd = st.scope_dict()
        assert sd[t] is ime
        assert sd[ime] is ome
        assert sd[ome] is None
        sdfg.validate()
        # scope_subgraph includes nested content
        sub = st.scope_subgraph(ome)
        assert t in sub and ime in sub and imx in sub

    def test_scope_children(self):
        sdfg = vadd_sdfg()
        st = sdfg.start_state
        me = st.entry_nodes()[0]
        children = st.scope_children()
        assert me in children[None]
        labels = {n.label for n in children[me]}
        assert "add" in labels

    def test_memlet_path(self):
        sdfg = vadd_sdfg()
        st = sdfg.start_state
        me = st.entry_nodes()[0]
        outer = st.in_edges(me)[0]
        path = st.memlet_path(outer)
        assert len(path) == 2
        assert path[0] is outer


class TestPropagation:
    def test_outer_memlets_tightened(self):
        sdfg = vadd_sdfg()
        sdfg.propagate()
        st = sdfg.start_state
        me = st.entry_nodes()[0]
        for e in st.in_edges(me):
            assert str(e.data.subset) == "0:N"
            assert e.data.volume == N

    def test_stencil_halo(self):
        sdfg = SDFG("stencil")
        sdfg.add_array("A", ("N",), dtypes.float64)
        sdfg.add_array("B", ("N",), dtypes.float64)
        st = sdfg.add_state()
        st.add_mapped_tasklet(
            "st",
            {"i": "1:N-1"},
            inputs={"a": Memlet.simple("A", "i-1:i+2")},
            code="b = a",
            outputs={"b": Memlet.simple("B", "i")},
        )
        sdfg.propagate()
        me = st.entry_nodes()[0]
        inm = st.in_edges(me)[0].data
        assert str(inm.subset) == "0:N"
        # 3 accesses per iteration x (N-2) iterations
        assert inm.volume.subs({"N": 10}).as_int() == 24

    def test_wcr_propagates(self):
        sdfg = SDFG("wcr")
        sdfg.add_array("A", ("N",), dtypes.float64)
        sdfg.add_array("out", (1,), dtypes.float64)
        st = sdfg.add_state()
        st.add_mapped_tasklet(
            "acc",
            {"i": "0:N"},
            inputs={"a": Memlet.simple("A", "i")},
            code="o = a",
            outputs={"o": Memlet(data="out", subset="0", wcr="sum")},
        )
        sdfg.propagate()
        mx = st.exit_node(st.entry_nodes()[0])
        outer = st.out_edges(mx)[0].data
        assert outer.wcr is not None

    def test_nested_scope_propagation(self):
        sdfg = SDFG("nested")
        sdfg.add_array("A", ("N", "N"), dtypes.float64)
        sdfg.add_array("B", ("N", "N"), dtypes.float64)
        st = sdfg.add_state()
        ome, omx = st.add_map("outer", {"i": "0:N"})
        ime, imx = st.add_map("inner", {"j": "0:N"})
        t = st.add_tasklet("copy", ["a"], ["b"], "b = a")
        r, w = st.add_read("A"), st.add_write("B")
        st.add_memlet_path(r, ome, ime, t, memlet=Memlet.simple("A", "i, j"), dst_conn="a")
        st.add_memlet_path(t, imx, omx, w, memlet=Memlet.simple("B", "i, j"), src_conn="b")
        sdfg.propagate()
        outer_in = st.in_edges(ome)[0].data
        assert str(outer_in.subset) == "0:N, 0:N"
        mid = st.out_edges_by_connector(ome, "OUT_1")[0].data
        assert str(mid.subset) == "i, 0:N"


class TestValidation:
    def test_valid_sdfg_passes(self):
        vadd_sdfg().validate()

    def test_empty_sdfg_fails(self):
        with pytest.raises(InvalidSDFGError):
            SDFG("empty").validate()

    def test_undefined_container(self):
        sdfg = SDFG("bad")
        st = sdfg.add_state()
        st.add_access("ghost")
        with pytest.raises(InvalidSDFGError, match="undefined container"):
            sdfg.validate()

    def test_cyclic_state_rejected(self):
        sdfg = SDFG("cyc")
        sdfg.add_array("A", (4,), dtypes.float64)
        st = sdfg.add_state()
        t1 = st.add_tasklet("t1", ["x"], ["y"], "y = x")
        t2 = st.add_tasklet("t2", ["x"], ["y"], "y = x")
        st.add_edge(t1, t2, Memlet.simple("A", "0"), "y", "x")
        st.add_edge(t2, t1, Memlet.simple("A", "0"), "y", "x")
        with pytest.raises(InvalidSDFGError, match="cyclic"):
            sdfg.validate()

    def test_rank_mismatch(self):
        sdfg = SDFG("rank")
        sdfg.add_array("A", ("N", "N"), dtypes.float64)
        st = sdfg.add_state()
        a = st.add_read("A")
        t = st.add_tasklet("t", ["x"], [], "pass")
        st.add_edge(a, t, Memlet.simple("A", "0"), None, "x")
        with pytest.raises(InvalidSDFGError, match="rank"):
            sdfg.validate()

    def test_out_of_bounds(self):
        sdfg = SDFG("oob")
        sdfg.add_array("A", ("N",), dtypes.float64)
        st = sdfg.add_state()
        a = st.add_read("A")
        t = st.add_tasklet("t", ["x"], [], "pass")
        st.add_edge(a, t, Memlet.simple("A", "0:N+1"), None, "x")
        with pytest.raises(InvalidSDFGError, match="out of bounds"):
            sdfg.validate()

    def test_tasklet_external_name_rejected(self):
        # The defining property: tasklets cannot touch memory w/o memlets.
        sdfg = SDFG("leak")
        sdfg.add_array("A", ("N",), dtypes.float64)
        st = sdfg.add_state()
        t = st.add_tasklet("t", [], ["y"], "y = secret_global + 1")
        w = st.add_write("A")
        st.add_edge(t, w, Memlet.simple("A", "0"), "y", None)
        with pytest.raises(InvalidSDFGError, match="without a memlet"):
            sdfg.validate()

    def test_tasklet_may_use_scope_params_and_symbols(self):
        sdfg = SDFG("syms")
        sdfg.add_array("A", ("N",), dtypes.float64)
        st = sdfg.add_state()
        st.add_mapped_tasklet(
            "t",
            {"i": "0:N"},
            inputs={},
            code="y = i * N",
            outputs={"y": Memlet.simple("A", "i")},
        )
        sdfg.validate()

    def test_storage_schedule_feasibility(self):
        # GPU-scheduled map touching CPU-heap storage must fail (paper §4.3).
        sdfg = SDFG("gpu_bad")
        sdfg.add_array("A", ("N",), dtypes.float64, storage=StorageType.CPU_Heap)
        sdfg.add_array("B", ("N",), dtypes.float64, storage=StorageType.GPU_Global)
        st = sdfg.add_state()
        me, mx = st.add_map("m", {"i": "0:N"}, schedule=ScheduleType.GPU_Device)
        t = st.add_tasklet("t", ["a"], ["b"], "b = a")
        r, w = st.add_read("A"), st.add_write("B")
        # Access node *inside* the GPU scope referencing CPU heap memory.
        inner = st.add_access("A")
        st.add_memlet_path(r, me, t, memlet=Memlet.simple("A", "i"), dst_conn="a")
        st.add_memlet_path(t, mx, w, memlet=Memlet.simple("B", "i"), src_conn="b")
        st.add_nedge(me, inner)
        st.add_nedge(inner, mx)
        with pytest.raises(InvalidSDFGError, match="not accessible"):
            sdfg.validate()

    def test_interstate_assignment_to_container_rejected(self):
        sdfg = SDFG("assign")
        sdfg.add_array("A", ("N",), dtypes.float64)
        s1 = sdfg.add_state()
        s1.add_access("A")
        s2 = sdfg.add_state()
        sdfg.add_edge(s1, s2, InterstateEdge(assignments={"A": 1}))
        with pytest.raises(InvalidSDFGError, match="container"):
            sdfg.validate()

    def test_recursive_nested_sdfg_rejected(self):
        sdfg = SDFG("rec")
        sdfg.add_array("A", (1,), dtypes.float64)
        st = sdfg.add_state()
        with pytest.raises(InvalidSDFGError, match="recursive"):
            node = st.add_nested_sdfg(sdfg, [], [])
            sdfg.validate()


class TestSerialization:
    def test_roundtrip_preserves_structure(self):
        sdfg = vadd_sdfg()
        sdfg.propagate()
        j = sdfg.to_json()
        back = SDFG.from_json(j)
        back.validate()
        assert back.to_json() == j

    def test_roundtrip_interstate(self):
        sdfg = SDFG("loop")
        body = sdfg.add_state("body")
        sdfg.add_loop(None, body, None, "t", 0, "t < N", "t + 1")
        sdfg.add_symbol("N")
        j = sdfg.to_json()
        back = SDFG.from_json(j)
        assert back.to_json() == j

    def test_save_load(self, tmp_path):
        sdfg = vadd_sdfg()
        p = tmp_path / "vadd.json"
        sdfg.save(str(p))
        back = SDFG.load(str(p))
        assert back.name == "vadd"
        back.validate()


class TestViz:
    def test_dot_output(self):
        dot = vadd_sdfg().to_dot()
        assert dot.startswith("digraph")
        assert "cluster_0" in dot

    def test_summary(self):
        s = vadd_sdfg().summary()
        assert "vadd" in s and "state" in s
