"""Tests for the paper's remaining interface features: external-code
tasklets (Fig. 5), consume-scope quiescence conditions (Fig. 8), and
their serialization."""

import numpy as np
import pytest

import repro as rp
from repro.codegen.cpp_gen import compile_cpp, find_host_compiler
from repro.runtime import SDFGInterpreter
from repro.sdfg import SDFG, Language, Memlet, dtypes

needs_cc = pytest.mark.skipif(find_host_compiler() is None, reason="no C++ compiler")

N = rp.symbol("N")


class TestExternalCode:
    """Paper Fig. 5: tasklet code in the generated language, with memlets
    defined separately for correctness."""

    def make_program(self):
        @rp.program
        def extscale(A: rp.float64[N], B: rp.float64[N]):
            for i in rp.map[0:N]:
                with rp.tasklet(language=rp.Language.CPP, code_global="#include <cmath>"):
                    a << A[i]
                    b >> B[i]
                    """
                    b = std::sqrt(a) * 2.0;
                    """

        extscale._sdfg = None
        return extscale

    def test_cpp_tasklet_parses(self):
        sdfg = self.make_program().to_sdfg()
        from repro.sdfg.nodes import Tasklet

        t = [n for s in sdfg.states() for n in s.nodes() if isinstance(n, Tasklet)][0]
        assert t.language == Language.CPP
        assert "std::sqrt" in t.code
        assert t.code_global == "#include <cmath>"

    def test_cpp_tasklet_appears_in_generated_code(self):
        sdfg = self.make_program().to_sdfg()
        code = sdfg.generate_code("cpp")
        assert "std::sqrt(a) * 2.0" in code
        assert "#include <cmath>" in code

    @needs_cc
    def test_cpp_tasklet_executes(self):
        sdfg = self.make_program().to_sdfg()
        comp = compile_cpp(sdfg)
        A = np.random.rand(32) + 0.1
        B = np.zeros(32)
        comp(A=A, B=B)
        np.testing.assert_allclose(B, np.sqrt(A) * 2)

    def test_cpp_tasklet_rejected_by_python_backend(self):
        # Python backend cannot execute C++ tasklets; compilation falls
        # back to... nothing — it raises through the interpreter too.
        sdfg = self.make_program().to_sdfg()
        comp = sdfg.compile()  # interpreter fallback object
        with pytest.raises(Exception):
            comp(A=np.ones(4), B=np.zeros(4))


class TestConsumeConditions:
    def build(self, condition):
        sdfg = SDFG("cq")
        sdfg.add_stream("S", dtypes.int64, transient=True)
        sdfg.add_array("out", (1,), dtypes.int64)
        sdfg.add_array("inp", ("N",), dtypes.int64)
        st = sdfg.add_state()
        # Fill the stream from the input array.
        s_in = st.add_access("S")
        st.add_edge(st.add_read("inp"), s_in,
                    Memlet(data="inp", subset="0:N"), None, None)
        ce, cx = st.add_consume("drain", ("p", 2), condition=condition)
        t = st.add_tasklet("acc", ["v"], ["o"], "o = v")
        st.add_edge(s_in, ce, Memlet(data="S", subset="0", dynamic=True),
                    None, "IN_stream")
        st.add_edge(ce, t, Memlet(data="S", subset="0", dynamic=True),
                    "OUT_stream", "v")
        st.add_memlet_path(
            t, cx, st.add_write("out"),
            memlet=Memlet(data="out", subset="0", wcr="sum", dynamic=True),
            src_conn="o",
        )
        return sdfg

    @pytest.mark.parametrize("condition", [None, "len_S == 0"])
    def test_quiescence_conditions(self, condition):
        sdfg = self.build(condition)
        inp = np.arange(1, 9, dtype=np.int64)
        for runner in (sdfg.compile(), SDFGInterpreter(sdfg)):
            out = np.zeros(1, np.int64)
            runner(inp=inp, out=out)
            assert out[0] == inp.sum(), condition

    def test_consume_serialization_roundtrip(self):
        sdfg = self.build("len_S == 0")
        j = sdfg.to_json()
        back = SDFG.from_json(j)
        back.validate()
        assert back.to_json() == j
        out = np.zeros(1, np.int64)
        back.compile()(inp=np.arange(4, dtype=np.int64), out=out)
        assert out[0] == 6

    def test_consume_propagates_dynamic(self):
        sdfg = self.build(None)
        sdfg.propagate()
        st = sdfg.states()[0]
        from repro.sdfg.nodes import ConsumeExit

        cx = [n for n in st.nodes() if isinstance(n, ConsumeExit)][0]
        for e in st.out_edges(cx):
            assert e.data.dynamic


class TestMPICodegen:
    def test_partitioned_range_in_generated_code(self):
        from repro.transformations import MPITransform, apply_transformations

        @rp.program
        def scale(A: rp.float64[N]):
            for i in rp.map[0:N]:
                A[i] = A[i] * 2

        sdfg = scale.to_sdfg()
        apply_transformations(sdfg, MPITransform)
        src = sdfg.compile().source
        assert "__mpi_rank" in src or "__mpi" in str(sdfg.summary())
