"""Tests for the restricted-Python frontend (paper §2.1)."""

import numpy as np
import pytest
import scipy.sparse as sp

import repro as rp
from repro.frontend.astparser import FrontendError
from repro.sdfg.nodes import MapEntry, Tasklet

N = rp.symbol("N")
M = rp.symbol("M")
K = rp.symbol("K")


class TestExplicitTasklets:
    def test_vector_add(self):
        @rp.program
        def vadd(A: rp.float64[N], B: rp.float64[N], C: rp.float64[N]):
            for i in rp.map[0:N]:
                with rp.tasklet:
                    a << A[i]
                    b << B[i]
                    c >> C[i]
                    c = a + b

        a, b, c = np.random.rand(16), np.random.rand(16), np.zeros(16)
        vadd(a, b, c)
        assert np.allclose(c, a + b)

    def test_laplace_fig2(self):
        """Paper Fig. 2: 1-D Laplace with double buffering via t % 2."""

        @rp.program
        def laplace(A: rp.float64[2, N], T: rp.int64):
            for t in range(T):
                for i in rp.map[1 : N - 1]:
                    with rp.tasklet:
                        w << A[t % 2, i - 1 : i + 2]
                        out >> A[(t + 1) % 2, i]
                        out = w[0] - 2 * w[1] + w[2]

        A = np.random.rand(2, 40)
        ref = A.copy()
        laplace(A, 5)
        for t in range(5):
            ref[(t + 1) % 2, 1:-1] = ref[t % 2, :-2] - 2 * ref[t % 2, 1:-1] + ref[t % 2, 2:]
        assert np.allclose(A, ref)

    def test_spmv_fig4(self):
        """Paper Fig. 4: SpMV with data-dependent ranges and indirection."""
        H, W, nnz = rp.symbol("H"), rp.symbol("W"), rp.symbol("nnz")

        @rp.program
        def spmv(
            A_row: rp.uint32[H + 1],
            A_col: rp.uint32[nnz],
            A_val: rp.float32[nnz],
            x: rp.float32[W],
            b: rp.float32[H],
        ):
            for i in rp.map[0:H]:
                for j in rp.map[A_row[i] : A_row[i + 1]]:
                    with rp.tasklet:
                        a << A_val[j]
                        in_x << x[A_col[j]]
                        out >> b(1, rp.sum)[i]
                        out = a * in_x

        m = sp.random(25, 40, density=0.25, format="csr", dtype=np.float32)
        x = np.random.rand(40).astype(np.float32)
        b = np.zeros(25, np.float32)
        spmv(m.indptr.astype(np.uint32), m.indices.astype(np.uint32), m.data, x, b)
        assert np.allclose(b, m @ x, rtol=1e-4)

    def test_wcr_memlet_syntax(self):
        @rp.program
        def total(A: rp.float64[N], out: rp.float64[1]):
            for i in rp.map[0:N]:
                with rp.tasklet:
                    a << A[i]
                    o >> out(1, rp.sum)[0]
                    o = a

        A = np.random.rand(50)
        out = np.zeros(1)
        total(A, out)
        assert np.allclose(out[0], A.sum())

    def test_indirection_builds_subgraph(self):
        """The x[A_col[j]] access becomes an indirection tasklet (App. F)."""
        W, nnz = rp.symbol("W"), rp.symbol("nnz")

        @rp.program
        def gather(A_col: rp.uint32[nnz], x: rp.float32[W], out: rp.float32[nnz]):
            for j in rp.map[0:nnz]:
                with rp.tasklet:
                    in_x << x[A_col[j]]
                    o >> out[j]
                    o = in_x

        sdfg = gather.to_sdfg()
        tasklets = [
            n
            for st in sdfg.states()
            for n in st.nodes()
            if isinstance(n, Tasklet) and "indirection" in n.name
        ]
        assert len(tasklets) == 1


class TestImplicitTasklets:
    def test_assignment_in_map(self):
        @rp.program
        def scale(A: rp.float64[N, M], B: rp.float64[N, M]):
            for i, j in rp.map[0:N, 0:M]:
                B[i, j] = A[i, j] * 2 + 1

        A = np.random.rand(5, 7)
        B = np.zeros((5, 7))
        scale(A, B)
        assert np.allclose(B, A * 2 + 1)

    def test_augassign_becomes_wcr(self):
        @rp.program
        def colsum(A: rp.float64[N, M], out: rp.float64[M]):
            for i, j in rp.map[0:N, 0:M]:
                out[j] += A[i, j]

        A = np.random.rand(6, 4)
        out = np.zeros(4)
        colsum(A, out)
        assert np.allclose(out, A.sum(axis=0))

    def test_duplicate_reads_share_connector(self):
        @rp.program
        def square(A: rp.float64[N], B: rp.float64[N]):
            for i in rp.map[0:N]:
                B[i] = A[i] * A[i]

        sdfg = square.to_sdfg()
        t = [
            n
            for st in sdfg.states()
            for n in st.nodes()
            if isinstance(n, Tasklet)
        ][0]
        assert len(t.in_connectors) == 1

    def test_implicit_indirection_read(self):
        @rp.program
        def gather(idx: rp.int64[N], v: rp.float64[M], out: rp.float64[N]):
            for i in rp.map[0:N]:
                out[i] = v[idx[i]]

        idx = np.array([2, 0, 1, 2], dtype=np.int64)
        v = np.array([10.0, 20.0, 30.0])
        out = np.zeros(4)
        gather(idx, v, out)
        assert np.allclose(out, v[idx])


class TestControlFlow:
    def test_range_loop(self):
        @rp.program
        def power(A: rp.float64[N], T: rp.int64):
            for t in range(T):
                for i in rp.map[0:N]:
                    A[i] = A[i] * 2

        A = np.ones(4)
        power(A, 3)
        assert np.allclose(A, 8.0)

    def test_range_start_stop_step(self):
        @rp.program
        def count(out: rp.float64[1], T: rp.int64):
            for t in range(1, T, 2):
                for i in rp.map[0:1]:
                    out[0] += 1.0

        out = np.zeros(1)
        count(out, 10)  # t = 1, 3, 5, 7, 9
        assert out[0] == 5

    def test_if_branching_on_data(self):
        @rp.program
        def branch(C: rp.float64[1]):
            if C[0] <= 5:
                for i in rp.map[0:1]:
                    C[i] = C[i] * 2
            else:
                for i in rp.map[0:1]:
                    C[i] = C[i] / 2

        c = np.array([4.0])
        branch(c)
        assert c[0] == 8.0
        c = np.array([10.0])
        branch(c)
        assert c[0] == 5.0

    def test_while_loop(self):
        @rp.program
        def collatz_steps(v: rp.float64[1], steps: rp.float64[1]):
            while v[0] > 1:
                if v[0] % 2 == 0:
                    for i in rp.map[0:1]:
                        v[i] = v[i] / 2
                else:
                    for i in rp.map[0:1]:
                        v[i] = 3 * v[i] + 1
                for i in rp.map[0:1]:
                    steps[i] += 1.0

        v = np.array([6.0])
        s = np.zeros(1)
        collatz_steps(v, s)
        assert v[0] == 1.0 and s[0] == 8  # 6→3→10→5→16→8→4→2→1


class TestNumpyOperators:
    def test_matmul_generates_fig9b(self):
        @rp.program
        def mm(A: rp.float64[M, K], B: rp.float64[K, N], C: rp.float64[M, N]):
            C = A @ B

        sdfg = mm.to_sdfg()
        # Fig. 9b structure: a 3-D map plus a Reduce node.
        from repro.sdfg.nodes import Reduce

        maps = [n for st in sdfg.states() for n in st.nodes() if isinstance(n, MapEntry)]
        reds = [n for st in sdfg.states() for n in st.nodes() if isinstance(n, Reduce)]
        assert len(maps) == 1 and len(maps[0].map.params) == 3
        assert len(reds) == 1
        A, B = np.random.rand(4, 6), np.random.rand(6, 5)
        C = np.zeros((4, 5))
        mm(A, B, C)
        assert np.allclose(C, A @ B)

    def test_elementwise_chain(self):
        @rp.program
        def expr(A: rp.float64[N], B: rp.float64[N], C: rp.float64[N]):
            C = A * 2 + B

        A, B = np.random.rand(12), np.random.rand(12)
        C = np.zeros(12)
        expr(A, B, C)
        assert np.allclose(C, A * 2 + B)

    def test_np_sum_reduce(self):
        import numpy

        @rp.program
        def rowsum(A: rp.float64[N, M], out: rp.float64[N]):
            out = numpy.sum(A, axis=1)

        A = np.random.rand(5, 8)
        out = np.zeros(5)
        rowsum(A, out)
        assert np.allclose(out, A.sum(axis=1))

    def test_transient_declaration_and_use(self):
        @rp.program
        def twostep(A: rp.float64[N], C: rp.float64[N]):
            tmp: rp.float64[N]
            tmp = A * 3
            C = tmp + 1

        A = np.random.rand(9)
        C = np.zeros(9)
        twostep(A, C)
        assert np.allclose(C, A * 3 + 1)

    def test_slice_copy(self):
        @rp.program
        def shift(A: rp.float64[N], B: rp.float64[N]):
            B[1:N] = A[0 : N - 1]

        A = np.random.rand(8)
        B = np.zeros(8)
        shift(A, B)
        assert np.allclose(B[1:], A[:-1])

    def test_replaces_registry(self):
        from repro.frontend import npops

        @rp.replaces("mylib.triple")
        def _triple(ctx, state, result, a):
            return npops.expand_elementwise_binop(ctx, state, "*", a, 3, result)

        class mylib:  # noqa: N801 (namespace stand-in)
            triple = None

        @rp.program
        def use_triple(A: rp.float64[N], B: rp.float64[N]):
            B = mylib.triple(A)

        A = np.random.rand(6)
        B = np.zeros(6)
        use_triple(A, B)
        assert np.allclose(B, A * 3)


class TestErrors:
    def test_missing_annotation(self):
        with pytest.raises(FrontendError, match="annotation"):

            @rp.program
            def bad(A):
                pass

            bad.to_sdfg()

    def test_unsupported_statement(self):
        with pytest.raises(FrontendError):

            @rp.program
            def bad(A: rp.float64[N]):
                import os  # noqa

            bad.to_sdfg()

    def test_return_value_rejected(self):
        with pytest.raises(FrontendError, match="return"):

            @rp.program
            def bad(A: rp.float64[N]):
                return A

            bad.to_sdfg()

    def test_unknown_function_raises(self):
        with pytest.raises(FrontendError, match="dataflow implementation"):

            @rp.program
            def bad(A: rp.float64[N], B: rp.float64[N]):
                B = np.fft.fft(A)

            bad.to_sdfg()

    def test_map_iteration_outside_program(self):
        with pytest.raises(TypeError):
            for i in rp.map[0:5]:
                pass

    def test_tasklet_outside_program(self):
        with pytest.raises(TypeError):
            with rp.tasklet:
                pass


class TestSDFGProperties:
    def test_to_sdfg_is_cached(self):
        @rp.program
        def f(A: rp.float64[N]):
            for i in rp.map[0:N]:
                A[i] = A[i] + 1

        assert f.to_sdfg() is f.to_sdfg()

    def test_sdfg_validates_and_serializes(self):
        @rp.program
        def f(A: rp.float64[N, M]):
            for i, j in rp.map[0:N, 0:M]:
                A[i, j] = A[i, j] * 2

        sdfg = f.to_sdfg()
        sdfg.validate()
        from repro.sdfg import SDFG

        assert SDFG.from_json(sdfg.to_json()).to_json() == sdfg.to_json()

    def test_scalar_float_argument(self):
        @rp.program
        def axpy(alpha: rp.float64, X: rp.float64[N], Y: rp.float64[N]):
            for i in rp.map[0:N]:
                with rp.tasklet:
                    a << alpha[0]
                    x << X[i]
                    yin << Y[i]
                    yout >> Y[i]
                    yout = a * x + yin

        X, Y = np.random.rand(10), np.random.rand(10)
        ref = 2.5 * X + Y
        axpy(2.5, X, Y)
        assert np.allclose(Y, ref)
