"""Cross-cutting integration and property tests.

These tie the subsystems together: random programs through both
execution paths, serialization round-trips over real workload SDFGs,
transformation chains preserving semantics under hypothesis-driven
sequencing, and the C++ backend cross-checked against Python on real
kernels.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro as rp
from repro.codegen import compile_sdfg
from repro.codegen.cpp_gen import compile_cpp, find_host_compiler
from repro.runtime import SDFGInterpreter
from repro.sdfg import SDFG, Memlet, dtypes
from repro.transformations import (
    MapExpansion,
    MapTiling,
    Vectorization,
    apply_transformations,
    enumerate_matches,
)

needs_cc = pytest.mark.skipif(find_host_compiler() is None, reason="no C++ compiler")

# --------------------------------------------------------------------------
# Random elementwise pipelines: codegen == interpreter == numpy.
# --------------------------------------------------------------------------

_OPS = [
    ("b = a + {c}", lambda x, c: x + c),
    ("b = a * {c}", lambda x, c: x * c),
    ("b = a - {c}", lambda x, c: x - c),
    ("b = max(a, {c})", lambda x, c: np.maximum(x, c)),
    ("b = min(a, {c})", lambda x, c: np.minimum(x, c)),
    ("b = a * a", lambda x, c: x * x),
]


@given(
    st.lists(
        st.tuples(st.integers(0, len(_OPS) - 1), st.floats(-2, 2, allow_nan=False)),
        min_size=1,
        max_size=4,
    ),
    st.integers(4, 24),
)
@settings(max_examples=25, deadline=None)
def test_random_pipeline_backends_agree(stages, n):
    sdfg = SDFG("pipeline")
    sdfg.add_array("x0", ("N",), dtypes.float64)
    for i in range(1, len(stages) + 1):
        if i == len(stages):
            sdfg.add_array(f"x{i}", ("N",), dtypes.float64)
        else:
            sdfg.add_transient(f"x{i}", ("N",), dtypes.float64, find_new_name=False)
    state = sdfg.add_state()
    nodes = {}
    for i, (op_idx, const) in enumerate(stages):
        code, _ = _OPS[op_idx]
        state.add_mapped_tasklet(
            f"stage{i}",
            {"i": "0:N"},
            inputs={"a": Memlet.simple(f"x{i}", "i")},
            code=code.format(c=repr(float(const))),
            outputs={"b": Memlet.simple(f"x{i + 1}", "i")},
            input_nodes={f"x{i}": nodes[f"x{i}"]} if f"x{i}" in nodes else None,
        )
        nodes[f"x{i + 1}"] = [
            node for node in state.data_nodes()
            if node.data == f"x{i + 1}" and state.in_edges(node)
        ][0]
    rng = np.random.RandomState(0)
    x0 = rng.rand(n)
    expected = x0.copy()
    for op_idx, const in stages:
        expected = _OPS[op_idx][1](expected, float(const))

    out_name = f"x{len(stages)}"
    cg = {"x0": x0.copy(), out_name: np.zeros(n)}
    compile_sdfg(sdfg)(**cg)
    np.testing.assert_allclose(cg[out_name], expected, rtol=1e-12)
    it = {"x0": x0.copy(), out_name: np.zeros(n)}
    SDFGInterpreter(sdfg, validate=False)(**it)
    np.testing.assert_allclose(it[out_name], expected, rtol=1e-12)


# --------------------------------------------------------------------------
# Transformation sequences preserve semantics.
# --------------------------------------------------------------------------

_XFORM_POOL = ["MapTiling", "MapExpansion", "MapCollapse", "Vectorization",
               "MapToForLoop"]


@given(st.lists(st.sampled_from(_XFORM_POOL), min_size=1, max_size=4))
@settings(max_examples=20, deadline=None)
def test_random_transformation_chain_preserves_semantics(chain):
    N = rp.symbol("N")

    sdfg = SDFG("xsem")
    sdfg.add_array("A", ("N", "N"), dtypes.float64)
    sdfg.add_array("B", ("N", "N"), dtypes.float64)
    st_ = sdfg.add_state()
    st_.add_mapped_tasklet(
        "t",
        {"i": "0:N", "j": "0:N"},
        inputs={"a": Memlet.simple("A", "i, j")},
        code="b = 2 * a + 1",
        outputs={"b": Memlet.simple("B", "i, j")},
    )
    for name in chain:
        apply_transformations(sdfg, name, validate=False)
    sdfg.propagate()
    sdfg.validate()
    A = np.random.RandomState(1).rand(9, 9)
    B = np.zeros((9, 9))
    compile_sdfg(sdfg)(A=A, B=B)
    np.testing.assert_allclose(B, 2 * A + 1)


# --------------------------------------------------------------------------
# Serialization round-trips over real workload SDFGs.
# --------------------------------------------------------------------------

@pytest.mark.parametrize("name", ["gemm", "atax", "jacobi-2d", "cholesky",
                                  "floyd-warshall"])
def test_polybench_serialization_roundtrip(name):
    from repro.workloads.polybench import get

    sdfg = get(name).make_sdfg()
    j1 = sdfg.to_json()
    back = SDFG.from_json(j1)
    back.validate()
    assert back.to_json() == j1
    # The deserialized SDFG also executes correctly.
    kernel = get(name)
    data = kernel.data()
    expected = {k: v.copy() for k, v in data.items()}
    kernel.ref_loops(expected, kernel.sizes)
    kwargs = dict(data)
    for sym in kernel.extra_symbols:
        kwargs[sym] = kernel.sizes[sym]
    back.compile()(**kwargs)
    for out in kernel.outputs:
        np.testing.assert_allclose(data[out], expected[out], rtol=1e-8, atol=1e-9)


def test_bfs_serialization_roundtrip():
    from repro.workloads.bfs import build_bfs_sdfg

    sdfg = build_bfs_sdfg(optimized=True)
    assert SDFG.from_json(sdfg.to_json()).to_json() == sdfg.to_json()


# --------------------------------------------------------------------------
# C++ backend differential on real kernels.
# --------------------------------------------------------------------------

@needs_cc
@pytest.mark.parametrize("name", ["gemm", "mvt"])
def test_cpp_backend_matches_python_on_polybench(name):
    from repro.workloads.polybench import get

    kernel = get(name)
    data_py = kernel.data()
    data_cpp = {k: v.copy() for k, v in data_py.items()}
    kernel.run_sdfg(data_py)
    sdfg = kernel.make_sdfg()
    comp = compile_cpp(sdfg)
    kwargs = dict(data_cpp)
    for sym in kernel.extra_symbols:
        kwargs[sym] = kernel.sizes[sym]
    comp(**kwargs)
    for out in kernel.outputs:
        np.testing.assert_allclose(data_cpp[out], data_py[out], rtol=1e-10)


# --------------------------------------------------------------------------
# Visualization sanity over transformed graphs.
# --------------------------------------------------------------------------

def test_dot_and_summary_after_transformations():
    N = rp.symbol("N")

    @rp.program
    def prog(A: rp.float64[N, N]):
        for i, j in rp.map[0:N, 0:N]:
            A[i, j] = A[i, j] * 2

    sdfg = prog.to_sdfg()
    apply_transformations(sdfg, MapTiling, options={"tile_sizes": (8,)})
    dot = sdfg.to_dot()
    assert "digraph" in dot and "trapezium" in dot
    assert "__tile_i" in sdfg.summary()


def test_transformation_enumeration_is_deterministic():
    from repro.workloads.polybench import get

    sdfg1 = get("gemm").make_sdfg()
    sdfg2 = get("gemm").make_sdfg()
    m1 = [type(m).__name__ for m in enumerate_matches(sdfg1, MapExpansion)]
    m2 = [type(m).__name__ for m in enumerate_matches(sdfg2, MapExpansion)]
    assert m1 == m2
