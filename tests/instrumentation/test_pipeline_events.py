"""Events from the compilation pipeline and the guarded optimizer:
phase timings, degradation diagnostics, and W6xx placement lint."""

import pytest

from repro.codegen.compiler import compile_sdfg
from repro.instrumentation import InstrumentationRecorder, InstrumentationType
from repro.sdfg import SDFG, InterstateEdge
from repro.sdfg.validation import validate_sdfg
from repro.transformations.guard import GuardedOptimizer
from repro.workloads import kernels


class TestCompileReport:
    def test_phase_timings_recorded(self):
        compiled = compile_sdfg(kernels.matmul_sdfg(), backend="python")
        rep = compiled.compile_report
        assert rep is not None and not rep.is_empty()
        flat = rep.flat()
        root = f"compile:{compiled.sdfg.name}"
        assert f"{root}/phase:validate" in flat
        assert f"{root}/phase:propagate" in flat
        assert f"{root}/phase:codegen[python]" in flat
        assert all(
            n.duration is not None and n.duration >= 0
            for p, n in flat.items()
            if "/phase:" in p
        )

    def test_external_recorder_absorbs_pipeline(self):
        rec = InstrumentationRecorder()
        compile_sdfg(kernels.matmul_sdfg(), backend="python", recorder=rec)
        assert rec.is_balanced()
        kinds = {node.kind for node in rec.root.children.values()}
        assert "compile" in kinds


class TestDegradationDiagnostics:
    def test_hops_carry_code_and_message(self):
        # The cpp backend needs a host toolchain; on any failure the hop
        # must carry the triggering diagnostic code and exception text.
        compiled = compile_sdfg(kernels.query_sdfg(), backend="cpp")
        if not compiled.degradation:
            pytest.skip("cpp backend compiled natively; no hop to inspect")
        for hop in compiled.degradation:
            assert hop["from"] and hop["to"]
            assert hop["error"]
            assert hop["code"], hop
            assert hop["message"], hop
            assert hop["reason"] == hop["message"].splitlines()[0]


class TestGuardTimings:
    def test_attempts_record_phase_timings(self):
        sdfg = kernels.matmul_sdfg()
        guard = GuardedOptimizer(sdfg, verify=True)
        guard.apply_to_fixpoint(["MapReduceFusion"], max_applications=5)
        assert guard.report.attempts
        for attempt in guard.report.attempts:
            assert "snapshot" in attempt.timings
            assert "apply" in attempt.timings
            assert all(v >= 0 for v in attempt.timings.values())
            assert attempt.to_json()["timings"] == attempt.timings
        applied = guard.report.applied()
        assert applied, guard.report.summary()
        assert "validate" in applied[0].timings
        assert "verify" in applied[0].timings

    def test_guard_recorder_balanced_and_reported(self):
        sdfg = kernels.matmul_sdfg()
        guard = GuardedOptimizer(sdfg)
        guard.apply("MapReduceFusion")
        assert guard.recorder.is_balanced()
        rep = guard.instrumentation_report()
        assert not rep.is_empty()
        flat = rep.flat()
        assert "transformation:MapReduceFusion" in flat
        assert "transformation:MapReduceFusion/phase:apply" in flat

    def test_external_recorder_threaded_through_auto(self):
        from repro.transformations.auto import auto_optimize_guarded

        rec = InstrumentationRecorder()
        report = auto_optimize_guarded(kernels.matmul_sdfg(), recorder=rec)
        assert report.attempts
        assert rec.is_balanced()
        assert any(
            node.kind == "transformation" for node in rec.root.children.values()
        )


class TestPlacementLint:
    def _lint_sdfg(self):
        sdfg = SDFG("lint")
        s0 = sdfg.add_state("main", is_start=True)
        s1 = sdfg.add_state("empty")
        sdfg.add_edge(s0, s1, InterstateEdge())
        return sdfg, s0, s1

    def test_w601_instrumented_empty_state(self):
        sdfg, _, s1 = self._lint_sdfg()
        s1.instrument = InstrumentationType.TIMER
        codes = {d.code for d in validate_sdfg(sdfg, collect_all=True)}
        assert "W601" in codes

    def test_w602_instrumented_disconnected_node(self):
        sdfg, s0, _ = self._lint_sdfg()
        t = s0.add_tasklet("t", {}, {}, "pass")
        t.instrument = InstrumentationType.COUNTER
        codes = {d.code for d in validate_sdfg(sdfg, collect_all=True)}
        assert "W602" in codes

    def test_w603_instrumented_unreachable_state(self):
        sdfg, _, _ = self._lint_sdfg()
        orphan = sdfg.add_state("orphan")
        orphan.instrument = InstrumentationType.TIMER
        codes = {d.code for d in validate_sdfg(sdfg, collect_all=True)}
        assert "W603" in codes

    def test_clean_instrumented_sdfg_has_no_w6xx(self):
        from repro.instrumentation import instrument_map_scopes

        sdfg = kernels.matmul_sdfg()
        sdfg.instrument = InstrumentationType.TIMER
        instrument_map_scopes(sdfg)
        codes = {d.code for d in validate_sdfg(sdfg, collect_all=True)}
        assert not codes & {"W601", "W602", "W603"}, codes

    def test_warnings_never_raise_in_fail_fast_mode(self):
        sdfg, _, s1 = self._lint_sdfg()
        s1.instrument = InstrumentationType.TIMER
        sdfg.validate()  # W601 present, but warnings don't raise

    def test_codes_registered(self):
        from repro.diagnostics import CODES

        for code in ("W601", "W602", "W603"):
            assert code in CODES
