"""Backend consistency: the interpreter and the generated-Python backend
must produce *structurally identical* instrumentation reports (same
event tree, same counts, same iteration totals, same bytes moved) for
the five fundamental kernels — only wall-clock durations may differ.
"""

import numpy as np
import pytest

from repro.codegen.compiler import compile_sdfg
from repro.instrumentation import (
    InstrumentationType,
    instrument_map_scopes,
)
from repro.workloads import kernels


def _case(name):
    """Fresh (sdfg, kwargs) for one fundamental kernel."""
    if name == "matmul":
        return kernels.matmul_sdfg(), kernels.matmul_data(12)
    if name == "jacobi2d":
        data = kernels.jacobi2d_data(8)
        return kernels.jacobi2d_sdfg(), {"A": data["A"], "T": 3}
    if name == "histogram":
        return kernels.histogram_sdfg(), kernels.histogram_data(8, 10, bins=8)
    if name == "query":
        return kernels.query_sdfg(), kernels.query_data(50)
    if name == "spmv":
        return kernels.spmv_sdfg(), kernels.spmv_data(10, 4)[0]
    raise KeyError(name)


def _run_instrumented(name, backend, itype=InstrumentationType.TIMER):
    sdfg, data = _case(name)
    sdfg.instrument = itype
    instrument_map_scopes(sdfg, itype)
    compiled = compile_sdfg(sdfg, backend=backend)
    assert compiled.backend == backend, compiled.degradation
    compiled(**data)
    return compiled.last_report


@pytest.mark.parametrize("kernel", kernels.KERNELS)
def test_interpreter_matches_python_backend(kernel):
    rep_py = _run_instrumented(kernel, "python")
    rep_interp = _run_instrumented(kernel, "interpreter")
    assert not rep_py.is_empty()
    assert not rep_interp.is_empty()
    assert rep_py.structure() == rep_interp.structure()


@pytest.mark.parametrize("kernel", kernels.KERNELS)
def test_volumes_match_across_backends(kernel):
    rep_py = _run_instrumented(kernel, "python")
    rep_interp = _run_instrumented(kernel, "interpreter")
    vols_py = {p: n.volume_bytes for p, _, n in rep_py.walk()}
    vols_int = {p: n.volume_bytes for p, _, n in rep_interp.walk()}
    assert vols_py == vols_int
    assert rep_py.total_volume() == rep_interp.total_volume()


def test_matmul_report_content():
    """GEMM with per-map timers + volumes: non-empty on both backends,
    identical event structure and byte counts (the PR's acceptance
    check)."""
    rep_py = _run_instrumented("matmul", "python")
    rep_interp = _run_instrumented("matmul", "interpreter")
    assert rep_py.structure() == rep_interp.structure()
    maps = [n for _, _, n in rep_py.walk() if n.kind == "map"]
    assert maps, "expected instrumented map scopes in the GEMM report"
    assert any(m.volume_bytes for m in maps)
    assert any(m.iterations for m in maps)
    # The SDFG-level timer carries wall-clock time on both backends.
    assert rep_py.total_duration() > 0
    assert rep_interp.total_duration() > 0


def test_counter_type_consistency():
    """COUNTER records counts+iterations but no time or volume."""
    rep_py = _run_instrumented("matmul", "python", InstrumentationType.COUNTER)
    rep_interp = _run_instrumented(
        "matmul", "interpreter", InstrumentationType.COUNTER
    )
    assert rep_py.structure() == rep_interp.structure()
    for _, _, node in rep_py.walk():
        assert node.duration is None
        assert node.volume_bytes is None


def test_memlet_volume_type_consistency():
    """MEMLET_VOLUME records volumes but no time."""
    rep_py = _run_instrumented(
        "matmul", "python", InstrumentationType.MEMLET_VOLUME
    )
    rep_interp = _run_instrumented(
        "matmul", "interpreter", InstrumentationType.MEMLET_VOLUME
    )
    assert rep_py.structure() == rep_interp.structure()
    assert rep_py.total_volume() > 0
    for _, _, node in rep_py.walk():
        assert node.duration is None


def test_instrumentation_does_not_change_results():
    data_plain = kernels.matmul_data(12)
    ref = kernels.matmul_reference(data_plain)
    sdfg = kernels.matmul_sdfg()
    sdfg.instrument = InstrumentationType.TIMER
    instrument_map_scopes(sdfg)
    compile_sdfg(sdfg, backend="python")(**data_plain)
    np.testing.assert_allclose(data_plain["C"], ref)


def test_instrumented_tasklet_disables_vectorized_path():
    """Per-firing tasklet events require loop lowering; results and the
    event tree must still match the interpreter."""
    from repro.sdfg.nodes import Tasklet

    def build():
        sdfg, data = _case("matmul")
        sdfg.instrument = InstrumentationType.COUNTER
        for state in sdfg.nodes():
            for node in state.nodes():
                if isinstance(node, Tasklet):
                    node.instrument = InstrumentationType.COUNTER
        return sdfg, data

    sdfg, data = build()
    compiled = compile_sdfg(sdfg, backend="python")
    compiled(**data)
    rep_py = compiled.last_report

    sdfg2, data2 = build()
    compiled2 = compile_sdfg(sdfg2, backend="interpreter")
    compiled2(**data2)
    rep_interp = compiled2.last_report

    assert rep_py.structure() == rep_interp.structure()
    tasklets = [n for _, _, n in rep_py.walk() if n.kind == "tasklet"]
    assert tasklets and all(t.count > 0 for t in tasklets)
    np.testing.assert_allclose(data["C"], data2["C"])


def test_uninstrumented_run_attaches_no_report():
    sdfg, data = _case("matmul")
    compiled = compile_sdfg(sdfg, backend="python")
    compiled(**data)
    assert compiled.last_report is None


def test_profile_env_times_whole_sdfg(monkeypatch):
    monkeypatch.setenv("REPRO_PROFILE", "1")
    sdfg, data = _case("matmul")
    compiled = compile_sdfg(sdfg, backend="python")
    compiled(**data)
    rep = compiled.last_report
    assert rep is not None and not rep.is_empty()
    assert rep.events[0].kind == "sdfg"
    assert rep.total_duration() > 0
