"""Concurrent-recording regression test (ISSUE 7 satellite): the
recorder is the shared event bus of a threaded daemon, so N threads
hammering one recorder must produce exact merged counts, per-thread
balanced stacks, and an uncorrupted tree."""

import threading

from repro.instrumentation.recorder import InstrumentationRecorder
from repro.telemetry.sink import TelemetrySink, install_sink, uninstall_sink

THREADS = 8
REPS = 200


def test_concurrent_enter_exit_counts_are_exact():
    recorder = InstrumentationRecorder()
    barrier = threading.Barrier(THREADS)
    balanced = [False] * THREADS

    def worker(tid):
        barrier.wait()  # maximize interleaving
        for i in range(REPS):
            recorder.enter("state", "shared_state")
            recorder.enter("map", f"map_t{tid}")
            recorder.exit(iterations=4, volume=32)
            recorder.event("cache", "shared_counter", itype="COUNTER")
            recorder.exit()
        balanced[tid] = recorder.is_balanced()

    threads = [threading.Thread(target=worker, args=(t,))
               for t in range(THREADS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    assert all(balanced), "every thread sees its own stack as balanced"
    assert recorder.is_balanced()

    state = recorder.root.children[("state", "shared_state")]
    assert state.count == THREADS * REPS
    assert state.duration is not None and state.duration > 0

    counter = state.children[("cache", "shared_counter")]
    assert counter.count == THREADS * REPS

    # Each thread's private map nested under the shared state, with
    # exact per-thread counts and summed measurements.
    for tid in range(THREADS):
        node = state.children[("map", f"map_t{tid}")]
        assert node.count == REPS
        assert node.iterations == REPS * 4
        assert node.volume_bytes == REPS * 32


def test_concurrent_absorb_and_report_do_not_corrupt():
    recorder = InstrumentationRecorder()
    stop = threading.Event()

    def absorber():
        local = InstrumentationRecorder()
        local.enter("compile", "pipeline")
        local.event("phase", "simplify", duration=0.001)
        local.exit()
        while not stop.is_set():
            recorder.absorb(local.root.children[("compile", "pipeline")])

    def reporter(out):
        while not stop.is_set():
            out.append(recorder.report("sdfg"))

    reports = []
    threads = [threading.Thread(target=absorber) for _ in range(3)]
    threads.append(threading.Thread(target=reporter, args=(reports,)))
    for t in threads:
        t.start()
    import time
    time.sleep(0.2)
    stop.set()
    for t in threads:
        t.join()

    node = recorder.root.children[("compile", "pipeline")]
    phase = node.children[("phase", "simplify")]
    assert phase.count == node.count, "subtree merges stayed atomic"
    assert reports, "report() ran concurrently without raising"


def test_threaded_exits_forward_to_telemetry_sink():
    sink = TelemetrySink(capacity=8192)
    previous = install_sink(sink)
    try:
        recorder = InstrumentationRecorder()

        def worker():
            for _ in range(50):
                recorder.enter("tasklet", "t")
                recorder.exit(volume=8)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    finally:
        install_sink(previous)
        if previous is None:
            uninstall_sink()

    events, _, dropped = sink.drain(0)
    assert dropped == 0
    timed = [e for e in events if e.kind == "tasklet"]
    assert len(timed) == 4 * 50
    assert all(e.value is not None and e.value >= 0 for e in timed)
    assert timed[0].fields == {"volume_bytes": 8}
