"""Recorder/report mechanics: aggregation, JSON round-trips, diffing,
serialization of instrumentation tags, and the ``repro.report`` CLI."""

import json

import pytest

from repro import report as report_cli
from repro.instrumentation import (
    InstrumentationRecorder,
    InstrumentationReport,
    InstrumentationType,
    diff_reports,
    instrument_map_scopes,
)
from repro.sdfg.serialize import sdfg_from_json, sdfg_to_json
from repro.workloads import kernels


def _sample_report():
    rec = InstrumentationRecorder()
    rec.enter("sdfg", "prog")
    rec.enter("map", "outer")
    rec.exit(iterations=10, volume=80)
    rec.enter("map", "outer")  # second execution merges into the same node
    rec.exit(iterations=10, volume=80)
    rec.event("phase", "validate", duration=0.25)
    rec.exit()
    assert rec.is_balanced()
    return rec.report("prog", backend="test")


class TestRecorder:
    def test_aggregation_merges_repeat_executions(self):
        rep = _sample_report()
        flat = rep.flat()
        outer = flat["sdfg:prog/map:outer"]
        assert outer.count == 2
        assert outer.iterations == 20
        assert outer.volume_bytes == 160

    def test_unbalanced_exit_raises(self):
        rec = InstrumentationRecorder()
        with pytest.raises(RuntimeError):
            rec.exit()

    def test_untimed_types_record_no_duration(self):
        rec = InstrumentationRecorder()
        rec.enter("map", "m", "COUNTER")
        rec.exit(iterations=5)
        node = next(iter(rec.root.children.values()))
        assert node.duration is None
        assert node.iterations == 5


class TestReportJSON:
    def test_round_trip_preserves_structure(self):
        rep = _sample_report()
        rep2 = InstrumentationReport.from_json(rep.to_json())
        assert rep2.structure() == rep.structure()
        assert rep2.sdfg == rep.sdfg
        assert rep2.backend == rep.backend

    def test_save_load(self, tmp_path):
        rep = _sample_report()
        path = tmp_path / "report.json"
        rep.save(str(path))
        rep2 = InstrumentationReport.load(str(path))
        assert rep2.structure() == rep.structure()
        # The file itself is plain JSON with a schema marker.
        obj = json.loads(path.read_text())
        assert obj["schema"] == 1

    def test_from_json_rejects_malformed(self):
        with pytest.raises(ValueError):
            InstrumentationReport.from_json({"not": "a report"})

    def test_kernel_report_round_trips(self):
        sdfg = kernels.matmul_sdfg()
        sdfg.instrument = InstrumentationType.TIMER
        instrument_map_scopes(sdfg)
        compiled = sdfg.compile()
        compiled(**kernels.matmul_data(8))
        rep = compiled.last_report
        rep2 = InstrumentationReport.from_json(
            json.loads(json.dumps(rep.to_json()))
        )
        assert rep2.structure() == rep.structure()


class TestDiff:
    def test_alignment_by_path(self):
        before, after = _sample_report(), _sample_report()
        rows = diff_reports(before, after)
        paths = [r.path for r in rows]
        assert "sdfg:prog/map:outer" in paths
        for row in rows:
            assert row.before is not None and row.after is not None

    def test_one_sided_elements(self):
        before = _sample_report()
        after = InstrumentationReport(sdfg="prog", backend="test")
        rows = diff_reports(before, after)
        assert all(r.after is None for r in rows)


class TestInstrumentSerialization:
    def test_tags_survive_json_round_trip(self):
        from repro.sdfg.nodes import MapEntry, Tasklet

        sdfg = kernels.matmul_sdfg()
        sdfg.instrument = InstrumentationType.TIMER
        for state in sdfg.nodes():
            state.instrument = InstrumentationType.COUNTER
            for node in state.nodes():
                if isinstance(node, MapEntry):
                    node.map.instrument = InstrumentationType.MEMLET_VOLUME
                elif isinstance(node, Tasklet):
                    node.instrument = InstrumentationType.TIMER

        restored = sdfg_from_json(sdfg_to_json(sdfg))
        assert restored.instrument == InstrumentationType.TIMER
        for state in restored.nodes():
            assert state.instrument == InstrumentationType.COUNTER
            for node in state.nodes():
                if isinstance(node, MapEntry):
                    assert node.map.instrument == InstrumentationType.MEMLET_VOLUME
                elif isinstance(node, Tasklet):
                    assert node.instrument == InstrumentationType.TIMER
        # Round-tripping again is stable (byte-identical serialization).
        assert sdfg_to_json(restored) == sdfg_to_json(sdfg)

    def test_default_tags_absent_do_not_break_old_json(self):
        sdfg = kernels.matmul_sdfg()
        obj = sdfg_to_json(sdfg)
        restored = sdfg_from_json(obj)
        assert restored.instrument == InstrumentationType.NONE


class TestCLI:
    def _saved_report(self, tmp_path, name="r.json"):
        rep = _sample_report()
        path = tmp_path / name
        rep.save(str(path))
        return str(path)

    def test_render_saved_report(self, tmp_path, capsys):
        path = self._saved_report(tmp_path)
        assert report_cli.main([path]) == 0
        out = capsys.readouterr().out
        assert "instrumentation report" in out
        assert "map outer" in out

    def test_diff_command(self, tmp_path, capsys):
        a = self._saved_report(tmp_path, "a.json")
        b = self._saved_report(tmp_path, "b.json")
        assert report_cli.main(["--diff", a, b]) == 0
        out = capsys.readouterr().out
        assert "report diff" in out
        assert "speedup" in out

    def test_check_nonempty_fails_on_empty(self, tmp_path):
        path = tmp_path / "empty.json"
        InstrumentationReport(sdfg="x", backend="t").save(str(path))
        assert report_cli.main([str(path), "--check-nonempty"]) == 1

    def test_malformed_file_fails(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        assert report_cli.main([str(path)]) == 1

    def test_no_arguments_prints_usage(self, capsys):
        assert report_cli.main([]) == 2

    def test_polybench_run(self, tmp_path, capsys):
        out_file = tmp_path / "gemm.json"
        rc = report_cli.main(
            ["--polybench", "gemm", "--save", str(out_file), "--check-nonempty"]
        )
        assert rc == 0
        rep = InstrumentationReport.load(str(out_file))
        assert not rep.is_empty()
        assert rep.total_duration() > 0
