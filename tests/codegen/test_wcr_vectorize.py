"""WCR-aware vectorization: histogram-shaped indirect updates lower to
unbuffered ufunc scatters (``np.add.at``), custom-WCR reductions degrade
to the loop path with a W701 diagnostic, and every lowering stays
bit-faithful to the reference interpreter."""

import numpy as np
import pytest

from repro.codegen import compile_sdfg
from repro.codegen.python_gen import PythonGenerator
from repro.codegen import pytranslate
from repro.library.sparse import CSRMatrix
from repro.runtime import SDFGInterpreter
from repro.sdfg import SDFG, Memlet, dtypes
from repro.sdfg.propagation import propagate_memlets_sdfg
from repro.sdfg.serialize import sdfg_from_json, sdfg_to_json
from repro.workloads import kernels


def generated_source(sdfg) -> str:
    work = sdfg_from_json(sdfg_to_json(sdfg))
    propagate_memlets_sdfg(work)
    return PythonGenerator(work).generate()


class TestDetector:
    def test_histogram_shape(self):
        code = "hh[min(int(v * B), B - 1)] += 1"
        det = pytranslate.detect_indexed_update(code, "hh")
        assert det is not None
        op, mini = det
        assert op == "sum"
        assert "__scatter_idx" in mini and "__scatter_val" in mini

    def test_min_assign_form(self):
        det = pytranslate.detect_indexed_update("hh[k] = min(hh[k], v)", "hh")
        assert det is not None and det[0] == "min"
        det = pytranslate.detect_indexed_update("hh[k] = max(v, hh[k])", "hh")
        assert det is not None and det[0] == "max"

    def test_rejects(self):
        # Value read back through the view: order-dependent.
        assert pytranslate.detect_indexed_update("hh[k] += hh[0]", "hh") is None
        # Multi-dimensional subscript.
        assert pytranslate.detect_indexed_update("hh[i, j] += 1", "hh") is None
        # Slice store.
        assert pytranslate.detect_indexed_update("hh[0:4] += 1", "hh") is None
        # Unsupported operator.
        assert pytranslate.detect_indexed_update("hh[k] -= 1", "hh") is None
        # Not the view connector.
        assert pytranslate.detect_indexed_update("zz[k] += 1", "hh") is None

    def test_cast_vectorization(self):
        out = pytranslate.vectorize_tasklet("y = int(x * 4.0)", {"x": "__x"})
        assert out == [("y", "np.asarray(__x * 4.0).astype(np.int64)")]
        vals = np.array([0.4, 1.9, -1.9])
        ns = {"np": np, "__x": vals}
        exec(f"y = {out[0][1]}", ns)
        assert np.array_equal(ns["y"], np.array([int(v * 4.0) for v in vals]))


class TestHistogramScatter:
    def test_scatter_in_generated_source(self):
        src = generated_source(kernels.histogram_sdfg())
        assert "np.add.at" in src
        assert "for i in range" not in src.split("def main")[1].split("np.add.at")[0]

    def test_vectorize_flag_off_uses_loop(self):
        work = sdfg_from_json(sdfg_to_json(kernels.histogram_sdfg()))
        propagate_memlets_sdfg(work)
        src = PythonGenerator(work, vectorize=False).generate()
        assert "np.add.at" not in src

    def test_matches_reference_and_interpreter(self):
        data = kernels.histogram_data(64, 48)
        ref = kernels.histogram_reference(data["img"], len(data["hist"]))
        compiled = compile_sdfg(kernels.histogram_sdfg())
        compiled(H=64, W=48, **data)
        assert np.array_equal(data["hist"], ref)

        d2 = kernels.histogram_data(64, 48)
        SDFGInterpreter(kernels.histogram_sdfg())(H=64, W=48, **d2)
        assert np.array_equal(d2["hist"], data["hist"])


class TestMinMaxScatter:
    def _minmax_sdfg(self, fn: str) -> SDFG:
        sdfg = SDFG(f"scatter_{fn}")
        sdfg.add_array("A", ("N",), dtypes.float64)
        sdfg.add_array("out", ("K",), dtypes.float64)
        st = sdfg.add_state()
        st.add_mapped_tasklet(
            "mm",
            {"i": "0:N"},
            inputs={
                "v": Memlet.simple("A", "i"),
                "acc": Memlet.simple("out", "0:K"),
            },
            code=f"b = int(v * K) % K\nacc[b] = {fn}(acc[b], v)",
            outputs={
                "accout": Memlet(
                    data="out", subset="0:K", volume=1, dynamic=True
                )
            },
            external_edges=True,
        )
        return sdfg

    @pytest.mark.parametrize("fn", ["min", "max"])
    def test_matches_interpreter(self, fn):
        sdfg = self._minmax_sdfg(fn)
        src = generated_source(sdfg)
        assert f"np.{'minimum' if fn == 'min' else 'maximum'}.at" in src
        rng = np.random.RandomState(0)
        A = rng.rand(256)
        init = np.full(8, 1e9 if fn == "min" else -1e9)
        cg = {"A": A.copy(), "out": init.copy()}
        it = {"A": A.copy(), "out": init.copy()}
        compile_sdfg(self._minmax_sdfg(fn))(N=256, K=8, **cg)
        SDFGInterpreter(self._minmax_sdfg(fn))(N=256, K=8, **it)
        np.testing.assert_allclose(cg["out"], it["out"], rtol=0, atol=0)


class TestCustomWCRReduce:
    def _sdfg(self) -> SDFG:
        sdfg = SDFG("customred")
        sdfg.add_array("A", ("M", "N"), dtypes.float64)
        sdfg.add_array("out", ("M",), dtypes.float64)
        st = sdfg.add_state()
        r = st.add_reduce("lambda a, b: a + 2 * b", axes=(1,))
        st.add_edge(st.add_read("A"), r, Memlet.simple("A", "0:M, 0:N"), None, "IN_1")
        st.add_edge(r, st.add_write("out"), Memlet.simple("out", "0:M"), "OUT_1", None)
        return sdfg

    def test_degrades_with_w701_instead_of_raising(self):
        compiled = compile_sdfg(self._sdfg())
        assert compiled.backend == "python", "must not fall back to interpreter"
        codes = [w.code for w in compiled.codegen_warnings]
        assert "W701" in codes

    def test_matches_interpreter(self):
        A = np.random.RandomState(1).rand(5, 7)
        cg = {"A": A.copy(), "out": np.zeros(5)}
        it = {"A": A.copy(), "out": np.zeros(5)}
        compile_sdfg(self._sdfg())(**cg)
        SDFGInterpreter(self._sdfg())(**it)
        np.testing.assert_allclose(cg["out"], it["out"], rtol=1e-12)


class TestFundamentalKernelsStillMatch:
    """The five fundamental kernels stay faithful to the interpreter."""

    def _run_both(self, sdfg, syms, data):
        cg = {k: (v.copy() if isinstance(v, np.ndarray) else v) for k, v in data.items()}
        it = {k: (v.copy() if isinstance(v, np.ndarray) else v) for k, v in data.items()}
        compile_sdfg(sdfg)(**syms, **cg)
        SDFGInterpreter(sdfg)(**syms, **it)
        for k, v in cg.items():
            if isinstance(v, np.ndarray):
                np.testing.assert_allclose(v, it[k], rtol=0, atol=1e-8, err_msg=k)

    def test_matmul(self):
        self._run_both(kernels.matmul_sdfg(), {}, kernels.matmul_data(24))

    def test_jacobi2d(self):
        self._run_both(
            kernels.jacobi2d_sdfg(), {"T": 4}, kernels.jacobi2d_data(16)
        )

    def test_histogram(self):
        self._run_both(
            kernels.histogram_sdfg(), {"H": 32, "W": 24}, kernels.histogram_data(32, 24)
        )

    def test_query(self):
        self._run_both(kernels.query_sdfg(), {}, kernels.query_data(512))

    def test_spmv(self):
        data, _csr = kernels.spmv_data(64, 8)
        self._run_both(kernels.spmv_sdfg(), {}, data)
