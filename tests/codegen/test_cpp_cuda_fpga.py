"""Tests for the C++ (compiled via gcc when available), CUDA, and HLS
backends."""

import numpy as np
import pytest

from repro.codegen import generate_code
from repro.codegen.common import CodegenError
from repro.codegen.cpp_gen import compile_cpp, find_host_compiler
from repro.codegen.py2cpp import Py2Cpp
from repro.sdfg import (
    SDFG,
    Memlet,
    ScheduleType,
    StorageType,
    dtypes,
)

needs_cc = pytest.mark.skipif(
    find_host_compiler() is None, reason="no host C++ compiler"
)


def vadd(storage=StorageType.Default, schedule=ScheduleType.Default, name="vadd"):
    sdfg = SDFG(name)
    sdfg.add_array("A", ("N",), dtypes.float64, storage=storage)
    sdfg.add_array("B", ("N",), dtypes.float64, storage=storage)
    sdfg.add_array("C", ("N",), dtypes.float64, storage=storage)
    st = sdfg.add_state("main")
    st.add_mapped_tasklet(
        "add",
        {"i": "0:N"},
        inputs={"a": Memlet.simple("A", "i"), "b": Memlet.simple("B", "i")},
        code="c = a + b",
        outputs={"c": Memlet.simple("C", "i")},
        schedule=schedule,
    )
    return sdfg


class TestPy2Cpp:
    def test_simple_assignment(self):
        lines = Py2Cpp(declared={"a": "double", "b": "double"}).convert("b = a * 2")
        assert lines == ["b = (a * 2);"]

    def test_local_gets_auto(self):
        lines = Py2Cpp().convert("x = 1\ny = x + 2")
        assert lines[0].startswith("auto x = ")
        assert lines[1].startswith("auto y = ")

    def test_if_statement(self):
        lines = Py2Cpp(declared={"o": "double", "v": "double"}).convert(
            "if v > 0:\n    o = v\nelse:\n    o = -v"
        )
        joined = "\n".join(lines)
        assert "if (((v > 0))) {" in joined and "} else {" in joined

    def test_ternary(self):
        lines = Py2Cpp(declared={"o": "double", "a": "double"}).convert(
            "o = a if a > 0 else 0.0"
        )
        assert "?" in lines[0]

    def test_min_max_math(self):
        lines = Py2Cpp(declared={"o": "double", "a": "double"}).convert(
            "o = min(a, 1.0) + math.sqrt(a)"
        )
        assert "std::min<double>" in lines[0] and "std::sqrt" in lines[0]

    def test_subscript(self):
        lines = Py2Cpp(declared={"o": "double", "w": "double"}).convert(
            "o = w[0] - 2*w[1] + w[2]"
        )
        assert "w[0]" in lines[0]

    def test_unsupported_rejected(self):
        with pytest.raises(CodegenError):
            Py2Cpp().convert("x = {1: 2}")
        with pytest.raises(CodegenError):
            Py2Cpp().convert("for i in range(3): pass")


class TestCppStructure:
    def test_signature_and_state_machine(self):
        src = generate_code(vadd(), "cpp")
        assert 'extern "C" void vadd(' in src
        assert "double* A" in src and "long long N" in src
        assert "__state_0:" in src and "goto __exit" in src

    def test_openmp_for_multicore(self):
        src = generate_code(
            vadd(schedule=ScheduleType.CPU_Multicore, name="vaddmc"), "cpp"
        )
        assert "#pragma omp parallel for" in src

    def test_wcr_becomes_atomic_in_parallel(self):
        sdfg = SDFG("dotc")
        sdfg.add_array("x", ("N",), dtypes.float64)
        sdfg.add_array("r", (1,), dtypes.float64)
        st = sdfg.add_state()
        st.add_mapped_tasklet(
            "d",
            {"i": "0:N"},
            inputs={"a": Memlet.simple("x", "i")},
            code="o = a * a",
            outputs={"o": Memlet(data="r", subset="0", wcr="sum")},
            schedule=ScheduleType.CPU_Multicore,
        )
        src = generate_code(sdfg, "cpp")
        assert "#pragma omp atomic" in src

    def test_transient_allocation(self):
        sdfg = vadd(name="vaddt")
        sdfg.add_transient("tmp", ("N",), dtypes.float64, find_new_name=False)
        st = sdfg.start_state
        st.add_nedge(st.add_read("A"), st.add_access("tmp"))
        src = generate_code(sdfg, "cpp")
        assert "new double[" in src and "delete[] tmp;" in src


@needs_cc
class TestCppExecution:
    def test_vadd(self):
        comp = compile_cpp(vadd(name="vaddx"))
        A, B, C = np.random.rand(64), np.random.rand(64), np.zeros(64)
        comp(A=A, B=B, C=C)
        assert np.allclose(C, A + B)

    def test_matmul_wcr(self):
        sdfg = SDFG("mmx")
        sdfg.add_array("A", ("M", "K"), dtypes.float64)
        sdfg.add_array("B", ("K", "N"), dtypes.float64)
        sdfg.add_array("C", ("M", "N"), dtypes.float64)
        st = sdfg.add_state()
        st.add_mapped_tasklet(
            "mm",
            {"i": "0:M", "j": "0:N", "k": "0:K"},
            inputs={"a": Memlet.simple("A", "i, k"), "b": Memlet.simple("B", "k, j")},
            code="o = a * b",
            outputs={"o": Memlet(data="C", subset="i, j", wcr="sum")},
        )
        sdfg.validate()
        comp = compile_cpp(sdfg)
        A, B = np.random.rand(6, 4), np.random.rand(4, 5)
        C = np.zeros((6, 5))
        comp(A=A, B=B, C=C)
        assert np.allclose(C, A @ B)

    def test_state_loop(self):
        sdfg = SDFG("loopx")
        sdfg.add_array("v", (1,), dtypes.float64)
        sdfg.add_symbol("T")
        body = sdfg.add_state("body")
        t = body.add_tasklet("inc", ["a"], ["b"], "b = a + 1")
        body.add_edge(body.add_read("v"), t, Memlet.simple("v", "0"), None, "a")
        body.add_edge(t, body.add_write("v"), Memlet.simple("v", "0"), "b", None)
        init = sdfg.add_state("init", is_start=True)
        sdfg.add_loop(init, body, None, "k", 0, "k < T", "k + 1")
        comp = compile_cpp(sdfg)
        v = np.zeros(1)
        comp(v=v, T=17)
        assert v[0] == 17

    def test_stencil_pointer_connector(self):
        sdfg = SDFG("stencilx")
        sdfg.add_array("A", ("N",), dtypes.float64)
        sdfg.add_array("B", ("N",), dtypes.float64)
        st = sdfg.add_state()
        st.add_mapped_tasklet(
            "lap",
            {"i": "1:N-1"},
            inputs={"w": Memlet.simple("A", "i-1:i+2")},
            code="b = w[0] - 2*w[1] + w[2]",
            outputs={"b": Memlet.simple("B", "i")},
        )
        comp = compile_cpp(sdfg)
        A = np.random.rand(40)
        B = np.zeros(40)
        comp(A=A, B=B)
        assert np.allclose(B[1:-1], A[:-2] - 2 * A[1:-1] + A[2:])

    def test_reduce_node(self):
        sdfg = SDFG("redx")
        sdfg.add_array("A", ("M", "N"), dtypes.float64)
        sdfg.add_array("out", ("M",), dtypes.float64)
        st = sdfg.add_state()
        r = st.add_reduce("sum", axes=(1,))
        st.add_edge(st.add_read("A"), r, Memlet.simple("A", "0:M, 0:N"), None, "IN_1")
        st.add_edge(r, st.add_write("out"), Memlet.simple("out", "0:M"), "OUT_1", None)
        comp = compile_cpp(sdfg)
        A = np.random.rand(5, 9)
        out = np.zeros(5)
        comp(A=A, out=out)
        assert np.allclose(out, A.sum(axis=1))


class TestCudaStructure:
    def gpu_vadd(self):
        return vadd(
            storage=StorageType.GPU_Global,
            schedule=ScheduleType.GPU_Device,
            name="vaddgpu",
        )

    def test_kernel_emitted(self):
        src = generate_code(self.gpu_vadd(), "cuda")
        assert "__global__ void" in src
        assert "blockIdx.x * blockDim.x + threadIdx.x" in src
        assert "<<<" in src

    def test_device_allocation(self):
        src = generate_code(self.gpu_vadd(), "cuda")
        assert src.count("cudaMalloc") == 3
        assert "cudaFree" in src

    def test_wcr_atomic(self):
        sdfg = SDFG("dotg")
        sdfg.add_array("x", ("N",), dtypes.float64, storage=StorageType.GPU_Global)
        sdfg.add_array("r", (1,), dtypes.float64, storage=StorageType.GPU_Global)
        st = sdfg.add_state()
        st.add_mapped_tasklet(
            "d",
            {"i": "0:N"},
            inputs={"a": Memlet.simple("x", "i")},
            code="o = a * a",
            outputs={"o": Memlet(data="r", subset="0", wcr="sum")},
            schedule=ScheduleType.GPU_Device,
        )
        src = generate_code(sdfg, "cuda")
        assert "atomicAdd" in src

    def test_copy_volume_from_propagated_memlets(self):
        # The H2D copy must be sized by the propagated footprint: this is
        # the data-movement precision the paper credits for GPU speedups.
        sdfg = SDFG("copyvol")
        sdfg.add_array("A", ("N",), dtypes.float64)  # host
        sdfg.add_array("gA", ("N",), dtypes.float64, storage=StorageType.GPU_Global, transient=True)
        st = sdfg.add_state()
        a = st.add_read("A")
        ga = st.add_access("gA")
        st.add_edge(a, ga, Memlet(data="A", subset="0:N//2", other_subset="0:N//2"), None, None)
        src = generate_code(sdfg, "cuda")
        assert "cudaMemcpyAsync" in src
        assert "(N // 2)" in src.replace("((N) / (2))", "(N // 2)")


class TestFPGAStructure:
    def test_pipeline_pragma(self):
        sdfg = vadd(storage=StorageType.FPGA_Global, name="vaddfp")
        src = generate_code(sdfg, "fpga")
        assert "#pragma HLS PIPELINE II=1" in src
        assert "m_axi" in src

    def test_ddr_bank_spread(self):
        sdfg = vadd(storage=StorageType.FPGA_Global, name="vaddfp2")
        src = generate_code(sdfg, "fpga")
        # A, B, C spread across gmem banks (VCU1525 has 4 DDR4 banks).
        assert "bundle=gmem0" in src and "bundle=gmem1" in src and "bundle=gmem2" in src

    def test_systolic_array_from_pe_indexed_streams(self):
        # Paper Fig. 7: map over PEs communicating via pipes[p] -> pipes[p+1].
        sdfg = SDFG("systolic")
        sdfg.add_array("A", ("N",), dtypes.float64, storage=StorageType.FPGA_Global)
        sdfg.add_stream("pipes", dtypes.float64, shape=("P + 1",), transient=True)
        sdfg.add_symbol("P")
        st = sdfg.add_state()
        me, mx = st.add_map("pes", {"p": "0:P"}, schedule=ScheduleType.FPGA_Device)
        t = st.add_tasklet("pe", ["inp"], ["out"], "out = inp + 1")
        pin = st.add_access("pipes")
        pout = st.add_access("pipes")
        st.add_memlet_path(
            pin, me, t, memlet=Memlet(data="pipes", subset="p", dynamic=True), dst_conn="inp"
        )
        st.add_memlet_path(
            t, mx, pout, memlet=Memlet(data="pipes", subset="p+1", dynamic=True), src_conn="out"
        )
        src = generate_code(sdfg, "fpga")
        assert "systolic array" in src
        assert "#pragma HLS UNROLL" in src
        assert "hls::stream<double> pipes" in src

    def test_internal_stream_fifo(self):
        sdfg = SDFG("fifo")
        sdfg.add_stream("S", dtypes.float32, buffer_size=32, transient=True)
        sdfg.add_array("A", ("N",), dtypes.float32, storage=StorageType.FPGA_Global)
        st = sdfg.add_state()
        st.add_nedge(st.add_read("A"), st.add_access("S"))
        src = generate_code(sdfg, "fpga")
        assert "#pragma HLS STREAM variable=S depth=32" in src
