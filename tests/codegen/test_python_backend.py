"""Tests for the Python/NumPy code generator, incl. differential tests
against the reference interpreter (the semantic ground truth)."""

import numpy as np
import pytest

from repro.codegen import compile_sdfg, generate_code
from repro.runtime import SDFGInterpreter
from repro.sdfg import SDFG, InterstateEdge, Memlet, dtypes


def run_both(sdfg, **kwargs):
    """Run codegen and interpreter on separate copies of the outputs."""
    comp = compile_sdfg(sdfg)
    interp = SDFGInterpreter(sdfg, validate=False)
    cg = {k: (v.copy() if isinstance(v, np.ndarray) else v) for k, v in kwargs.items()}
    it = {k: (v.copy() if isinstance(v, np.ndarray) else v) for k, v in kwargs.items()}
    comp(**cg)
    interp(**it)
    return cg, it, comp


def assert_same(cg, it):
    for k in cg:
        if isinstance(cg[k], np.ndarray):
            np.testing.assert_allclose(cg[k], it[k], rtol=1e-12, err_msg=k)


class TestVectorizedLowering:
    def test_elementwise(self):
        sdfg = SDFG("ew")
        sdfg.add_array("A", ("N",), dtypes.float64)
        sdfg.add_array("B", ("N",), dtypes.float64)
        st = sdfg.add_state()
        st.add_mapped_tasklet(
            "f",
            {"i": "0:N"},
            inputs={"a": Memlet.simple("A", "i")},
            code="b = a * a + 1",
            outputs={"b": Memlet.simple("B", "i")},
        )
        comp = compile_sdfg(sdfg)
        assert "vectorized map" in comp.source
        A, B = np.random.rand(50), np.zeros(50)
        comp(A=A, B=B)
        assert np.allclose(B, A * A + 1)

    def test_2d_offdiagonal_affine(self):
        # B[i, j] = A[j, 2*i + 1] — transposed, strided, offset.
        sdfg = SDFG("aff")
        sdfg.add_array("A", ("N", "2*N + 1"), dtypes.float64)
        sdfg.add_array("B", ("N", "N"), dtypes.float64)
        st = sdfg.add_state()
        st.add_mapped_tasklet(
            "t",
            {"i": "0:N", "j": "0:N"},
            inputs={"a": Memlet.simple("A", "j, 2*i + 1")},
            code="b = a",
            outputs={"b": Memlet.simple("B", "i, j")},
        )
        comp = compile_sdfg(sdfg)
        assert "vectorized map" in comp.source
        N = 6
        A = np.random.rand(N, 2 * N + 1)
        B = np.zeros((N, N))
        comp(A=A, B=B)
        expected = np.empty((N, N))
        for i in range(N):
            for j in range(N):
                expected[i, j] = A[j, 2 * i + 1]
        assert np.allclose(B, expected)

    def test_params_in_code(self):
        sdfg = SDFG("idx")
        sdfg.add_array("B", ("N", "M"), dtypes.float64)
        st = sdfg.add_state()
        st.add_mapped_tasklet(
            "t",
            {"i": "0:N", "j": "0:M"},
            inputs={},
            code="b = i * 10 + j",
            outputs={"b": Memlet.simple("B", "i, j")},
        )
        comp = compile_sdfg(sdfg)
        B = np.zeros((3, 4))
        comp(B=B)
        expected = np.arange(3)[:, None] * 10 + np.arange(4)[None, :]
        assert np.allclose(B, expected)

    def test_wcr_reduction_missing_param(self):
        # Row sums: j is absent from output subset -> reduce over axis.
        sdfg = SDFG("rowsum")
        sdfg.add_array("A", ("N", "M"), dtypes.float64)
        sdfg.add_array("r", ("N",), dtypes.float64)
        st = sdfg.add_state()
        st.add_mapped_tasklet(
            "t",
            {"i": "0:N", "j": "0:M"},
            inputs={"a": Memlet.simple("A", "i, j")},
            code="o = a",
            outputs={"o": Memlet(data="r", subset="i", wcr="sum")},
        )
        comp = compile_sdfg(sdfg)
        A = np.random.rand(5, 7)
        r = np.zeros(5)
        comp(A=A, r=r)
        assert np.allclose(r, A.sum(axis=1))

    def test_conditional_expression_vectorizes(self):
        sdfg = SDFG("relu")
        sdfg.add_array("A", ("N",), dtypes.float64)
        sdfg.add_array("B", ("N",), dtypes.float64)
        st = sdfg.add_state()
        st.add_mapped_tasklet(
            "t",
            {"i": "0:N"},
            inputs={"a": Memlet.simple("A", "i")},
            code="b = a if a > 0 else 0.0",
            outputs={"b": Memlet.simple("B", "i")},
        )
        comp = compile_sdfg(sdfg)
        assert "np.where" in comp.source
        A = np.random.randn(40)
        B = np.zeros(40)
        comp(A=A, B=B)
        assert np.allclose(B, np.maximum(A, 0))

    def test_min_max_translate_to_ufuncs(self):
        sdfg = SDFG("clamp")
        sdfg.add_array("A", ("N",), dtypes.float64)
        sdfg.add_array("B", ("N",), dtypes.float64)
        st = sdfg.add_state()
        st.add_mapped_tasklet(
            "t",
            {"i": "0:N"},
            inputs={"a": Memlet.simple("A", "i")},
            code="b = min(max(a, 0.2), 0.8)",
            outputs={"b": Memlet.simple("B", "i")},
        )
        comp = compile_sdfg(sdfg)
        A = np.random.rand(30)
        B = np.zeros(30)
        comp(A=A, B=B)
        assert np.allclose(B, np.clip(A, 0.2, 0.8))


class TestEinsumLowering:
    def test_matmul_einsum_when_marked(self):
        sdfg = SDFG("mm")
        sdfg.add_array("A", ("M", "K"), dtypes.float64)
        sdfg.add_array("B", ("K", "N"), dtypes.float64)
        sdfg.add_array("C", ("M", "N"), dtypes.float64)
        st = sdfg.add_state()
        _, me, _ = st.add_mapped_tasklet(
            "mm",
            {"i": "0:M", "j": "0:N", "k": "0:K"},
            inputs={"a": Memlet.simple("A", "i, k"), "b": Memlet.simple("B", "k, j")},
            code="o = a * b",
            outputs={"o": Memlet(data="C", subset="i, j", wcr="sum")},
        )
        me.map.vectorized = True
        comp = compile_sdfg(sdfg)
        assert "einsum" in comp.source
        A, B = np.random.rand(5, 7), np.random.rand(7, 6)
        C = np.zeros((5, 6))
        comp(A=A, B=B, C=C)
        assert np.allclose(C, A @ B)

    def test_unmarked_map_avoids_einsum(self):
        sdfg = SDFG("mm2")
        sdfg.add_array("A", ("M", "K"), dtypes.float64)
        sdfg.add_array("B", ("K", "N"), dtypes.float64)
        sdfg.add_array("C", ("M", "N"), dtypes.float64)
        st = sdfg.add_state()
        st.add_mapped_tasklet(
            "mm",
            {"i": "0:M", "j": "0:N", "k": "0:K"},
            inputs={"a": Memlet.simple("A", "i, k"), "b": Memlet.simple("B", "k, j")},
            code="o = a * b",
            outputs={"o": Memlet(data="C", subset="i, j", wcr="sum")},
        )
        comp = compile_sdfg(sdfg)
        assert "einsum" not in comp.source
        A, B = np.random.rand(4, 3), np.random.rand(3, 5)
        C = np.zeros((4, 5))
        comp(A=A, B=B, C=C)
        assert np.allclose(C, A @ B)


class TestLoopFallback:
    def test_indirect_access(self):
        sdfg = SDFG("gather")
        sdfg.add_array("idx", ("N",), dtypes.int64)
        sdfg.add_array("v", ("M",), dtypes.float64)
        sdfg.add_array("out", ("N",), dtypes.float64)
        st = sdfg.add_state()
        st.add_mapped_tasklet(
            "g",
            {"i": "0:N"},
            inputs={
                "ii": Memlet.simple("idx", "i"),
                "vv": Memlet(data="v", subset="0:M", volume=1),
            },
            code="o = vv[ii]",
            outputs={"o": Memlet.simple("out", "i")},
        )
        comp = compile_sdfg(sdfg)
        assert "for i in range" in comp.source
        idx = np.array([3, 1, 4, 1, 5])
        v = np.arange(10.0)
        out = np.zeros(5)
        comp(idx=idx, v=v, out=out)
        assert np.allclose(out, v[idx])

    def test_dynamic_write_skipped_when_unassigned(self):
        sdfg = SDFG("filter")
        sdfg.add_array("A", ("N",), dtypes.float64)
        sdfg.add_array("out", ("N",), dtypes.float64)
        st = sdfg.add_state()
        st.add_mapped_tasklet(
            "f",
            {"i": "0:N"},
            inputs={"a": Memlet(data="A", subset="i"), "prev": Memlet(data="out", subset="i", volume=1)},
            code="if a > 0.5:\n    o = a",
            outputs={"o": Memlet(data="out", subset="i", dynamic=True)},
        )
        comp = compile_sdfg(sdfg)
        A = np.random.rand(32)
        out = np.full(32, -1.0)
        comp(A=A, out=out)
        expected = np.where(A > 0.5, A, -1.0)
        assert np.allclose(out, expected)

    def test_connector_colliding_with_array_name(self):
        sdfg = SDFG("collide")
        sdfg.add_array("A", ("N",), dtypes.float64)
        sdfg.add_array("B", ("N",), dtypes.float64)
        st = sdfg.add_state()
        # Connector named 'A' shadows the container name.
        st.add_mapped_tasklet(
            "t",
            {"i": "0:N"},
            inputs={"A": Memlet(data="B", subset="0:N", volume=1)},
            code="o = A[i] * 2",
            outputs={"o": Memlet.simple("A", "i")},
        )
        comp = compile_sdfg(sdfg)
        A, B = np.zeros(8), np.random.rand(8)
        comp(A=A, B=B)
        assert np.allclose(A, B * 2)


class TestStateMachineCodegen:
    def test_loop(self):
        sdfg = SDFG("loop")
        sdfg.add_array("v", (1,), dtypes.float64)
        sdfg.add_symbol("T")
        body = sdfg.add_state("body")
        t = body.add_tasklet("inc", ["a"], ["b"], "b = a + 2")
        body.add_edge(body.add_read("v"), t, Memlet.simple("v", "0"), None, "a")
        body.add_edge(t, body.add_write("v"), Memlet.simple("v", "0"), "b", None)
        init = sdfg.add_state("init", is_start=True)
        sdfg.add_loop(init, body, None, "k", 0, "k < T", "k + 1")
        comp = compile_sdfg(sdfg)
        v = np.zeros(1)
        comp(v=v, T=9)
        assert v[0] == 18

    def test_data_dependent_branching(self):
        sdfg = SDFG("branch")
        sdfg.add_array("C", (1,), dtypes.float64)
        start = sdfg.add_state("start")
        yes = sdfg.add_state("yes")
        t = yes.add_tasklet("t", [], ["o"], "o = 1.0")
        yes.add_edge(t, yes.add_write("C"), Memlet.simple("C", "0"), "o", None)
        no = sdfg.add_state("no")
        t2 = no.add_tasklet("t", [], ["o"], "o = -1.0")
        no.add_edge(t2, no.add_write("C"), Memlet.simple("C", "0"), "o", None)
        sdfg.add_edge(start, yes, InterstateEdge(condition="C > 10"))
        sdfg.add_edge(start, no, InterstateEdge(condition="C <= 10"))
        comp = compile_sdfg(sdfg)
        c = np.array([50.0])
        comp(C=c)
        assert c[0] == 1.0
        c = np.array([3.0])
        comp(C=c)
        assert c[0] == -1.0


class TestDifferential:
    """Same SDFG through codegen and interpreter must agree exactly."""

    def test_jacobi_sweep(self):
        sdfg = SDFG("jac")
        sdfg.add_array("A", ("N", "N"), dtypes.float64)
        sdfg.add_array("B", ("N", "N"), dtypes.float64)
        st = sdfg.add_state()
        st.add_mapped_tasklet(
            "jac",
            {"i": "1:N-1", "j": "1:N-1"},
            inputs={
                "c": Memlet.simple("A", "i, j"),
                "n": Memlet.simple("A", "i-1, j"),
                "s": Memlet.simple("A", "i+1, j"),
                "w": Memlet.simple("A", "i, j-1"),
                "e": Memlet.simple("A", "i, j+1"),
            },
            code="o = 0.2 * (c + n + s + w + e)",
            outputs={"o": Memlet.simple("B", "i, j")},
        )
        A = np.random.rand(12, 12)
        B = np.zeros((12, 12))
        cg, it, comp = run_both(sdfg, A=A, B=B)
        assert_same(cg, it)
        assert "vectorized" in comp.source

    def test_histogram_wcr_indirect(self):
        sdfg = SDFG("hist")
        sdfg.add_array("img", ("N",), dtypes.float64)
        sdfg.add_array("hist", ("B_",), dtypes.int64)
        st = sdfg.add_state()
        st.add_mapped_tasklet(
            "h",
            {"i": "0:N"},
            inputs={
                "v": Memlet.simple("img", "i"),
                "hh": Memlet(data="hist", subset="0:B_", volume=1, dynamic=True),
            },
            code="hh[min(int(v * B_), B_ - 1)] += 1",
            outputs={"hh_out": Memlet(data="hist", subset="0:B_", volume=1, dynamic=True)},
        )
        # hh is an in/out pointer-style connector: read-modify-write.
        img = np.random.rand(100)
        hist = np.zeros(8, np.int64)
        cg, it, comp = run_both(sdfg, img=img, hist=hist)
        assert_same(cg, it)
        assert cg["hist"].sum() == 100

    def test_multistate_accumulation(self):
        sdfg = SDFG("acc")
        sdfg.add_array("A", ("N",), dtypes.float64)
        sdfg.add_array("total", (1,), dtypes.float64)
        sdfg.add_symbol("T")
        body = sdfg.add_state("body")
        body.add_mapped_tasklet(
            "sum",
            {"i": "0:N"},
            inputs={"a": Memlet.simple("A", "i")},
            code="o = a",
            outputs={"o": Memlet(data="total", subset="0", wcr="sum")},
        )
        init = sdfg.add_state("init", is_start=True)
        sdfg.add_loop(init, body, None, "t", 0, "t < T", "t + 1")
        A = np.random.rand(10)
        total = np.zeros(1)
        cg, it, _ = run_both(sdfg, A=A, total=total, T=3)
        assert_same(cg, it)
        assert np.allclose(cg["total"][0], 3 * A.sum())


class TestGeneratedSourceShape:
    def test_source_is_valid_python(self):
        sdfg = SDFG("src")
        sdfg.add_array("A", ("N",), dtypes.float64)
        st = sdfg.add_state()
        st.add_mapped_tasklet(
            "t",
            {"i": "0:N"},
            inputs={"a": Memlet.simple("A", "i")},
            code="b = a + 1",
            outputs={"b": Memlet.simple("A", "i")},
        )
        src = generate_code(sdfg, "python")
        compile(src, "<gen>", "exec")  # must parse

    def test_transient_allocation_in_source(self):
        sdfg = SDFG("tr")
        sdfg.add_array("A", ("N",), dtypes.float64)
        sdfg.add_transient("tmp", ("N", "N"), dtypes.float32, find_new_name=False)
        st = sdfg.add_state()
        st.add_nedge(st.add_read("A"), st.add_access("tmp"))
        src = generate_code(sdfg, "python")
        assert "np.zeros((N, N,), dtype=np.float32)" in src
