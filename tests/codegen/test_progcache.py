"""Persistent compiled-program cache: keying, warm compiles, disk tier,
quarantine, and the cache-selection knobs."""

import json
import os

import numpy as np
import pytest

from repro.codegen import compile_sdfg
from repro.codegen import progcache
from repro.codegen.progcache import (
    ProgramCache,
    ProgramCacheEntry,
    program_key,
    resolve_cache,
)
from repro.sdfg import SDFG, Memlet, dtypes
from repro.sdfg.serialize import content_hash, sdfg_from_json, sdfg_to_json
from repro.workloads import kernels


def phases(compiled):
    root = f"compile:{compiled.sdfg.name}"
    prefix = f"{root}/phase:"
    return sorted(
        p[len(prefix) :]
        for p in compiled.compile_report.flat()
        if p.startswith(prefix)
    )


class TestKeying:
    def test_mutations_change_key(self):
        base = kernels.matmul_sdfg()
        k0 = program_key(content_hash(base), "python")

        renamed = kernels.matmul_sdfg()
        renamed.name = "other"
        assert program_key(content_hash(renamed), "python") != k0

        from repro.symbolic import Subset

        ranged = kernels.matmul_sdfg()
        for state in ranged.nodes():
            for node in state.nodes():
                if hasattr(node, "map") and node.map.range.dims == 3:
                    node.map.range = Subset.from_string("0:M, 0:N, 1:K")
        assert program_key(content_hash(ranged), "python") != k0

        edited = kernels.matmul_sdfg()
        for state in edited.nodes():
            for node in state.nodes():
                if hasattr(node, "code"):
                    node.code = node.code + " * 2"
        assert program_key(content_hash(edited), "python") != k0

    def test_backend_and_version_in_key(self):
        h = content_hash(kernels.matmul_sdfg())
        assert program_key(h, "python") != program_key(h, "cpp")

    def test_serialize_roundtrip_preserves_key(self):
        sdfg = kernels.matmul_sdfg()
        clone = sdfg_from_json(sdfg_to_json(sdfg))
        assert content_hash(clone) == content_hash(sdfg)
        assert program_key(content_hash(clone), "python") == program_key(
            content_hash(sdfg), "python"
        )


class TestWarmCompile:
    def test_second_compile_skips_codegen(self):
        cache = ProgramCache()
        cold = compile_sdfg(kernels.matmul_sdfg(), cache=cache)
        assert not cold.cache_hit
        assert "codegen[python]" in phases(cold)

        warm = compile_sdfg(kernels.matmul_sdfg(), cache=cache)
        assert warm.cache_hit
        ph = phases(warm)
        assert "progcache[hit]" in ph
        assert not any(p.startswith("codegen") for p in ph)
        assert not any(p.startswith("validate") for p in ph)

        data = kernels.matmul_data(24)
        ref = kernels.matmul_reference(data)
        warm(**data)
        np.testing.assert_allclose(data["C"], ref, rtol=1e-12)
        assert cache.stats()["hits"] >= 1

    def test_different_sdfgs_do_not_collide(self):
        cache = ProgramCache()
        compile_sdfg(kernels.matmul_sdfg(), cache=cache)
        other = compile_sdfg(kernels.histogram_sdfg(), cache=cache)
        assert not other.cache_hit


class TestDiskTier:
    def test_cross_process_style_hit(self, tmp_path):
        d = str(tmp_path / "pc")
        compile_sdfg(kernels.matmul_sdfg(), cache=ProgramCache(cache_dir=d))
        # Fresh cache object over the same directory = a new process.
        fresh = ProgramCache(cache_dir=d)
        warm = compile_sdfg(kernels.matmul_sdfg(), cache=fresh)
        assert warm.cache_hit
        data = kernels.matmul_data(16)
        warm(**data)
        np.testing.assert_allclose(
            data["C"], kernels.matmul_reference(data), rtol=1e-12
        )

    def test_corrupt_entry_quarantined_as_miss(self, tmp_path):
        d = str(tmp_path / "pc")
        cache = ProgramCache(cache_dir=d)
        compile_sdfg(kernels.matmul_sdfg(), cache=cache)
        (entry_file,) = [f for f in os.listdir(d) if f.endswith(".json")]
        path = os.path.join(d, entry_file)
        with open(path, "w") as f:
            f.write("{not json")
        fresh = ProgramCache(cache_dir=d)
        key = entry_file[: -len(".json")]
        assert fresh.lookup(key) is None
        assert fresh.corrupt == 1 and fresh.misses == 1
        assert not os.path.exists(path), "corrupt entry must be deleted"

    def test_schema_mismatch_quarantined(self, tmp_path):
        d = str(tmp_path / "pc")
        os.makedirs(d)
        key = "0" * 64
        with open(os.path.join(d, f"{key}.json"), "w") as f:
            json.dump({"schema": 999, "key": key}, f)
        cache = ProgramCache(cache_dir=d)
        assert cache.lookup(key) is None
        assert cache.corrupt == 1

    def test_disk_lru_eviction(self, tmp_path):
        d = str(tmp_path / "pc")
        cache = ProgramCache(cache_dir=d, max_entries=2)
        for i in range(4):
            key = f"{i:064d}"
            entry = ProgramCacheEntry(
                key=key,
                backend="python",
                sdfg_name=f"s{i}",
                source="def main(): pass",
                arg_arrays=[],
                symbol_order=[],
            )
            os.utime(d)  # keep mtimes distinct enough on coarse filesystems
            cache.store(key, entry)
        files = [f for f in os.listdir(d) if f.endswith(".json")]
        assert len(files) == 2
        assert cache.evictions >= 2


class TestMemoryLRU:
    def test_memory_eviction(self):
        cache = ProgramCache(max_entries=2)
        for i in range(3):
            entry = ProgramCacheEntry(
                key=str(i), backend="python", sdfg_name="s",
                source="", arg_arrays=[], symbol_order=[],
            )
            cache.store(str(i), entry)
        assert cache.stats()["memory_entries"] == 2
        assert cache.lookup("0") is None  # oldest evicted
        assert cache.lookup("2") is not None


class TestResolveCache:
    def test_modes(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert resolve_cache(None) is None  # off by default
        assert resolve_cache("off") is None
        assert resolve_cache("memory") is progcache.shared_cache()
        inst = ProgramCache()
        assert resolve_cache(inst) is inst
        with pytest.raises(ValueError):
            resolve_cache("bogus")

    def test_env_knobs(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env"))
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        cache = resolve_cache(None)
        assert isinstance(cache, ProgramCache)
        assert cache.cache_dir == os.path.realpath(str(tmp_path / "env"))
        monkeypatch.setenv("REPRO_CACHE", "memory")
        assert resolve_cache(None) is progcache.shared_cache()
        monkeypatch.setenv("REPRO_CACHE", "off")
        assert resolve_cache(None) is None


class TestWarningsSurvive:
    def test_codegen_warnings_rehydrated_on_hit(self):
        sdfg = SDFG("customred_cache")
        sdfg.add_array("A", ("M", "N"), dtypes.float64)
        sdfg.add_array("out", ("M",), dtypes.float64)
        st = sdfg.add_state()
        r = st.add_reduce("lambda a, b: a + 2 * b", axes=(1,))
        st.add_edge(st.add_read("A"), r, Memlet.simple("A", "0:M, 0:N"), None, "IN_1")
        st.add_edge(r, st.add_write("out"), Memlet.simple("out", "0:M"), "OUT_1", None)

        cache = ProgramCache()
        cold = compile_sdfg(sdfg_from_json(sdfg_to_json(sdfg)), cache=cache)
        assert any(w.code == "W701" for w in cold.codegen_warnings)
        warm = compile_sdfg(sdfg_from_json(sdfg_to_json(sdfg)), cache=cache)
        assert warm.cache_hit
        assert any(w.code == "W701" for w in warm.codegen_warnings)
