"""Fidelity and lifecycle tests for the multicore parallel execution
tier of the generated-Python backend (proof-carrying map
parallelization; see ``repro.runtime.parallel`` and DESIGN §14).

Every parallel artifact must agree with the serial reference at 1e-8 —
including WCR kernels whose per-worker partial accumulators are merged
at the barrier — and conflict-free/integer-WCR kernels must be
*bitwise* identical between 1 worker and N workers.
"""

import numpy as np
import pytest

from repro.codegen.compiler import compile_sdfg
from repro.runtime.parallel import (
    MapWorkerPool,
    ParallelConfig,
    live_pool_count,
)
from repro.workloads import kernels

TIERS = ("auto", "thread", "fork")


def _compile_parallel(sdfg, tier="auto", workers=3, **kw):
    return compile_sdfg(
        sdfg,
        backend="python",
        parallel=ParallelConfig(workers=workers, tier=tier),
        **kw,
    )


# =====================================================================
# Fidelity matrix: the five fundamental kernels x every tier
# =====================================================================


class TestFundamentalKernelFidelity:
    @pytest.mark.parametrize("tier", TIERS)
    def test_matmul(self, tier):
        data = kernels.matmul_data(32)
        ref = kernels.matmul_reference(data)
        c = _compile_parallel(kernels.matmul_sdfg(), tier)
        try:
            assert c._pool is not None
            c(**data)
        finally:
            c.close()
        np.testing.assert_allclose(data["C"], ref, rtol=1e-8, atol=1e-10)

    @pytest.mark.parametrize("tier", TIERS)
    def test_jacobi2d(self, tier):
        data = kernels.jacobi2d_data(24)
        ref = kernels.jacobi2d_reference(data["A"].copy(), 6)
        c = _compile_parallel(kernels.jacobi2d_sdfg(), tier)
        try:
            c(A=data["A"], T=6)
        finally:
            c.close()
        np.testing.assert_allclose(data["A"], ref, rtol=1e-8, atol=1e-10)

    @pytest.mark.parametrize("tier", TIERS)
    def test_histogram_wcr_partial_merge(self, tier):
        data = kernels.histogram_data(25, 31)
        ref = kernels.histogram_reference(data["img"], 256)
        c = _compile_parallel(kernels.histogram_sdfg(), tier)
        try:
            c(**data)
        finally:
            c.close()
        # Integer Sum-WCR: chunk merge must be exact, not just close.
        np.testing.assert_array_equal(data["hist"], ref)

    @pytest.mark.parametrize("tier", TIERS)
    def test_spmv_wcr_partial_merge(self, tier):
        from repro.library.sparse import spmv_reference_loops

        data, csr = kernels.spmv_data(48, 5)
        ref = spmv_reference_loops(
            csr, data["x"], np.zeros(48, np.float64)
        )
        c = _compile_parallel(kernels.spmv_sdfg(), tier)
        try:
            c(**data)
        finally:
            c.close()
        np.testing.assert_allclose(data["b"], ref, rtol=1e-8, atol=1e-8)

    @pytest.mark.parametrize("tier", TIERS)
    def test_query_stream_stays_serial_and_correct(self, tier):
        """The stream-filter query is NOT provably parallelizable (its
        map pushes into a shared stream): the artifact must degrade to
        the serial path with a W703 diagnostic and still be correct."""
        data = kernels.query_data(120)
        expected = kernels.query_reference(data["col"], 0.5)
        c = _compile_parallel(kernels.query_sdfg(), tier)
        try:
            assert any(w.code == "W703" for w in c.codegen_warnings)
            c(**data)
        finally:
            c.close()
        count = int(data["size"][0])
        assert count == len(expected)
        np.testing.assert_allclose(
            np.sort(data["out"][:count]), np.sort(expected)
        )


# =====================================================================
# PolyBench subset through the parallel tier
# =====================================================================

POLYBENCH_SUBSET = {
    "gemm": {},
    "atax": {"NI": 40, "NJ": 44},
    "mvt": {"NI": 48},
    "jacobi-2d": {"N": 20, "TSTEPS": 3},
    "syrk": {},
}


@pytest.mark.parametrize("name", sorted(POLYBENCH_SUBSET))
def test_polybench_parallel_matches_numpy_reference(name):
    from repro.workloads.polybench import get

    kernel = get(name)
    sizes = dict(kernel.sizes)
    sizes.update(POLYBENCH_SUBSET[name])
    data = kernel.make_data(sizes)
    data_ref = {k: v.copy() for k, v in data.items()}

    c = _compile_parallel(kernel.make_sdfg(), "auto")
    try:
        kwargs = dict(data)
        for sym in kernel.extra_symbols:
            kwargs[sym] = sizes[sym]
        c(**kwargs)
    finally:
        c.close()
    kernel.ref_numpy(data_ref, sizes)
    for out in kernel.outputs:
        np.testing.assert_allclose(
            data[out], data_ref[out], rtol=1e-8, atol=1e-9,
            err_msg=f"{name}: parallel tier vs numpy reference",
        )


# =====================================================================
# 1 worker == N workers, bitwise
# =====================================================================


class TestWorkerCountInvariance:
    """Conflict-free elementwise maps and integer-WCR merges must be
    bitwise identical no matter how the domain was chunked."""

    def _run(self, sdfg_factory, data_factory, workers, symbols=None):
        data = data_factory()
        c = compile_sdfg(
            sdfg_factory(), backend="python",
            parallel=ParallelConfig(workers=workers),
        )
        try:
            c(**data, **(symbols or {}))
        finally:
            c.close()
        return data

    @pytest.mark.parametrize("workers", [2, 4, 7])
    def test_elementwise_bitwise(self, workers):
        base = self._run(
            kernels.jacobi2d_sdfg,
            lambda: {"A": kernels.jacobi2d_data(24)["A"]},
            1, {"T": 5},
        )
        multi = self._run(
            kernels.jacobi2d_sdfg,
            lambda: {"A": kernels.jacobi2d_data(24)["A"]},
            workers, {"T": 5},
        )
        assert np.array_equal(base["A"], multi["A"])

    @pytest.mark.parametrize("workers", [2, 4, 7])
    def test_integer_wcr_bitwise(self, workers):
        base = self._run(
            kernels.histogram_sdfg, lambda: kernels.histogram_data(23, 29), 1
        )
        multi = self._run(
            kernels.histogram_sdfg,
            lambda: kernels.histogram_data(23, 29),
            workers,
        )
        assert np.array_equal(base["hist"], multi["hist"])


# =====================================================================
# Sanitizer interplay (W702) and diagnostics
# =====================================================================


class TestSanitizerDegradation:
    def test_sanitize_disables_parallel_with_w702(self):
        c = compile_sdfg(
            kernels.histogram_sdfg(), backend="python",
            parallel=True, sanitize="collect",
        )
        try:
            assert c._pool is None
            codes = [w.code for w in c.codegen_warnings]
            assert "W702" in codes
            data = kernels.histogram_data(16, 16)
            c(**data)
            np.testing.assert_array_equal(
                data["hist"], kernels.histogram_reference(data["img"], 256)
            )
        finally:
            c.close()

    def test_sanitize_does_not_fork_cache_key(self):
        a = compile_sdfg(kernels.matmul_sdfg(), backend="python",
                         sanitize="collect", cache="memory")
        b = compile_sdfg(kernels.matmul_sdfg(), backend="python",
                         sanitize="collect", parallel=4, cache="memory")
        assert b.cache_key == a.cache_key
        a.close(); b.close()


# =====================================================================
# Pool lifecycle
# =====================================================================


class TestPoolLifecycle:
    def test_close_is_idempotent_and_degrades_inline(self):
        data = kernels.matmul_data(16)
        ref = kernels.matmul_reference(data)
        c = _compile_parallel(kernels.matmul_sdfg(), "auto")
        pool = c._pool
        c.close()
        c.close()
        assert pool.closed
        c(**data)  # closed pool: inline path, still correct
        np.testing.assert_allclose(data["C"], ref, rtol=1e-8, atol=1e-10)
        assert pool.stats["inline_runs"] >= 1

    def test_cache_hit_reattaches_a_fresh_pool(self):
        cfg = ParallelConfig(workers=2)
        a = compile_sdfg(kernels.matmul_sdfg(), backend="python",
                         parallel=cfg, cache="memory")
        b = compile_sdfg(kernels.matmul_sdfg(), backend="python",
                         parallel=cfg, cache="memory")
        try:
            assert b.cache_hit and b._pool is not None
            assert b._pool is not a._pool
            data = kernels.matmul_data(16)
            b(**data)
            np.testing.assert_allclose(
                data["C"], kernels.matmul_reference(data), rtol=1e-8,
                atol=1e-10,
            )
        finally:
            a.close()
            b.close()

    def test_parallel_variant_has_its_own_cache_key(self):
        a = compile_sdfg(kernels.matmul_sdfg(), backend="python",
                         cache="memory")
        b = compile_sdfg(kernels.matmul_sdfg(), backend="python",
                         parallel=2, cache="memory")
        assert a.cache_key != b.cache_key
        a.close(); b.close()

    def test_no_pool_leak_across_compiles(self):
        before = live_pool_count()
        for _ in range(8):
            c = _compile_parallel(kernels.histogram_sdfg(), "auto")
            data = kernels.histogram_data(12, 12)
            c(**data)
            c.close()
        assert live_pool_count() == before

    def test_telemetry_events_published(self):
        from repro.telemetry.sink import TelemetrySink, install_sink

        sink = TelemetrySink()
        previous = install_sink(sink)
        try:
            c = _compile_parallel(kernels.matmul_sdfg(), "thread")
            data = kernels.matmul_data(24)
            c(**data)
            c.close()
        finally:
            install_sink(previous)
        events, _, _ = sink.drain(0)
        parallel = [e for e in events if e.kind == "parallel"]
        assert parallel, "expected parallel:* telemetry events"
        ev = parallel[0]
        assert ev.fields.get("chunks", 0) >= 2
        assert ev.fields.get("tier") in ("thread", "fork", "inline")


# =====================================================================
# Pool unit behavior
# =====================================================================


class TestMapWorkerPool:
    def test_partition_covers_the_domain_exactly(self):
        pool = MapWorkerPool(ParallelConfig(workers=3))
        for start, stop, step in ((0, 100, 3), (2, 57, 5), (0, 16, 1)):
            chunks = pool.partition(start, stop, step)
            indices = [i for lo, hi in chunks for i in range(lo, hi, step)]
            assert indices == list(range(start, stop, step))
            for (lo, hi), (lo2, _) in zip(chunks, chunks[1:]):
                assert hi == lo2
                assert (lo2 - start) % step == 0
        pool.close()

    def test_forced_fork_never_escalates_thread_only_chunks(self):
        """A chunk emitted for the thread tier mutates shared arrays in
        place; a fork-forcing pool config must keep it on threads."""
        data = kernels.matmul_data(24)
        ref = kernels.matmul_reference(data)
        c = _compile_parallel(kernels.matmul_sdfg(), "fork")
        try:
            c(**data)
            assert c._pool.stats["fork_runs"] == 0
            assert c._pool.stats["thread_runs"] >= 1
        finally:
            c.close()
        np.testing.assert_allclose(data["C"], ref, rtol=1e-8, atol=1e-10)

    def test_single_chunk_runs_inline(self):
        pool = MapWorkerPool(ParallelConfig(workers=4, min_chunk=1000))
        res = pool.run(_double_chunk, 0, 10, 1, (np.arange(10.0),))
        assert res.tier == "inline"
        assert pool.stats["inline_runs"] == 1
        pool.close()


def _double_chunk(lo, hi, arr):
    arr[lo:hi] *= 2.0
    return ((), ())
