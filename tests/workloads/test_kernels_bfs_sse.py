"""Tests for the fundamental kernels (§6.1), BFS (§6.3), and SSE (§6.4)."""

import numpy as np
import pytest

from repro.library.graphs import (
    UNVISITED,
    bfs_direction_optimizing,
    bfs_level_sync,
    bfs_reference,
    kronecker_graph,
    road_network,
    social_network,
)
from repro.workloads import kernels
from repro.workloads.bfs import build_bfs_sdfg, run_bfs
from repro.workloads.sse import (
    SSEProblem,
    build_sse_sdfg,
    make_sse_data,
    sse_dace,
    sse_numpy_naive,
    sse_omen,
)


class TestFundamentalKernels:
    def test_matmul(self):
        data = kernels.matmul_data(24)
        ref = kernels.matmul_reference(data)
        sdfg = kernels.matmul_sdfg()
        sdfg.compile()(**data)
        np.testing.assert_allclose(data["C"], ref)

    def test_matmul_optimized_chain(self):
        data = kernels.matmul_data(24)
        ref = kernels.matmul_reference(data)
        sdfg = kernels.optimize_matmul(kernels.matmul_sdfg())
        assert "MapReduceFusion" in sdfg.transformation_history
        comp = sdfg.compile()
        assert "einsum" in comp.source
        comp(**data)
        np.testing.assert_allclose(data["C"], ref)

    def test_jacobi2d(self):
        data = kernels.jacobi2d_data(20)
        steps = 6
        ref = kernels.jacobi2d_reference(data["A"], steps)
        sdfg = kernels.jacobi2d_sdfg()
        sdfg.compile()(A=data["A"], T=steps)
        np.testing.assert_allclose(data["A"], ref)

    def test_histogram(self):
        bins = 16
        data = kernels.histogram_data(24, 30, bins=bins)
        ref = kernels.histogram_reference(data["img"], bins)
        sdfg = kernels.histogram_sdfg()
        sdfg.compile()(**data)
        np.testing.assert_array_equal(data["hist"], ref)
        assert data["hist"].sum() == 24 * 30

    def test_query(self):
        data = kernels.query_data(200)
        expected = kernels.query_reference(data["col"], 0.5)
        sdfg = kernels.query_sdfg()
        sdfg.compile()(**data)
        count = int(data["size"][0])
        assert count == len(expected)
        np.testing.assert_allclose(np.sort(data["out"][:count]), np.sort(expected))

    def test_spmv(self):
        data, csr = kernels.spmv_data(40, 8)
        sdfg = kernels.spmv_sdfg()
        sdfg.compile()(**data)
        ref = csr.spmv(data["x"])
        np.testing.assert_allclose(data["b"], ref, rtol=1e-5)


class TestGraphGenerators:
    def test_road_network_characteristics(self):
        g = road_network(24, keep=0.65)
        assert 1.8 < g.avg_degree < 3.2  # USA road map regime (~2.4)
        assert g.max_degree <= 4

    def test_social_network_heavy_tail(self):
        g = social_network(600, edges_per_vertex=10)
        assert g.max_degree > 5 * g.avg_degree  # skewed degrees

    def test_kronecker(self):
        g = kronecker_graph(8, edge_factor=8)
        assert g.num_vertices == 256
        assert g.num_edges > 0

    @pytest.mark.parametrize("maker", [
        lambda: road_network(10),
        lambda: social_network(200, 6),
        lambda: kronecker_graph(6, 4),
    ])
    def test_baseline_bfs_agree(self, maker):
        g = maker()
        ref = bfs_reference(g, 0)
        np.testing.assert_array_equal(bfs_level_sync(g, 0), ref)
        np.testing.assert_array_equal(bfs_direction_optimizing(g, 0), ref)


class TestBFSWorkload:
    @pytest.mark.parametrize("optimized", [False, True])
    def test_bfs_matches_reference(self, optimized):
        g = road_network(10, keep=0.8, seed=3)
        ref = bfs_reference(g, 0)
        sdfg = build_bfs_sdfg(optimized=optimized)
        depth = run_bfs(sdfg, g, 0)
        np.testing.assert_array_equal(depth, ref)

    def test_bfs_on_social_graph(self):
        g = social_network(250, 7)
        ref = bfs_reference(g, 5)
        depth = run_bfs(build_bfs_sdfg(), g, 5)
        np.testing.assert_array_equal(depth, ref)

    def test_bfs_structure_matches_fig16(self):
        """The optimized BFS state uses: data-dependent map ranges, an
        indirection through G_row, stream pushes, and Sum-WCR size."""
        from repro.sdfg.data import Stream
        from repro.sdfg.nodes import MapEntry

        sdfg = build_bfs_sdfg(optimized=True)
        body = [s for s in sdfg.states() if s.name == "body"][0]
        entries = [n for n in body.nodes() if isinstance(n, MapEntry)]
        assert len(entries) == 2  # frontier sweep + neighbor map
        dyn_conns = [
            c for e in entries for c in e.in_connectors if not c.startswith("IN_")
        ]
        assert dyn_conns  # data-dependent ranges
        assert any(
            isinstance(sdfg.arrays.get(e.data.data), Stream)
            for e in body.edges()
            if not e.data.is_empty()
        )
        assert any(e.data.wcr for e in body.edges() if not e.data.is_empty())
        assert "LocalStream" in sdfg.transformation_history

    def test_disconnected_vertices_stay_unvisited(self):
        g = road_network(6, keep=0.3, seed=9)  # likely disconnected
        ref = bfs_reference(g, 0)
        depth = run_bfs(build_bfs_sdfg(), g, 0)
        np.testing.assert_array_equal(depth, ref)
        if (ref == UNVISITED).any():
            assert (depth == UNVISITED).any()


class TestSSEWorkload:
    def setup_method(self):
        self.p = SSEProblem(nkz=2, ne=4, nqz=2, nw=2, nb=4)
        self.data = make_sse_data(self.p)
        self.ref = sse_omen(self.p, self.data)

    def test_numpy_naive_agrees(self):
        np.testing.assert_allclose(sse_numpy_naive(self.p, self.data), self.ref)

    def test_dace_agrees(self):
        np.testing.assert_allclose(sse_dace(self.p, self.data), self.ref)

    def test_sdfg_agrees(self):
        sdfg = build_sse_sdfg(self.p)
        out = {k: v.copy() for k, v in self.data.items()}
        sdfg.compile()(**out)
        np.testing.assert_allclose(out["Sigma"], self.ref)

    def test_flop_count_positive(self):
        assert self.p.flops() > 0

    def test_dace_faster_than_omen_at_scale(self):
        import time

        p = SSEProblem(nkz=4, ne=12, nqz=4, nw=4, nb=8)
        d = make_sse_data(p)
        t0 = time.perf_counter()
        sse_omen(p, d)
        t_omen = time.perf_counter() - t0
        t0 = time.perf_counter()
        sse_dace(p, d)
        t_dace = time.perf_counter() - t0
        assert t_dace < t_omen  # the Table 2 ordering
