"""Three-way differential tests over the full PolyBench corpus: the
data-centric program, the plain-loop reference (naive-compiler role),
and the NumPy reference (polyhedral role) must agree on every kernel."""

import numpy as np
import pytest

from repro.workloads.polybench import all_kernels, get

SMALL_OVERRIDES = {
    # Shrink the slowest kernels further for test (not bench) runs.
    "jacobi-1d": {"N": 120, "TSTEPS": 6},
    "jacobi-2d": {"N": 24, "TSTEPS": 4},
    "heat-3d": {"N": 10, "TSTEPS": 3},
    "fdtd-2d": {"NX": 18, "NY": 22, "TSTEPS": 4},
    "atax": {"NI": 48, "NJ": 56},
    "bicg": {"NI": 52, "NJ": 44},
    "mvt": {"NI": 56},
    "gemver": {"NI": 48},
    "gesummv": {"NI": 56},
    "adi": {"N": 12, "TSTEPS": 2},
    "trisolv": {"N": 36},
    "durbin": {"N": 28},
}


def test_all_thirty_kernels_present():
    assert len(all_kernels()) == 30
    expected = {
        "2mm", "3mm", "adi", "atax", "bicg", "cholesky", "correlation",
        "covariance", "deriche", "doitgen", "durbin", "fdtd-2d",
        "floyd-warshall", "gemm", "gemver", "gesummv", "gramschmidt",
        "heat-3d", "jacobi-1d", "jacobi-2d", "lu", "ludcmp", "mvt",
        "nussinov", "seidel-2d", "symm", "syr2k", "syrk", "trisolv", "trmm",
    }
    assert set(all_kernels()) == expected


@pytest.mark.parametrize("name", all_kernels())
def test_kernel_three_way_agreement(name):
    kernel = get(name)
    sizes = dict(kernel.sizes)
    sizes.update(SMALL_OVERRIDES.get(name, {}))
    data_sdfg = kernel.make_data(sizes)
    data_loops = {k: v.copy() for k, v in data_sdfg.items()}
    data_numpy = {k: v.copy() for k, v in data_sdfg.items()}

    compiled = kernel.make_sdfg().compile()
    kwargs = dict(data_sdfg)
    for sym in kernel.extra_symbols:
        kwargs[sym] = sizes[sym]
    compiled(**kwargs)
    kernel.ref_loops(data_loops, sizes)
    kernel.ref_numpy(data_numpy, sizes)

    for out in kernel.outputs:
        np.testing.assert_allclose(
            data_loops[out], data_numpy[out], rtol=1e-8, atol=1e-9,
            err_msg=f"{name}: loops vs numpy disagree",
        )
        np.testing.assert_allclose(
            data_sdfg[out], data_loops[out], rtol=1e-8, atol=1e-9,
            err_msg=f"{name}: SDFG vs loops disagree",
        )


@pytest.mark.parametrize("name", ["gemm", "jacobi-2d", "cholesky"])
def test_kernel_sdfgs_validate_and_serialize(name):
    sdfg = get(name).make_sdfg()
    sdfg.validate()
    from repro.sdfg import SDFG

    assert SDFG.from_json(sdfg.to_json()).to_json() == sdfg.to_json()


@pytest.mark.parametrize("name", ["gemm", "bicg", "jacobi-2d"])
def test_kernels_offload_to_gpu_and_fpga(name):
    """Fig. 13b/c: GPUTransform/FPGATransform apply to Polybench SDFGs
    and the result still validates + generates device code."""
    from repro.transformations import FPGATransform, GPUTransform, apply_transformations

    for xform, backend, marker in (
        (GPUTransform, "cuda", "__global__"),
        (FPGATransform, "fpga", "HLS"),
    ):
        sdfg = get(name).make_sdfg()
        assert apply_transformations(sdfg, xform) == 1
        code = sdfg.generate_code(backend)
        assert marker in code
