"""Tests for the subgraph-fusion transformations (``TaskletFusion``,
``OnTheFlyMapFusion``): match enumeration, applicability rejections,
apply semantics (execute before and after), and guarded rollback."""

import numpy as np
import pytest

from repro.sdfg import SDFG, InterstateEdge, Memlet, dtypes
from repro.sdfg.nodes import AccessNode, MapEntry, Tasklet
from repro.transformations import (
    REGISTRY,
    GuardedOptimizer,
    OnTheFlyMapFusion,
    TaskletFusion,
    apply_transformations,
    canonical_snapshot,
    enumerate_matches,
)


def run(sdfg, **kwargs):
    sdfg.invalidate_compiled()
    sdfg.compile()(**kwargs)


# ------------------------------------------------------------- builders
def tasklet_chain_sdfg(code2="b = y + 1"):
    """map { t1 -> mid(scalar transient) -> t2 }"""
    sdfg = SDFG("tchain")
    sdfg.add_array("A", ("N",), dtypes.float64)
    sdfg.add_array("B", ("N",), dtypes.float64)
    sdfg.add_transient("mid", (1,), dtypes.float64, find_new_name=False)
    st = sdfg.add_state()
    me, mx = st.add_map("m", {"i": "0:N"})
    t1 = st.add_tasklet("t1", ["a"], ["x"], "x = a * 2")
    t2 = st.add_tasklet("t2", ["y"], ["b"], code2)
    mid = st.add_read("mid")
    r, w = st.add_read("A"), st.add_write("B")
    st.add_memlet_path(r, me, t1, memlet=Memlet.simple("A", "i"), dst_conn="a")
    st.add_edge(t1, mid, Memlet.simple("mid", "0"), "x", None)
    st.add_edge(mid, t2, Memlet.simple("mid", "0"), None, "y")
    st.add_memlet_path(t2, mx, w, memlet=Memlet.simple("B", "i"), src_conn="b")
    return sdfg


def otf_maps_sdfg(read="j - 1", consumer_range="1:N"):
    """producer map (tmp[i] = 2*A[i]) -> tmp -> consumer map over ``read``."""
    sdfg = SDFG("otf")
    sdfg.add_array("A", ("N",), dtypes.float64)
    sdfg.add_array("B", ("N",), dtypes.float64)
    sdfg.add_transient("tmp", ("N",), dtypes.float64, find_new_name=False)
    st = sdfg.add_state()
    st.add_mapped_tasklet(
        "prod",
        {"i": "0:N"},
        inputs={"a": Memlet.simple("A", "i")},
        code="t = a * 2.0",
        outputs={"t": Memlet.simple("tmp", "i")},
    )
    tmp_node = [n for n in st.data_nodes() if n.data == "tmp"][0]
    st.add_mapped_tasklet(
        "cons",
        {"j": consumer_range},
        inputs={"t": Memlet.simple("tmp", read)},
        code="b = t + 1.0",
        outputs={"b": Memlet.simple("B", "j")},
        input_nodes={"tmp": tmp_node},
    )
    return sdfg


# ------------------------------------------------------------- registry
def test_both_registered():
    assert "TaskletFusion" in REGISTRY
    assert "OnTheFlyMapFusion" in REGISTRY


# -------------------------------------------------------- TaskletFusion
class TestTaskletFusion:
    def test_match_enumeration(self):
        matches = enumerate_matches(tasklet_chain_sdfg(), TaskletFusion)
        assert len(matches) == 1

    def test_apply_semantics(self):
        sdfg = tasklet_chain_sdfg()
        assert apply_transformations(sdfg, TaskletFusion) == 1
        st = sdfg.states()[0]
        tasklets = [n for n in st.nodes() if isinstance(n, Tasklet)]
        assert len(tasklets) == 1
        assert "mid" not in sdfg.arrays
        A = np.random.rand(7)
        B = np.zeros(7)
        run(sdfg, A=A, B=B, N=7)
        np.testing.assert_allclose(B, A * 2 + 1)

    def test_inlines_expression(self):
        sdfg = tasklet_chain_sdfg(code2="b = y * y")
        assert apply_transformations(sdfg, TaskletFusion) == 1
        A = np.random.rand(5)
        B = np.zeros(5)
        run(sdfg, A=A, B=B, N=5)
        np.testing.assert_allclose(B, (A * 2) * (A * 2))

    def test_rejects_multi_consumer_bridge(self):
        """A bridge scalar read twice by the same tasklet through two
        connectors stays matched once per edge pair but a *fanned-out*
        bridge (two readers) must not match."""
        sdfg = tasklet_chain_sdfg()
        st = sdfg.states()[0]
        mid = [n for n in st.data_nodes() if n.data == "mid"][0]
        t3 = st.add_tasklet("t3", ["z"], ["c"], "c = z")
        st.add_edge(mid, t3, Memlet.simple("mid", "0"), None, "z")
        mx = [n for n in st.nodes() if type(n).__name__ == "MapExit"][0]
        st.add_nedge(t3, mx)
        assert enumerate_matches(sdfg, TaskletFusion) == []

    def test_rejects_non_transient_bridge(self):
        sdfg = tasklet_chain_sdfg()
        sdfg.arrays["mid"].transient = False
        assert enumerate_matches(sdfg, TaskletFusion) == []

    def test_rollback_on_verification_failure(self):
        """A guarded apply that fails verification must restore the
        exact canonical form."""
        sdfg = tasklet_chain_sdfg()
        inputs = {"A": np.random.rand(6), "B": np.zeros(6), "N": 6}
        guard = GuardedOptimizer(
            sdfg, verify=True, verify_inputs=inputs, tolerance=1e-8
        )
        before = canonical_snapshot(sdfg)
        assert guard.apply("TaskletFusion") is True
        att = guard.report.attempts[-1]
        assert att.verified == "ok" and att.max_abs_error <= 1e-8
        # A second apply has no match left; the graph must be untouched.
        after_ok = canonical_snapshot(sdfg)
        assert guard.apply("TaskletFusion") is False
        assert canonical_snapshot(sdfg) == after_ok
        assert canonical_snapshot(sdfg) != before


# ---------------------------------------------------- OnTheFlyMapFusion
class TestOnTheFlyMapFusion:
    def test_match_enumeration(self):
        matches = enumerate_matches(otf_maps_sdfg(), OnTheFlyMapFusion)
        assert len(matches) == 1

    def test_apply_semantics_shifted_read(self):
        sdfg = otf_maps_sdfg()
        assert apply_transformations(sdfg, OnTheFlyMapFusion) == 1
        st = sdfg.states()[0]
        entries = [n for n in st.nodes() if isinstance(n, MapEntry)]
        assert len(entries) == 1  # producer map is gone
        assert "tmp" not in sdfg.arrays
        A = np.random.rand(8)
        B = np.zeros(8)
        run(sdfg, A=A, B=B, N=8)
        expect = np.zeros(8)
        expect[1:] = A[:-1] * 2.0 + 1.0
        np.testing.assert_allclose(B, expect)

    def test_apply_semantics_identity_read(self):
        sdfg = otf_maps_sdfg(read="j", consumer_range="0:N")
        assert apply_transformations(sdfg, OnTheFlyMapFusion) == 1
        A = np.random.rand(6)
        B = np.zeros(6)
        run(sdfg, A=A, B=B, N=6)
        np.testing.assert_allclose(B, A * 2.0 + 1.0)

    def test_rejects_uncovered_read(self):
        """Consumer reading outside the producer's range must not fuse
        (the recompute would read out of the produced domain)."""
        sdfg = otf_maps_sdfg(read="j + 1", consumer_range="0:N")
        # tmp[j+1] at j=N-1 reads tmp[N], outside producer range 0:N.
        assert enumerate_matches(sdfg, OnTheFlyMapFusion) == []

    def test_rejects_multi_use_transient(self):
        sdfg = otf_maps_sdfg()
        st = sdfg.states()[0]
        tmp = [n for n in st.data_nodes() if n.data == "tmp"][0]
        out = st.add_write("B")
        st.add_edge(tmp, out, Memlet.simple("tmp", "0:N"), None, None)
        assert enumerate_matches(sdfg, OnTheFlyMapFusion) == []

    def test_rejects_wcr_producer(self):
        sdfg = SDFG("otfwcr")
        sdfg.add_array("A", ("N",), dtypes.float64)
        sdfg.add_array("B", ("N",), dtypes.float64)
        sdfg.add_transient("tmp", ("N",), dtypes.float64, find_new_name=False)
        st = sdfg.add_state()
        st.add_mapped_tasklet(
            "prod",
            {"i": "0:N"},
            inputs={"a": Memlet.simple("A", "i")},
            code="t = a",
            outputs={"t": Memlet(data="tmp", subset="i", wcr="sum")},
        )
        tmp_node = [n for n in st.data_nodes() if n.data == "tmp"][0]
        st.add_mapped_tasklet(
            "cons",
            {"j": "0:N"},
            inputs={"t": Memlet.simple("tmp", "j")},
            code="b = t",
            outputs={"b": Memlet.simple("B", "j")},
            input_nodes={"tmp": tmp_node},
        )
        assert enumerate_matches(sdfg, OnTheFlyMapFusion) == []

    def test_guarded_apply_differential(self):
        sdfg = otf_maps_sdfg()
        inputs = {"A": np.random.rand(9), "B": np.zeros(9), "N": 9}
        guard = GuardedOptimizer(
            sdfg, verify=True, verify_inputs=inputs, tolerance=1e-8
        )
        assert guard.apply("OnTheFlyMapFusion") is True
        att = guard.report.attempts[-1]
        assert att.verified == "ok"
        assert att.max_abs_error is not None and att.max_abs_error <= 1e-8

    def test_no_match_leaves_graph_untouched(self):
        sdfg = otf_maps_sdfg(read="j + 1", consumer_range="0:N")
        sdfg.propagate()  # guard.apply propagates; snapshot the same form
        before = canonical_snapshot(sdfg)
        guard = GuardedOptimizer(sdfg)
        assert guard.apply("OnTheFlyMapFusion") is False
        assert canonical_snapshot(sdfg) == before


# ------------------------------------------------------------ both, mixed
def test_fusions_compose_with_two_states():
    """Both fusions apply independently in different states."""
    sdfg = SDFG("mixed")
    sdfg.add_array("A", ("N",), dtypes.float64)
    sdfg.add_array("B", ("N",), dtypes.float64)
    sdfg.add_array("C", ("N",), dtypes.float64)
    sdfg.add_transient("mid", (1,), dtypes.float64, find_new_name=False)
    sdfg.add_transient("tmp", ("N",), dtypes.float64, find_new_name=False)
    s1 = sdfg.add_state("s1", is_start=True)
    me, mx = s1.add_map("m", {"i": "0:N"})
    t1 = s1.add_tasklet("t1", ["a"], ["x"], "x = a * 3")
    t2 = s1.add_tasklet("t2", ["y"], ["b"], "b = y - 1")
    mid = s1.add_read("mid")
    r, w = s1.add_read("A"), s1.add_write("B")
    s1.add_memlet_path(r, me, t1, memlet=Memlet.simple("A", "i"), dst_conn="a")
    s1.add_edge(t1, mid, Memlet.simple("mid", "0"), "x", None)
    s1.add_edge(mid, t2, Memlet.simple("mid", "0"), None, "y")
    s1.add_memlet_path(t2, mx, w, memlet=Memlet.simple("B", "i"), src_conn="b")
    s2 = sdfg.add_state("s2")
    s2.add_mapped_tasklet(
        "prod",
        {"i": "0:N"},
        inputs={"a": Memlet.simple("B", "i")},
        code="t = a * 2.0",
        outputs={"t": Memlet.simple("tmp", "i")},
    )
    tmp_node = [n for n in s2.data_nodes() if n.data == "tmp"][0]
    s2.add_mapped_tasklet(
        "cons",
        {"j": "0:N"},
        inputs={"t": Memlet.simple("tmp", "j")},
        code="c = t + 1.0",
        outputs={"c": Memlet.simple("C", "j")},
        input_nodes={"tmp": tmp_node},
    )
    sdfg.add_edge(s1, s2, InterstateEdge())

    assert apply_transformations(sdfg, TaskletFusion) == 1
    assert apply_transformations(sdfg, OnTheFlyMapFusion) == 1
    A = np.random.rand(7)
    B, C = np.zeros(7), np.zeros(7)
    run(sdfg, A=A, B=B, C=C, N=7)
    np.testing.assert_allclose(B, A * 3 - 1)
    np.testing.assert_allclose(C, (A * 3 - 1) * 2 + 1)
