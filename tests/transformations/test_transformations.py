"""Tests for all 16 + 1 transformations: matching, applicability
conditions, and semantics preservation (execute before and after)."""

import numpy as np
import pytest

import repro as rp
from repro.sdfg import SDFG, Memlet, ScheduleType, StorageType, dtypes
from repro.sdfg.nodes import AccessNode, MapEntry, Reduce, Tasklet
from repro.transformations import (
    REGISTRY,
    DoubleBuffering,
    FPGATransform,
    GPUTransform,
    InlineSDFG,
    LocalStorage,
    LocalStream,
    MapCollapse,
    MapExpansion,
    MapFusion,
    MapInterchange,
    MapReduceFusion,
    MapTiling,
    MapToForLoop,
    MPITransform,
    RedundantArray,
    StateFusion,
    Vectorization,
    apply_strict_transformations,
    apply_transformations,
    enumerate_matches,
)

M, K, N = rp.symbol("M"), rp.symbol("K"), rp.symbol("N")


def run(sdfg, **kwargs):
    sdfg.invalidate_compiled()
    sdfg.compile()(**kwargs)


def mm_sdfg():
    @rp.program
    def mm(A: rp.float64[M, K], B: rp.float64[K, N], C: rp.float64[M, N]):
        C = A @ B

    mm._sdfg = None  # force fresh parse per test
    return mm.to_sdfg()


def check_mm(sdfg, note=""):
    A, B = np.random.rand(9, 7), np.random.rand(7, 8)
    C = np.zeros((9, 8))
    run(sdfg, A=A, B=B, C=C)
    np.testing.assert_allclose(C, A @ B, err_msg=note)


def nested_copy_sdfg():
    sdfg = SDFG("nest2")
    sdfg.add_array("A", ("N", "N"), dtypes.float64)
    sdfg.add_array("B", ("N", "N"), dtypes.float64)
    st = sdfg.add_state()
    ome, omx = st.add_map("outer", {"i": "0:N"})
    ime, imx = st.add_map("inner", {"j": "0:N"})
    t = st.add_tasklet("t", ["a"], ["b"], "b = a * 2")
    r, w = st.add_read("A"), st.add_write("B")
    st.add_memlet_path(r, ome, ime, t, memlet=Memlet.simple("A", "i, j"), dst_conn="a")
    st.add_memlet_path(t, imx, omx, w, memlet=Memlet.simple("B", "i, j"), src_conn="b")
    return sdfg


def check_copy2(sdfg, note=""):
    A = np.random.rand(6, 6)
    B = np.zeros((6, 6))
    run(sdfg, A=A, B=B)
    np.testing.assert_allclose(B, 2 * A, err_msg=note)


class TestRegistry:
    def test_all_sixteen_plus_one_registered(self):
        expected = {
            "MapCollapse", "MapExpansion", "MapFusion", "MapInterchange",
            "MapReduceFusion", "MapTiling", "DoubleBuffering", "LocalStorage",
            "LocalStream", "Vectorization", "MapToForLoop", "StateFusion",
            "InlineSDFG", "FPGATransform", "GPUTransform", "MPITransform",
            "RedundantArray",
        }
        assert expected <= set(REGISTRY)

    def test_unknown_transformation_name(self):
        with pytest.raises(KeyError, match="unknown transformation"):
            apply_transformations(mm_sdfg(), "FrobnicateMaps")


class TestMapStructure:
    def test_map_expansion_then_collapse_roundtrip(self):
        sdfg = mm_sdfg()
        assert apply_transformations(sdfg, MapReduceFusion) == 1
        assert apply_transformations(sdfg, MapExpansion) == 1
        mm_entries = [
            n
            for s in sdfg.states()
            for n in s.nodes()
            if isinstance(n, MapEntry) and "MatMult" in n.map.label
        ]
        assert sorted(len(e.map.params) for e in mm_entries) == [1, 2]
        check_mm(sdfg, "after expansion")
        assert apply_transformations(sdfg, MapCollapse) == 1
        mm_entries = [
            n
            for s in sdfg.states()
            for n in s.nodes()
            if isinstance(n, MapEntry) and "MatMult" in n.map.label
        ]
        assert len(mm_entries) == 1 and len(mm_entries[0].map.params) == 3
        check_mm(sdfg, "after collapse")

    def test_map_interchange(self):
        sdfg = nested_copy_sdfg()
        st = sdfg.states()[0]
        outer_before = [
            n for n in st.nodes()
            if isinstance(n, MapEntry) and st.scope_dict()[n] is None
        ][0]
        assert outer_before.map.params == ["i"]
        assert apply_transformations(sdfg, MapInterchange) == 1
        outer_after = [
            n for n in st.nodes()
            if isinstance(n, MapEntry) and st.scope_dict()[n] is None
        ][0]
        assert outer_after.map.params == ["j"]
        check_copy2(sdfg, "after interchange")

    def test_map_tiling(self):
        sdfg = nested_copy_sdfg()
        assert apply_transformations(
            sdfg, MapTiling, options={"tile_sizes": (4,)}
        ) == 1
        check_copy2(sdfg, "after tiling")
        # A tile map now wraps the outer map.
        st = sdfg.states()[0]
        sd = st.scope_dict()
        top = [n for n in st.nodes() if isinstance(n, MapEntry) and sd[n] is None]
        assert len(top) == 1 and top[0].map.params[0].startswith("__tile_")

    def test_map_tiling_nondivisible_size(self):
        sdfg = nested_copy_sdfg()
        apply_transformations(sdfg, MapTiling, options={"tile_sizes": (5,)})
        A = np.random.rand(7, 7)  # 7 % 5 != 0 -> boundary tile
        B = np.zeros((7, 7))
        run(sdfg, A=A, B=B)
        np.testing.assert_allclose(B, 2 * A)

    def test_map_to_for_loop(self):
        @rp.program
        def scale(A: rp.float64[N]):
            for i in rp.map[0:N]:
                A[i] = A[i] * 3

        sdfg = scale.to_sdfg()
        n_states = sdfg.number_of_nodes()
        assert apply_transformations(sdfg, MapToForLoop) == 1
        assert sdfg.number_of_nodes() > n_states  # loop states added
        A = np.random.rand(5)
        ref = A * 3
        run(sdfg, A=A)
        np.testing.assert_allclose(A, ref)

    def test_vectorization_marks_map(self):
        sdfg = mm_sdfg()
        apply_transformations(sdfg, MapReduceFusion)
        assert apply_transformations(sdfg, Vectorization) == 1
        comp = sdfg.compile()
        assert "einsum" in comp.source
        check_mm(sdfg, "after vectorization")

    def test_vectorization_skips_nonvectorizable(self):
        @rp.program
        def gather(idx: rp.int64[N], v: rp.float64[M], out: rp.float64[N]):
            for i in rp.map[0:N]:
                out[i] = v[idx[i]]

        sdfg = gather.to_sdfg()
        assert enumerate_matches(sdfg, Vectorization) == []


class TestFusion:
    def test_map_reduce_fusion_fig11a(self):
        sdfg = mm_sdfg()
        reds = [n for s in sdfg.states() for n in s.nodes() if isinstance(n, Reduce)]
        assert len(reds) == 1
        assert apply_transformations(sdfg, MapReduceFusion) == 1
        reds = [n for s in sdfg.states() for n in s.nodes() if isinstance(n, Reduce)]
        assert reds == []
        # The transient tensor is gone.
        assert not any("_mm_tmp" in name for name in sdfg.arrays)
        check_mm(sdfg, "after map-reduce fusion")

    def test_map_reduce_fusion_overwrites_prior_output(self):
        sdfg = mm_sdfg()
        apply_transformations(sdfg, MapReduceFusion)
        A, B = np.random.rand(5, 4), np.random.rand(4, 6)
        C = np.full((5, 6), 99.0)  # stale values must not leak in
        run(sdfg, A=A, B=B, C=C)
        np.testing.assert_allclose(C, A @ B)

    def test_map_fusion(self):
        @rp.program
        def two_maps(A: rp.float64[N], C: rp.float64[N]):
            tmp: rp.float64[N]
            for i in rp.map[0:N]:
                tmp[i] = A[i] * 2
            for j in rp.map[0:N]:
                C[j] = tmp[j] + 1

        sdfg = two_maps.to_sdfg()
        n_maps = sum(
            1 for s in sdfg.states() for n in s.nodes() if isinstance(n, MapEntry)
        )
        assert n_maps == 2
        assert apply_transformations(sdfg, MapFusion) == 1
        n_maps = sum(
            1 for s in sdfg.states() for n in s.nodes() if isinstance(n, MapEntry)
        )
        assert n_maps == 1
        A = np.random.rand(11)
        C = np.zeros(11)
        run(sdfg, A=A, C=C)
        np.testing.assert_allclose(C, A * 2 + 1)

    def test_map_fusion_requires_equal_ranges(self):
        @rp.program
        def mismatched(A: rp.float64[N], C: rp.float64[N]):
            tmp: rp.float64[N]
            for i in rp.map[0:N]:
                tmp[i] = A[i] * 2
            for j in rp.map[1 : N - 1]:
                C[j] = tmp[j] + 1

        sdfg = mismatched.to_sdfg()
        assert enumerate_matches(sdfg, MapFusion) == []

    def test_map_fusion_rejects_nontransient(self):
        @rp.program
        def ext(A: rp.float64[N], T: rp.float64[N], C: rp.float64[N]):
            for i in rp.map[0:N]:
                T[i] = A[i] * 2
            for j in rp.map[0:N]:
                C[j] = T[j] + 1

        sdfg = ext.to_sdfg()
        assert enumerate_matches(sdfg, MapFusion) == []


class TestMemory:
    def test_local_storage_fig11b(self):
        sdfg = nested_copy_sdfg()
        assert apply_transformations(sdfg, LocalStorage) == 1
        assert any(name.startswith("local_") for name in sdfg.arrays)
        check_copy2(sdfg, "after local storage")

    def test_local_storage_reindexes(self):
        sdfg = nested_copy_sdfg()
        apply_transformations(sdfg, LocalStorage)
        st = sdfg.states()[0]
        local = [n for n in st.data_nodes() if n.data.startswith("local_")][0]
        # Memlets below the inner entry now reference the local buffer.
        inner = [e for e in st.edges() if isinstance(e.dst, Tasklet)]
        assert any(e.data.data.startswith("local_") for e in inner)

    def test_double_buffering(self):
        sdfg = nested_copy_sdfg()
        apply_transformations(sdfg, LocalStorage)
        assert apply_transformations(sdfg, DoubleBuffering) == 1
        local_name = [n for n in sdfg.arrays if n.startswith("local_")][0]
        assert sdfg.arrays[local_name].shape[0].as_int() == 2
        check_copy2(sdfg, "after double buffering")

    def test_local_stream(self):
        sdfg = SDFG("filter")
        sdfg.add_array("A", ("N",), dtypes.float64)
        sdfg.add_stream("S", dtypes.float64, transient=True)
        sdfg.add_array("out", ("N",), dtypes.float64)
        st = sdfg.add_state()
        t, me, mx = st.add_mapped_tasklet(
            "f",
            {"i": "0:N"},
            inputs={"a": Memlet.simple("A", "i")},
            code="if a > 0.5:\n    s = a",
            outputs={"s": Memlet(data="S", subset="0", dynamic=True)},
        )
        s_node = [n for n in st.data_nodes() if n.data == "S"][0]
        o_node = st.add_write("out")
        st.add_nedge(s_node, o_node)

        def run_filter(sdfg):
            rng = np.random.RandomState(0)
            A = rng.rand(20)
            out = np.zeros(20)
            run(sdfg, A=A, out=out)
            return out

        before = run_filter(sdfg)
        assert apply_transformations(sdfg, LocalStream) == 1
        assert any(n.startswith("LS") for n in sdfg.arrays)
        after = run_filter(sdfg)
        np.testing.assert_allclose(before, after)

    def test_redundant_array_removed(self):
        # Appendix D's motivating situation: transient copied to output.
        sdfg = SDFG("red")
        sdfg.add_array("A", ("N",), dtypes.float64)
        sdfg.add_transient("tmp", ("N",), dtypes.float64, find_new_name=False)
        sdfg.add_array("B", ("N",), dtypes.float64)
        st = sdfg.add_state()
        t, me, mx = st.add_mapped_tasklet(
            "t",
            {"i": "0:N"},
            inputs={"a": Memlet.simple("A", "i")},
            code="b = a + 1",
            outputs={"b": Memlet.simple("tmp", "i")},
        )
        tmp_node = [n for n in st.data_nodes() if n.data == "tmp"][0]
        b_node = st.add_write("B")
        st.add_edge(tmp_node, b_node, Memlet.simple("tmp", "0:N"), None, None)
        assert apply_transformations(sdfg, RedundantArray) == 1
        assert "tmp" not in sdfg.arrays
        A = np.random.rand(9)
        B = np.zeros(9)
        run(sdfg, A=A, B=B)
        np.testing.assert_allclose(B, A + 1)

    def test_redundant_array_keeps_multiply_used(self):
        sdfg = SDFG("red2")
        sdfg.add_transient("tmp", ("N",), dtypes.float64, find_new_name=False)
        sdfg.add_array("B", ("N",), dtypes.float64)
        st = sdfg.add_state()
        st.add_edge(st.add_read("tmp"), st.add_write("B"),
                    Memlet.simple("tmp", "0:N"), None, None)
        st2 = sdfg.add_state()
        st2.add_access("tmp")  # second occurrence blocks removal
        from repro.sdfg import InterstateEdge

        sdfg.add_edge(st, st2, InterstateEdge())
        assert enumerate_matches(sdfg, RedundantArray) == []


class TestInterstate:
    def test_state_fusion(self):
        @rp.program
        def seq(A: rp.float64[N], C: rp.float64[N]):
            tmp: rp.float64[N]
            tmp = A * 2
            C = tmp + 1

        sdfg = seq.to_sdfg()
        # The frontend puts both in one state already; split artificially.
        sdfg2 = SDFG("two")
        sdfg2.add_array("A", ("N",), dtypes.float64)
        sdfg2.add_transient("t1", ("N",), dtypes.float64, find_new_name=False)
        sdfg2.add_array("B", ("N",), dtypes.float64)
        s1 = sdfg2.add_state("s1")
        s1.add_mapped_tasklet(
            "m1", {"i": "0:N"},
            inputs={"a": Memlet.simple("A", "i")},
            code="b = a * 2",
            outputs={"b": Memlet.simple("t1", "i")},
        )
        s2 = sdfg2.add_state("s2")
        s2.add_mapped_tasklet(
            "m2", {"i": "0:N"},
            inputs={"a": Memlet.simple("t1", "i")},
            code="b = a + 1",
            outputs={"b": Memlet.simple("B", "i")},
        )
        from repro.sdfg import InterstateEdge

        sdfg2.add_edge(s1, s2, InterstateEdge())
        assert apply_transformations(sdfg2, StateFusion) == 1
        assert sdfg2.number_of_nodes() == 1
        A = np.random.rand(7)
        B = np.zeros(7)
        run(sdfg2, A=A, B=B)
        np.testing.assert_allclose(B, A * 2 + 1)

    def test_state_fusion_respects_conditions(self):
        sdfg = SDFG("cond")
        s1 = sdfg.add_state("s1")
        s2 = sdfg.add_state("s2")
        from repro.sdfg import InterstateEdge

        sdfg.add_edge(s1, s2, InterstateEdge(condition="x > 0"))
        sdfg.add_symbol("x")
        assert enumerate_matches(sdfg, StateFusion) == []

    def test_inline_sdfg(self):
        inner = SDFG("inner")
        inner.add_array("x", ("N",), dtypes.float64)
        ist = inner.add_state()
        ist.add_mapped_tasklet(
            "scale", {"i": "0:N"},
            inputs={"a": Memlet.simple("x", "i")},
            code="b = a * 5",
            outputs={"b": Memlet.simple("x", "i")},
        )
        outer = SDFG("outer")
        outer.add_array("A", ("N",), dtypes.float64)
        st = outer.add_state()
        node = st.add_nested_sdfg(inner, ["x"], ["x"], symbol_mapping={"N": "N"})
        st.add_edge(st.add_read("A"), node, Memlet.simple("A", "0:N"), None, "x")
        st.add_edge(node, st.add_write("A"), Memlet.simple("A", "0:N"), "x", None)
        assert apply_transformations(outer, InlineSDFG) == 1
        from repro.sdfg.nodes import NestedSDFG

        assert not any(
            isinstance(n, NestedSDFG) for s in outer.states() for n in s.nodes()
        )
        A = np.ones(4)
        run(outer, A=A)
        np.testing.assert_allclose(A, 5.0)

    def test_strict_transformations_fixpoint(self):
        sdfg = mm_sdfg()
        before = sdfg.number_of_nodes()
        apply_strict_transformations(sdfg)
        check_mm(sdfg, "after strict pass")


class TestHardware:
    def test_gpu_transform(self):
        sdfg = nested_copy_sdfg()
        assert apply_transformations(sdfg, GPUTransform) == 1
        # Device copies + copy states exist.
        assert any(n.startswith("gpu_") for n in sdfg.arrays)
        names = [s.name for s in sdfg.states()]
        assert "copy_to_device" in names and "copy_to_host" in names
        # Top-level map got a device schedule.
        st = [s for s in sdfg.states() if s.entry_nodes()][0]
        sd = st.scope_dict()
        top = [n for n in st.entry_nodes() if sd[n] is None][0]
        assert top.map.schedule == ScheduleType.GPU_Device
        check_copy2(sdfg, "after GPU transform")
        # CUDA codegen accepts the result.
        cuda = sdfg.generate_code("cuda")
        assert "__global__" in cuda

    def test_fpga_transform(self):
        sdfg = nested_copy_sdfg()
        assert apply_transformations(sdfg, FPGATransform) == 1
        assert any(n.startswith("fpga_") for n in sdfg.arrays)
        check_copy2(sdfg, "after FPGA transform")
        hls = sdfg.generate_code("fpga")
        assert "HLS" in hls

    def test_gpu_transform_not_applicable_twice(self):
        sdfg = nested_copy_sdfg()
        apply_transformations(sdfg, GPUTransform)
        assert enumerate_matches(sdfg, GPUTransform) == []

    def test_mpi_transform_single_rank_semantics(self):
        sdfg = nested_copy_sdfg()
        assert apply_transformations(sdfg, MPITransform) == 1
        assert "__mpi_rank" in sdfg.symbols
        check_copy2(sdfg, "after MPI transform (1 rank)")


class TestHistoryReplay:
    def test_history_recorded_and_replayable(self):
        from repro.transformations import replay

        sdfg = mm_sdfg()
        apply_transformations(sdfg, [MapReduceFusion, Vectorization])
        assert sdfg.transformation_history == ["MapReduceFusion", "Vectorization"]
        fresh = mm_sdfg()
        replay(fresh, sdfg.transformation_history)
        assert fresh.transformation_history == sdfg.transformation_history
        check_mm(fresh, "after replay")


class TestAutoOptimize:
    """The paper's §8 outlook: systematic transformation application."""

    def test_auto_optimize_mm(self):
        from repro.transformations import auto_optimize

        sdfg = mm_sdfg()
        n = auto_optimize(sdfg)
        assert n >= 2  # at least fusion + vectorization
        assert "MapReduceFusion" in sdfg.transformation_history
        assert "Vectorization" in sdfg.transformation_history
        check_mm(sdfg, "after auto_optimize")
        assert "einsum" in sdfg.compile().source

    def test_auto_optimize_gpu_offload(self):
        from repro.transformations import auto_optimize

        sdfg = nested_copy_sdfg()
        auto_optimize(sdfg, device="gpu")
        assert any(name.startswith("gpu_") for name in sdfg.arrays)
        check_copy2(sdfg, "after auto_optimize(gpu)")

    def test_auto_optimize_idempotent_semantics(self):
        from repro.transformations import auto_optimize

        sdfg = mm_sdfg()
        auto_optimize(sdfg)
        auto_optimize(sdfg)  # second pass finds nothing harmful
        check_mm(sdfg, "after double auto_optimize")
