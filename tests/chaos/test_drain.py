"""Graceful drain and the startup integrity sweep, end to end:
in-flight requests finish, new jobs get R809, SIGTERM exits 0, and the
fsck CLI quarantines debris then reports clean."""

import json
import os
import signal
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

from repro.serve.client import ServeClient
from repro.serve.daemon import SDFGServer, ServeConfig
from repro.serve.loadtest import scale_sdfg


def _wait_for(predicate, timeout=10.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


# ------------------------------------------------------ embedded drain
def test_drain_finishes_inflight_and_rejects_new_jobs(tmp_path, monkeypatch):
    # Every worker-side request sleeps, so we can reliably catch the
    # daemon with a request in flight.
    monkeypatch.setenv("REPRO_FAULTS", "worker.request:delay@p=1,ms=700")
    monkeypatch.setenv("REPRO_CRASH_DIR", str(tmp_path / "crashes"))
    server = SDFGServer(ServeConfig(
        socket_path=str(tmp_path / "serve.sock"),
        workers=1,
        cache_root=str(tmp_path / "cache"),
        health_interval=600.0,
        drain_grace=10.0,
    )).start()
    sdfg = scale_sdfg(2.0, name="drain_kernel")
    result = {}

    def slow_request():
        with ServeClient(socket_path=server.config.socket_path,
                         tenant="alice") as c:
            a = np.arange(8, dtype=np.float64)
            result["resp"] = c.execute(
                sdfg, arrays={"A": a}, symbols={"N": 8}, strict=False)

    try:
        worker = threading.Thread(target=slow_request, daemon=True)
        worker.start()
        assert _wait_for(lambda: server._inflight_jobs > 0), \
            "the slow request never became in-flight"

        # Connect *before* the drain closes the listener: an existing
        # connection's next job must get a structured R809.
        late = ServeClient(socket_path=server.config.socket_path,
                           tenant="bob")
        server.request_shutdown()
        assert _wait_for(server._draining.is_set, timeout=5.0)
        resp = late.execute(sdfg, arrays={"A": np.zeros(8)},
                            symbols={"N": 8}, strict=False)
        late.close()
        assert resp["status"] == "rejected"
        assert resp["code"] == "R809"

        worker.join(timeout=15.0)
        assert not worker.is_alive()
        assert result["resp"]["status"] == "ok", \
            f"in-flight request was dropped by the drain: {result['resp']}"

        assert _wait_for(lambda: server.drained_clean is not None,
                         timeout=15.0)
        assert server.drained_clean is True
    finally:
        server.stop()


def test_stats_reports_draining_state(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CRASH_DIR", str(tmp_path / "crashes"))
    server = SDFGServer(ServeConfig(
        socket_path=str(tmp_path / "serve.sock"),
        workers=1, health_interval=600.0,
    )).start()
    try:
        with ServeClient(socket_path=server.config.socket_path) as c:
            stats = c.stats()
            assert stats["draining"] is False
            assert stats["chaos"] is None, "no plan installed"
    finally:
        server.stop()


# -------------------------------------------------- SIGTERM, full stack
def test_sigterm_drains_inflight_and_exits_zero(tmp_path):
    sock = str(tmp_path / "serve.sock")
    env = dict(os.environ)
    env["REPRO_FAULTS"] = "worker.request:delay@p=1,ms=700"
    env["REPRO_CRASH_DIR"] = str(tmp_path / "crashes")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.serve", "--socket", sock,
         "--workers", "1", "--cache-root", str(tmp_path / "cache")],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
    )
    try:
        assert _wait_for(lambda: os.path.exists(sock), timeout=30.0), \
            "daemon never bound its socket"
        # Make sure it answers before we start timing.
        with ServeClient(socket_path=sock) as probe:
            assert probe.ping()["status"] == "ok"

        sdfg = scale_sdfg(2.0, name="sigterm_kernel")
        result = {}

        def drive():
            with ServeClient(socket_path=sock, tenant="alice") as c:
                a = np.arange(8, dtype=np.float64)
                result["resp"] = c.execute(
                    sdfg, arrays={"A": a}, symbols={"N": 8}, strict=False)

        t = threading.Thread(target=drive, daemon=True)
        t.start()
        time.sleep(0.3)  # the request is now inside its 700ms delay
        proc.send_signal(signal.SIGTERM)

        t.join(timeout=20.0)
        assert not t.is_alive(), "in-flight request never got a response"
        assert result["resp"]["status"] == "ok", \
            f"SIGTERM drain dropped the in-flight request: {result['resp']}"
        rc = proc.wait(timeout=20.0)
        stderr = proc.stderr.read().decode()
        assert rc == 0, f"drain exit was {rc}; stderr:\n{stderr}"
        assert "draining" in stderr
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10.0)


# ------------------------------------------------------------ fsck CLI
def test_fsck_cli_quarantines_debris_then_reports_clean(tmp_path):
    cache = tmp_path / "cache"
    cache.mkdir()
    (cache / "good.json").write_text(json.dumps({"key": "good"}))
    (cache / "torn.json").write_text('{"key": "torn", "source": ')
    (cache / "stale.json.tmp.12345").write_text("partial write")
    crashes = tmp_path / "crashes"
    (crashes / "prog_999_000001").mkdir(parents=True)  # no manifest.json

    env = dict(os.environ)
    env["REPRO_CRASH_DIR"] = str(crashes)
    cmd = [sys.executable, "-m", "repro.serve", "--fsck",
           "--cache-root", str(cache)]

    first = subprocess.run(cmd, env=env, capture_output=True, text=True)
    assert first.returncode == 3, first.stderr
    report = json.loads(first.stdout)
    assert report["clean"] is False
    assert report["cache"]["quarantined"] == 1
    assert report["cache"]["tmp_removed"] == 1
    assert report["crash"]["quarantined"] == 1

    # The evidence moved, not vanished.
    assert (cache / ".quarantine" / "torn.json").exists()
    assert (crashes / ".quarantine" / "prog_999_000001").exists()
    assert (cache / "good.json").exists(), "sound entries are untouched"
    assert not (cache / "stale.json.tmp.12345").exists()

    second = subprocess.run(cmd, env=env, capture_output=True, text=True)
    assert second.returncode == 0, second.stdout
    assert json.loads(second.stdout)["clean"] is True
