"""The chaos engine itself: grammar, determinism, actions, telemetry."""

import time

import pytest

from repro.chaos import (
    ACTIONS,
    CATALOG,
    LAYERS,
    ChaosFault,
    FaultPlan,
    FaultRule,
    active_engine,
    faultpoint,
    install_plan,
    parse_rule,
    plan_from_env,
    uninstall_engine,
)
from repro.chaos.engine import CORRUPT_MARKER
from repro.telemetry.sink import TelemetrySink, install_sink, uninstall_sink


# ------------------------------------------------------------- grammar
def test_parse_rule_round_trips_through_spec():
    rule = parse_rule("progcache.disk_write:raise-io@hit=2,seed=11")
    assert rule.point == "progcache.disk_write"
    assert rule.action == "raise-io"
    assert rule.hit == 2 and rule.seed == 11
    assert rule.times == 1, "hit= implies a one-shot rule"
    again = parse_rule(rule.spec())
    assert again.spec() == rule.spec()


def test_parse_plan_multiple_clauses():
    plan = FaultPlan.parse(
        "progcache.disk_write:raise-io@hit=2;"
        "pool.worker_spawn:kill@p=0.3,seed=7"
    )
    assert [r.point for r in plan.rules] == [
        "progcache.disk_write", "pool.worker_spawn",
    ]
    assert plan.rules[1].p == pytest.approx(0.3)
    # Every rule's spec is itself parseable.
    FaultPlan.parse(plan.spec())


@pytest.mark.parametrize("bad", [
    "",                                  # empty plan
    "nocolon",                           # no action
    "point:frobnicate",                  # unknown action
    "point:raise@hit=0",                 # hit is 1-based
    "point:raise@p=1.5",                 # not a probability
    "point:raise@banana=1",              # unknown parameter
    "point:raise@hit",                   # missing value
])
def test_malformed_specs_are_rejected(bad):
    with pytest.raises(ValueError):
        FaultPlan.parse(bad)


def test_strict_parse_checks_the_catalog():
    FaultPlan.parse("progcache.disk_write:raise@hit=1", strict=True)
    FaultPlan.parse("progcache.*:raise@hit=1", strict=True)
    with pytest.raises(ValueError, match="unknown fault point"):
        FaultPlan.parse("no.such.point:raise@hit=1", strict=True)
    with pytest.raises(ValueError, match="matches no registered"):
        FaultPlan.parse("nosuchprefix.*:raise@hit=1", strict=True)


def test_catalog_spans_all_layers_with_at_least_15_points():
    assert len(CATALOG) >= 15
    assert {pt.layer for pt in CATALOG.values()} == set(LAYERS)
    for name in CATALOG:
        # Point names are the grammar's left-hand side: dotted, no colons.
        assert "." in name and ":" not in name


def test_seed_defaults_are_deterministic_per_point():
    a = parse_rule("progcache.disk_write:raise")
    b = parse_rule("progcache.disk_write:raise")
    c = parse_rule("tuningcache.disk_write:raise")
    assert a.seed == b.seed
    assert a.seed != c.seed


# --------------------------------------------------------- determinism
def _firing_pattern(spec: str, point: str, n: int):
    engine = install_plan(FaultPlan.parse(spec))
    pattern = []
    for _ in range(n):
        try:
            engine.evaluate(point, None, None, {})
            pattern.append(False)
        except ChaosFault:
            pattern.append(True)
    uninstall_engine()
    return pattern


def test_probabilistic_rules_replay_identically_from_the_seed():
    spec = "x.y:raise@p=0.5,seed=42"
    first = _firing_pattern(spec, "x.y", 200)
    second = _firing_pattern(spec, "x.y", 200)
    assert first == second
    assert any(first) and not all(first), "p=0.5 fires sometimes, not always"
    other = _firing_pattern("x.y:raise@p=0.5,seed=43", "x.y", 200)
    assert other != first, "a different seed gives a different stream"


def test_hit_rule_fires_exactly_on_the_nth_evaluation():
    pattern = _firing_pattern("x.y:raise@hit=3", "x.y", 6)
    assert pattern == [False, False, True, False, False, False]


def test_times_caps_total_firings():
    pattern = _firing_pattern("x.y:raise@p=1,times=2", "x.y", 5)
    assert pattern == [True, True, False, False, False]


def test_wildcard_matches_the_prefix():
    engine = install_plan(FaultPlan.parse("progcache.*:raise@p=1"))
    with pytest.raises(ChaosFault):
        engine.evaluate("progcache.disk_write", None, None, {})
    with pytest.raises(ChaosFault):
        engine.evaluate("progcache.disk_read", None, None, {})
    assert engine.evaluate("tuningcache.disk_write", "ok", None, {}) == "ok"


# -------------------------------------------------------------- actions
def test_all_actions_are_spelled_in_the_grammar_table():
    assert set(ACTIONS) == {
        "raise", "raise-io", "enospc", "corrupt", "delay", "kill", "exit",
    }


def test_raise_io_and_enospc_are_oserrors():
    import errno

    engine = install_plan(FaultPlan.parse("x.y:raise-io@p=1;x.z:enospc@p=1"))
    with pytest.raises(OSError) as io_err:
        engine.evaluate("x.y", None, None, {})
    assert io_err.value.errno == errno.EIO
    with pytest.raises(OSError) as full_err:
        engine.evaluate("x.z", None, None, {})
    assert full_err.value.errno == errno.ENOSPC


def test_corrupt_is_deterministic_and_never_parseable():
    import json

    payload = '{"key": "abc", "value": [1, 2, 3]}'
    first = install_plan(
        FaultPlan.parse("x.y:corrupt@p=1,seed=5")
    ).evaluate("x.y", payload, None, {})
    second = install_plan(
        FaultPlan.parse("x.y:corrupt@p=1,seed=5")
    ).evaluate("x.y", payload, None, {})
    assert first == second, "same seed, same torn bytes"
    assert first != payload and first.endswith(CORRUPT_MARKER)
    with pytest.raises(json.JSONDecodeError):
        json.loads(first)
    # bytes payloads tear too; None passes through untouched.
    engine = install_plan(FaultPlan.parse("x.y:corrupt@p=1"))
    torn = engine.evaluate("x.y", payload.encode(), None, {})
    assert isinstance(torn, bytes) and torn.endswith(CORRUPT_MARKER.encode())
    assert engine.evaluate("x.y", None, None, {}) is None


def test_delay_sleeps_for_ms():
    engine = install_plan(FaultPlan.parse("x.y:delay@p=1,ms=60"))
    start = time.monotonic()
    assert engine.evaluate("x.y", "payload", None, {}) == "payload"
    assert time.monotonic() - start >= 0.05


# ---------------------------------------------------------- activation
def test_no_engine_is_a_passthrough():
    assert active_engine() is None
    assert faultpoint("x.y", payload="p") == "p"


def test_env_var_activates_the_engine(monkeypatch):
    monkeypatch.setenv("REPRO_FAULTS", "x.y:raise@hit=1")
    uninstall_engine()  # drop the cached "no engine" resolution
    with pytest.raises(ChaosFault):
        faultpoint("x.y")
    faultpoint("x.y")  # one-shot: the second evaluation passes


def test_malformed_env_spec_is_ignored_with_a_warning(monkeypatch, capsys):
    monkeypatch.setenv("REPRO_FAULTS", "not a spec")
    assert plan_from_env() is None
    assert "malformed REPRO_FAULTS" in capsys.readouterr().err
    uninstall_engine()
    assert active_engine() is None, "a typo must not take the process down"


# ----------------------------------------------------------- telemetry
def test_every_firing_is_published_and_snapshotted():
    sink = TelemetrySink()
    previous = install_sink(sink)
    try:
        engine = install_plan(FaultPlan.parse("x.y:raise@hit=1,seed=9"))
        with pytest.raises(ChaosFault):
            faultpoint("x.y", ctx_key="ctx_value")
        events, _, _ = sink.drain(0)
        faults = [e for e in events if e.kind == "fault"]
        assert len(faults) == 1
        assert faults[0].label == "x.y"
        assert faults[0].fields["action"] == "raise"
        assert faults[0].fields["seed"] == 9
        assert faults[0].fields["ctx_key"] == "ctx_value"
        snap = engine.snapshot()
        assert snap["firings"] == 1
        assert snap["by_point"] == {"x.y": 1}
        assert snap["rules"][0]["fired"] == 1
    finally:
        install_sink(previous)
        uninstall_sink()


def test_faults_on_the_telemetry_path_do_not_recurse():
    """A rule on ``telemetry.publish`` fires for user publishes, but the
    engine's own ``fault:*`` publication is reentrancy-guarded — the
    firing is still recorded and the process does not loop."""
    sink = TelemetrySink()
    previous = install_sink(sink)
    try:
        engine = install_plan(
            FaultPlan.parse("telemetry.publish:raise@p=1,times=3")
        )
        with pytest.raises(ChaosFault):
            sink.publish("kernel", "k")
        snap = engine.snapshot()
        assert snap["firings"] == 1
    finally:
        install_sink(previous)
        uninstall_sink()


# ------------------------------------------------------------------ CLI
def test_cli_list_counts_the_catalog(capsys):
    from repro.chaos.__main__ import main

    assert main(["list", "--count"]) == 0
    assert int(capsys.readouterr().out.strip()) >= 15
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for layer in LAYERS:
        assert f"[{layer}]" in out


def test_cli_check_validates_specs(capsys):
    from repro.chaos.__main__ import main

    assert main(["check", "progcache.disk_write:raise-io@hit=2"]) == 0
    assert main(["check", "no.such.point:raise"]) == 1
    assert "invalid" in capsys.readouterr().err
