import pytest

from repro.chaos.engine import uninstall_engine


@pytest.fixture(autouse=True)
def _chaos_isolation(monkeypatch):
    """Every chaos test starts and ends with no engine and no
    ``REPRO_FAULTS`` in the environment (monkeypatch restores the
    original value on teardown)."""
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    uninstall_engine()
    yield
    uninstall_engine()
