"""Named chaos schedules against a live daemon (the acceptance tests).

Each run boots a real server with worker subprocesses, installs the
seeded fault plan on both sides of the fork, drives mixed load, and
checks the global invariants; ``run_schedule`` returns the verdict."""

import pytest

from repro.chaos.schedules import SCHEDULES, build_spec, run_schedule


def test_the_three_required_schedules_exist():
    assert {"cache-torn-write", "worker-kill-storm", "slow-io"} <= set(SCHEDULES)


def test_build_spec_is_deterministic_and_seed_sensitive():
    assert build_spec("slow-io", 7) == build_spec("slow-io", 7)
    assert build_spec("slow-io", 7) != build_spec("slow-io", 8)
    with pytest.raises(ValueError, match="unknown chaos schedule"):
        build_spec("nope", 0)


@pytest.mark.parametrize("schedule,seed", [
    ("cache-torn-write", 11),
    ("worker-kill-storm", 12),
    ("slow-io", 13),
])
def test_schedule_invariants_hold(schedule, seed, tmp_path):
    report = run_schedule(
        schedule, seed=seed, requests=24, threads=2, workers=2,
        cache_root=str(tmp_path / "cache"),
    )
    assert report["passed"], (
        f"schedule {schedule!r} failed — reproduce with "
        f"`python -m repro.chaos run --schedule {schedule} --seed {seed}`: "
        + "; ".join(report["failures"])
    )
    assert report["fired"] > 0, "a schedule that fires nothing tests nothing"
    assert report["drain_clean"] is True
    assert report["fsck"]["clean"] is True
    assert report["pool"]["alive"] == report["pool"]["size"]
