"""Faults injected at real product fault points exercise the genuine
hardening paths: quarantine-on-read, best-effort stores, the backend
degradation chain, and watchdog deadlines."""

import os

import numpy as np
import pytest

from repro.chaos import ChaosFault, FaultPlan, install_plan, uninstall_engine
from repro.codegen.compiler import compile_sdfg
from repro.codegen.progcache import ProgramCache, ProgramCacheEntry
from repro.sdfg import SDFG, Memlet, dtypes


def scale_sdfg(name="chaos_scale"):
    sdfg = SDFG(name)
    sdfg.add_array("A", ("N",), dtypes.float64)
    st = sdfg.add_state()
    st.add_mapped_tasklet(
        "s",
        {"i": "0:N"},
        inputs={"a": Memlet.simple("A", "i")},
        code="b = a * 2",
        outputs={"b": Memlet.simple("A", "i")},
    )
    return sdfg


def entry(key="k1"):
    return ProgramCacheEntry(
        key=key, backend="python", sdfg_name="s",
        source="def run():\n    pass\n", arg_arrays=["A"], symbol_order=["N"],
    )


# ------------------------------------------------------- program cache
def test_torn_progcache_write_is_quarantined_on_the_next_read(tmp_path):
    cache_dir = str(tmp_path / "cache")
    install_plan(FaultPlan.parse("progcache.disk_write:corrupt@hit=1,seed=3"))
    ProgramCache(cache_dir=cache_dir).store("k1", entry())
    uninstall_engine()

    path = os.path.join(cache_dir, "k1.json")
    assert os.path.exists(path), "the torn write still landed a file"

    fresh = ProgramCache(cache_dir=cache_dir)  # cold memory tier
    assert fresh.lookup("k1") is None
    assert fresh.corrupt == 1 and fresh.misses == 1
    assert not os.path.exists(path), "the torn entry was removed"


def test_failed_progcache_store_is_swallowed(tmp_path):
    cache_dir = str(tmp_path / "cache")
    install_plan(FaultPlan.parse("progcache.disk_write:raise-io@hit=1"))
    cache = ProgramCache(cache_dir=cache_dir)
    cache.store("k1", entry())  # must not raise
    uninstall_engine()
    assert cache.lookup("k1") is not None, "the memory tier still serves it"
    assert not os.path.exists(os.path.join(cache_dir, "k1.json"))
    assert not any(".tmp." in n for n in os.listdir(cache_dir)), \
        "no staging file was leaked"


def test_progcache_read_error_counts_as_a_miss(tmp_path):
    cache_dir = str(tmp_path / "cache")
    ProgramCache(cache_dir=cache_dir).store("k1", entry())
    install_plan(FaultPlan.parse("progcache.disk_read:raise-io@hit=1"))
    fresh = ProgramCache(cache_dir=cache_dir)
    assert fresh.lookup("k1") is None
    assert fresh.misses == 1


# -------------------------------------------------------- tuning cache
def test_tuning_cache_store_tolerates_disk_full(tmp_path):
    from repro.tuning.cache import TuningCache

    install_plan(FaultPlan.parse("tuningcache.disk_write:enospc@p=1"))
    cache = TuningCache(str(tmp_path / "tuning"))
    cache.put("key1", {"schedule": "best"})  # must not raise
    uninstall_engine()
    assert not any(
        ".tmp." in name
        for _, _, names in os.walk(str(tmp_path / "tuning"))
        for name in names
    )


# ----------------------------------------------------------- codegen
def test_codegen_fault_rides_the_degradation_chain():
    """``raise-io`` at compiler.codegen is an OSError — a degradable
    error — so the python backend degrades to the interpreter and the
    program still runs correctly."""
    install_plan(FaultPlan.parse("compiler.codegen:raise-io@hit=1"))
    compiled = compile_sdfg(scale_sdfg(), backend="python")
    uninstall_engine()
    assert compiled.requested_backend == "python"
    assert compiled.backend == "interpreter"
    assert [rec["to"] for rec in compiled.degradation] == ["interpreter"]
    a = np.random.rand(8)
    ref = a * 2
    compiled(A=a, N=8)
    np.testing.assert_allclose(a, ref)


# ----------------------------------------------------------- watchdog
def test_checkpoint_delay_trips_a_genuine_deadline():
    from repro.runtime.watchdog import WatchdogViolation

    install_plan(FaultPlan.parse("watchdog.checkpoint:delay@p=1,ms=400"))
    compiled = compile_sdfg(scale_sdfg("chaos_slow"), backend="python",
                            deadline=0.2)
    a = np.random.rand(64)
    with pytest.raises(WatchdogViolation) as exc:
        compiled(A=a, N=64)
    assert exc.value.code == "R805"


# ---------------------------------------------------------- arguments
def test_marshal_fault_surfaces_before_execution():
    install_plan(FaultPlan.parse("arguments.marshal:raise@hit=1"))
    compiled = compile_sdfg(scale_sdfg("chaos_args"), backend="python")
    with pytest.raises(ChaosFault):
        compiled(A=np.random.rand(8), N=8)
