"""The ``python -m repro.telemetry`` CLI: dashboard rendering and the
offline ``check`` / ``snapshot`` paths (live-daemon paths are covered by
tests/serve/test_metrics.py)."""

import json

import pytest

from repro.telemetry.__main__ import main, render_dashboard


def sample_snapshot():
    return {
        "window_seconds": 10.0,
        "windows": [{
            "start": 100.0, "end": 110.0, "events": 9, "dropped": 0,
            "skewed": 0,
            "kernels": {"gemm": {"count": 5, "mean": 0.002, "max": 0.004,
                                 "p50": 0.002, "p95": 0.003, "p99": 0.004,
                                 "warm": 4, "cold": 1, "samples": 5}},
            "caches": {"progcache": {"hit": 3, "miss": 1, "store": 1,
                                     "hit_rate": 0.75}},
            "tenants": {"alice": {"requests": 5, "ok": 5, "rejected": 0,
                                  "errors": 0, "shed": 0}},
            "breaker_transitions": [[101.0, "alice", "closed", "open"]],
            "hotspots": {
                "by_time": [{"element": "kernel:gemm", "seconds": 0.01}],
                "by_volume": [{"element": "map:mm", "bytes": 8192}],
            },
        }],
        "kernels": {"gemm": {"count": 5, "mean": 0.002, "max": 0.004,
                             "p50": 0.002, "p95": 0.003, "p99": 0.004,
                             "warm": 4, "cold": 1, "samples": 5}},
        "totals": {"events": 9, "dropped": 0, "skewed": 0, "windows": 1},
        "breaker_states": {"alice": "open"},
        "sink": {"capacity": 4096, "published": 9, "resident": 9},
    }


def test_render_dashboard_mentions_every_section():
    text = render_dashboard(sample_snapshot())
    for fragment in ("gemm", "alice", "progcache", "breakers: alice=open",
                     "hot spots", "9 events"):
        assert fragment in text, f"{fragment!r} missing from:\n{text}"


def test_snapshot_command_offline(tmp_path, capsys):
    snap_file = tmp_path / "snap.json"
    snap_file.write_text(json.dumps(sample_snapshot()))
    rc = main(["snapshot", "--snapshot", str(snap_file), "--assert-traffic"])
    assert rc == 0
    out = capsys.readouterr()
    assert "gemm" in out.out
    assert "assert-traffic OK" in out.err


def test_snapshot_assert_traffic_fails_on_idle_daemon(tmp_path, capsys):
    snap = sample_snapshot()
    snap["windows"] = []
    snap["kernels"] = {}
    snap_file = tmp_path / "idle.json"
    snap_file.write_text(json.dumps(snap))
    rc = main(["snapshot", "--snapshot", str(snap_file), "--assert-traffic"])
    assert rc == 1
    assert "assert-traffic FAILED" in capsys.readouterr().err


def test_snapshot_json_roundtrips(tmp_path, capsys):
    snap_file = tmp_path / "snap.json"
    snap_file.write_text(json.dumps(sample_snapshot()))
    rc = main(["snapshot", "--snapshot", str(snap_file), "--json"])
    assert rc == 0
    assert json.loads(capsys.readouterr().out) == sample_snapshot()


@pytest.fixture
def baseline_dir(tmp_path):
    bdir = tmp_path / "baselines"
    bdir.mkdir()
    (bdir / "BENCH_serve.json").write_text(json.dumps({
        "kernels": {"gemm": {"p50": 0.002, "count": 50}},
    }))
    return bdir


def test_check_passes_on_faithful_snapshot(tmp_path, baseline_dir, capsys):
    snap_file = tmp_path / "snap.json"
    snap_file.write_text(json.dumps(sample_snapshot()))
    rc = main(["check", "--snapshot", str(snap_file),
               "--baselines", str(baseline_dir), "--fail-on-drift"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "0 drift(s)" in out and "W901" not in out


def test_check_fails_on_drifted_snapshot(tmp_path, baseline_dir, capsys):
    snap = sample_snapshot()
    snap["kernels"]["gemm"]["p50"] = 0.02  # 10x the stored baseline
    snap_file = tmp_path / "snap.json"
    snap_file.write_text(json.dumps(snap))
    rc = main(["check", "--snapshot", str(snap_file),
               "--baselines", str(baseline_dir), "--fail-on-drift"])
    assert rc == 1
    assert "W901" in capsys.readouterr().out
    # Without --fail-on-drift the drift is reported but the exit is 0.
    rc = main(["check", "--snapshot", str(snap_file),
               "--baselines", str(baseline_dir)])
    assert rc == 0
    assert "1 drift(s)" in capsys.readouterr().out


def test_check_missing_baseline_is_reported_and_can_fail(
    tmp_path, baseline_dir, capsys
):
    snap = sample_snapshot()
    snap["kernels"] = {"unknown_kernel": snap["kernels"]["gemm"]}
    snap_file = tmp_path / "snap.json"
    snap_file.write_text(json.dumps(snap))
    rc = main(["check", "--snapshot", str(snap_file),
               "--baselines", str(baseline_dir)])
    assert rc == 0  # reported...
    assert "W902" in capsys.readouterr().out
    rc = main(["check", "--snapshot", str(snap_file),
               "--baselines", str(baseline_dir), "--fail-on-missing"])
    assert rc == 1  # ...and fatal on request


def test_check_json_output(tmp_path, baseline_dir, capsys):
    snap = sample_snapshot()
    snap["kernels"]["gemm"]["p50"] = 0.02
    snap_file = tmp_path / "snap.json"
    snap_file.write_text(json.dumps(snap))
    rc = main(["check", "--snapshot", str(snap_file),
               "--baselines", str(baseline_dir), "--json"])
    assert rc == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["drifts"][0]["kernel"] == "gemm"
    assert payload["drifts"][0]["ratio"] == 10.0
