"""Ring-buffer sink semantics: cursors, overflow drop accounting, and
process-active sink resolution."""

import threading

import pytest

from repro.telemetry.sink import (
    TelemetryEvent,
    TelemetrySink,
    active_sink,
    install_sink,
    telemetry_enabled,
    uninstall_sink,
)


@pytest.fixture(autouse=True)
def _fresh_active_sink():
    """Never leak a process-active sink into (or out of) a test."""
    uninstall_sink()
    yield
    uninstall_sink()


def test_publish_drain_roundtrip():
    sink = TelemetrySink(capacity=16)
    sink.publish("kernel", "gemm", 0.25, fields={"warm": True})
    sink.publish("cache", "progcache", fields={"event": "hit"})

    events, cursor, dropped = sink.drain(0)
    assert dropped == 0
    assert cursor == 2
    assert [(e.kind, e.label) for e in events] == [
        ("kernel", "gemm"), ("cache", "progcache"),
    ]
    assert events[0].value == 0.25
    assert events[0].fields == {"warm": True}
    # Cursor advances: nothing new on a second drain.
    events, cursor2, dropped = sink.drain(cursor)
    assert events == [] and cursor2 == cursor and dropped == 0


def test_overflow_drops_are_counted_exactly():
    sink = TelemetrySink(capacity=8)
    for i in range(20):
        sink.publish("kernel", f"k{i}", float(i))

    events, cursor, dropped = sink.drain(0)
    # 20 published into 8 slots: the 12 oldest are gone, and the loss
    # is reported, not absorbed.
    assert dropped == 12
    assert len(events) == 8
    assert [e.label for e in events] == [f"k{i}" for i in range(12, 20)]
    assert cursor == 20
    assert sink.stats() == {"capacity": 8, "published": 20, "resident": 8}


def test_interleaved_consumers_have_independent_cursors():
    sink = TelemetrySink(capacity=4)
    for i in range(3):
        sink.publish("kernel", f"k{i}")
    a_events, a_cursor, _ = sink.drain(0)
    assert len(a_events) == 3
    for i in range(3, 9):
        sink.publish("kernel", f"k{i}")
    # Consumer A kept up (only 6 new, but ring holds 4 → 2 dropped).
    a_events, _, a_dropped = sink.drain(a_cursor)
    assert a_dropped == 2 and len(a_events) == 4
    # A fresh consumer missed everything overwritten since the start.
    b_events, _, b_dropped = sink.drain(0)
    assert b_dropped == 5 and len(b_events) == 4


def test_drain_limit_batches_oldest_first():
    sink = TelemetrySink(capacity=16)
    for i in range(6):
        sink.publish("kernel", f"k{i}")
    events, cursor, _ = sink.drain(0, limit=4)
    assert [e.label for e in events] == ["k0", "k1", "k2", "k3"]
    events, cursor, _ = sink.drain(cursor)
    assert [e.label for e in events] == ["k4", "k5"]


def test_event_wire_form_roundtrip():
    ev = TelemetryEvent(7, 123.456789123, "kernel", "gemm", 0.5, {"warm": True})
    ts, kind, label, value, fields = ev.to_json()
    assert ts == 123.456789  # rounded for the wire
    assert (kind, label, value) == ("kernel", "gemm", 0.5)
    assert TelemetryEvent.fields_from_json(fields) == {"warm": True}
    assert TelemetryEvent.fields_from_json("junk") is None


def test_concurrent_publishers_never_lose_sequence_numbers():
    sink = TelemetrySink(capacity=4096)
    n_threads, per_thread = 8, 200

    def hammer(tid):
        for i in range(per_thread):
            sink.publish("kernel", f"t{tid}", float(i))

    threads = [threading.Thread(target=hammer, args=(t,)) for t in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    events, cursor, dropped = sink.drain(0)
    assert dropped == 0
    assert cursor == n_threads * per_thread
    assert sorted(e.seq for e in events) == list(range(n_threads * per_thread))


def test_active_sink_resolves_from_environment(monkeypatch):
    monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
    uninstall_sink()
    assert not telemetry_enabled()
    assert active_sink() is None

    monkeypatch.setenv("REPRO_TELEMETRY", "1")
    # Resolution is cached: flipping the env alone changes nothing...
    assert active_sink() is None
    # ...until the cache is reset.
    uninstall_sink()
    assert telemetry_enabled()
    sink = active_sink()
    assert isinstance(sink, TelemetrySink)
    assert active_sink() is sink  # cached thereafter


def test_install_sink_returns_previous():
    first, second = TelemetrySink(), TelemetrySink()
    assert install_sink(first) is None
    assert active_sink() is first
    assert install_sink(second) is first
    assert active_sink() is second
    assert install_sink(None) is second
    assert active_sink() is None
