"""Perf-drift detection: baseline loading (both BENCH shapes), W901
threshold-boundary semantics, W902 missing-baseline reporting."""

import json

import pytest

from repro.diagnostics import CODES, Severity
from repro.telemetry.regression import (
    PerfDrift,
    check_drift,
    load_baselines,
)


def snapshot_with(kernels):
    return {"kernels": kernels, "windows": [], "totals": {}}


def stats(p50, count=10):
    return {"count": count, "p50": p50, "mean": p50}


# ---------------------------------------------------------------- baselines
def test_load_serve_shape_baselines(tmp_path):
    path = tmp_path / "BENCH_serve.json"
    path.write_text(json.dumps({
        "kernels": {
            "warm_alice": {"p50": 0.002, "p99": 0.005, "count": 50},
            "meanonly": {"mean": 0.004, "count": 5},
            "broken": {"p50": None, "mean": None},
            "zeroed": {"p50": 0.0},
        },
        "latency": {"warm": {"p50": 0.001}},
    }))
    baselines = load_baselines(str(path))
    assert baselines["warm_alice"] == (0.002, "BENCH_serve.json")
    assert baselines["meanonly"] == (0.004, "BENCH_serve.json")
    assert "broken" not in baselines and "zeroed" not in baselines
    # The serve shape loads ONLY the kernels section, not latency etc.
    assert set(baselines) == {"warm_alice", "meanonly"}


def test_load_flat_shape_baselines(tmp_path):
    path = tmp_path / "BENCH_pr4.json"
    path.write_text(json.dumps({
        "gemm_warm_seconds": 0.003,
        "speedup": 12.5,
        "enabled": True,  # bools are not timings
        "note": "text",
    }))
    baselines = load_baselines(str(path))
    assert baselines["gemm_warm_seconds"] == (0.003, "BENCH_pr4.json")
    assert "enabled" not in baselines and "note" not in baselines


def test_load_baselines_from_directory_first_file_wins(tmp_path):
    (tmp_path / "BENCH_aaa.json").write_text(
        json.dumps({"kernels": {"k": {"p50": 0.001}}}))
    (tmp_path / "BENCH_zzz.json").write_text(
        json.dumps({"kernels": {"k": {"p50": 0.9}, "only_z": {"p50": 0.2}}}))
    (tmp_path / "ignored.json").write_text("{}")
    baselines = load_baselines(str(tmp_path))
    assert baselines["k"] == (0.001, "BENCH_aaa.json")
    assert baselines["only_z"][0] == 0.2


def test_malformed_baseline_file_is_loud(tmp_path):
    path = tmp_path / "BENCH_bad.json"
    path.write_text("{not json")
    with pytest.raises(json.JSONDecodeError):
        load_baselines(str(path))
    with pytest.raises(FileNotFoundError):
        load_baselines(str(tmp_path / "BENCH_absent.json"))


# -------------------------------------------------------------- thresholds
def test_drift_fires_strictly_past_threshold():
    baselines = {"k": (1.0, "BENCH_serve.json")}
    # Exactly at threshold x baseline: NOT a drift.
    at = check_drift(snapshot_with({"k": stats(1.5)}), baselines, threshold=1.5)
    assert at.drifts == [] and at.checked == ["k"]
    # A hair past: fires.
    past = check_drift(
        snapshot_with({"k": stats(1.5000001)}), baselines, threshold=1.5
    )
    assert len(past.drifts) == 1
    drift = past.drifts[0]
    assert drift.kernel == "k"
    assert drift.baseline == 1.0 and drift.observed == 1.5000001
    assert drift.ratio > 1.5
    # And comfortably under never fires.
    under = check_drift(snapshot_with({"k": stats(0.9)}), baselines, threshold=1.5)
    assert under.drifts == []


def test_min_samples_skips_cold_one_shots():
    baselines = {"k": (0.001, "b")}
    report = check_drift(
        snapshot_with({"k": stats(1.0, count=2)}), baselines, min_samples=3
    )
    assert report.drifts == [] and report.skipped == ["k"]
    report = check_drift(
        snapshot_with({"k": stats(1.0, count=3)}), baselines, min_samples=3
    )
    assert len(report.drifts) == 1 and report.skipped == []


def test_missing_baseline_is_w902_not_silence():
    report = check_drift(snapshot_with({"mystery": stats(0.5)}), {})
    assert report.drifts == []
    assert len(report.missing) == 1
    diag = report.missing[0]
    assert diag.code == "W902" and diag.severity is Severity.WARNING
    assert "mystery" in diag.message and "REPRO_BENCH_REPORTS" in diag.message


def test_w901_diagnostic_payload_and_registry():
    assert "W901" in CODES and "W902" in CODES
    drift = PerfDrift(
        kernel="gemm", baseline=0.001, observed=0.0105, ratio=10.5,
        threshold=1.5, samples=40, window="60s", source="BENCH_serve.json",
    )
    diag = drift.to_diagnostic()
    assert diag.code == "W901" and diag.severity is Severity.WARNING
    for fragment in ("gemm", "10.50x", "BENCH_serve.json"):
        assert fragment in diag.message
    payload = drift.to_json()
    assert payload["code"] == "W901" and payload["ratio"] == 10.5


def test_report_json_shape():
    baselines = {"k": (0.001, "b")}
    report = check_drift(
        snapshot_with({"k": stats(0.01), "new": stats(0.2)}), baselines
    )
    as_json = report.to_json()
    assert [d["kernel"] for d in as_json["drifts"]] == ["k"]
    assert [d["code"] for d in as_json["missing"]] == ["W902"]
    assert as_json["checked"] == ["k"]
