"""Tuning-event aggregation and exemplar-trace retention: per-label
tuning counters folded into windows, the slowest traced request kept
whole per window (and fleet-wide in the snapshot), and both surfaced by
the CLI dashboard and the serve ``metrics`` endpoint."""

import numpy as np
import pytest

from repro.instrumentation import InstrumentationReport
from repro.instrumentation.recorder import EventNode
from repro.telemetry.__main__ import render_dashboard
from repro.telemetry.aggregate import WindowedAggregator
from repro.telemetry.sink import TelemetrySink


def make_report(sdfg="k", ms=2.5):
    node = EventNode("state", "s0")
    node.count = 1
    node.duration = ms / 1e3
    return InstrumentationReport(sdfg=sdfg, backend="interpreter",
                                 events=[node])


@pytest.fixture
def sink():
    return TelemetrySink()


@pytest.fixture
def agg(sink):
    return WindowedAggregator(sink, window_seconds=60.0, max_windows=5)


# ------------------------------------------------------- tuning counters
class TestTuningFold:
    def test_numeric_fields_sum_per_label(self, sink, agg):
        for accepted in (1, 0, 1):
            sink.publish("tuning", "xform:MapTiling", 0.25, fields={
                "candidates": 4, "accepted": accepted,
                "rejected": 1 - accepted, "apply_s": 0.1,
            })
        sink.publish("tuning", "xform:MapFusion", None,
                     fields={"candidates": 2, "accepted": 0, "rejected": 2})
        snap = agg.snapshot()
        tiling = snap["tuning"]["xform:MapTiling"]
        assert tiling["events"] == 3
        assert tiling["candidates"] == 12
        assert tiling["accepted"] == 2 and tiling["rejected"] == 1
        assert tiling["seconds"] == pytest.approx(0.75)
        assert tiling["apply_s"] == pytest.approx(0.3)
        assert snap["tuning"]["xform:MapFusion"]["seconds"] == 0.0

    def test_non_numeric_and_bool_fields_ignored(self, sink, agg):
        sink.publish("tuning", "cutout:init0", 0.1, fields={
            "cache_hit": True, "label": "init0", "evals": 8,
        })
        counters = agg.snapshot()["tuning"]["cutout:init0"]
        assert counters["evals"] == 8
        assert "cache_hit" not in counters and "label" not in counters

    def test_counters_merge_across_windows(self, sink, agg):
        sink.publish("tuning", "xform:MapTiling", ts=10.0,
                     fields={"candidates": 3})
        sink.publish("tuning", "xform:MapTiling", ts=70.0,
                     fields={"candidates": 5})
        snap = agg.snapshot()
        assert len(snap["windows"]) == 2
        assert snap["tuning"]["xform:MapTiling"]["candidates"] == 8
        per_window = [
            w["tuning"].get("xform:MapTiling", {}).get("candidates")
            for w in snap["windows"]
        ]
        assert sorted(filter(None, per_window)) == [3, 5]


# ------------------------------------------------------- exemplar traces
class TestExemplarRetention:
    def test_slowest_trace_wins_within_window(self, sink, agg):
        for tenant, seconds in (("t0", 0.002), ("t1", 0.009), ("t2", 0.004)):
            sink.publish("trace", "kern", seconds, ts=5.0, fields={
                "tenant": tenant, "backend": "interpreter",
                "report": make_report(ms=seconds * 1e3).to_json(),
            })
        snap = agg.snapshot()
        ex = snap["exemplar"]
        assert ex["tenant"] == "t1"
        assert ex["seconds"] == pytest.approx(0.009)
        # The full instrumentation tree survived aggregation.
        report = InstrumentationReport.from_json(ex["report"])
        assert not report.is_empty()

    def test_cross_window_snapshot_picks_global_max(self, sink, agg):
        sink.publish("trace", "old", 0.020, ts=10.0,
                     fields={"report": make_report("old").to_json()})
        sink.publish("trace", "new", 0.003, ts=70.0,
                     fields={"report": make_report("new").to_json()})
        snap = agg.snapshot()
        assert snap["exemplar"]["kernel"] == "old"
        # Each window still holds its own exemplar for drill-down.
        kernels = {w["exemplar"]["kernel"]
                   for w in snap["windows"] if w["exemplar"]}
        assert kernels == {"old", "new"}

    def test_trace_excluded_from_hotspots(self, sink, agg):
        sink.publish("kernel", "kern", 0.001, ts=5.0)
        sink.publish("trace", "kern", 0.001, ts=5.0,
                     fields={"report": make_report().to_json()})
        window = agg.snapshot()["windows"][0]
        elements = {h["element"] for h in window["hotspots"]["by_time"]}
        assert "kernel:kern" in elements
        assert "trace:kern" not in elements


# ------------------------------------------------------------- dashboard
def test_dashboard_renders_tuning_and_exemplar(sink, agg):
    sink.publish("tuning", "xform:MapTiling", 0.5,
                 fields={"candidates": 10, "accepted": 3, "rejected": 7})
    sink.publish("trace", "gemm_chain", 0.0123, fields={
        "tenant": "alice", "backend": "interpreter",
        "report": make_report("gemm_chain", ms=12.3).to_json(),
    })
    text = render_dashboard(agg.snapshot())
    assert "xform:MapTiling" in text
    assert "10" in text and "cand" in text
    assert "slowest traced request: gemm_chain" in text
    assert "tenant alice" in text
    assert "instrumentation report" in text


def test_dashboard_survives_malformed_exemplar_report(sink, agg):
    sink.publish("trace", "kern", 0.001, fields={"report": {"bogus": 1}})
    text = render_dashboard(agg.snapshot())
    assert "slowest traced request: kern" in text


# --------------------------------------------------------- serve e2e
def test_serve_metrics_carries_exemplar_trace(tmp_path, monkeypatch):
    """With profiling on, the worker ships the slowest request's full
    instrumentation tree and ``metrics`` serves it fleet-wide."""
    from repro.serve.client import ServeClient
    from repro.serve.daemon import SDFGServer
    from repro.serve.loadtest import scale_sdfg

    from tests.serve.test_metrics import make_config

    monkeypatch.setenv("REPRO_CRASH_DIR", str(tmp_path / "crashes"))
    monkeypatch.setenv("REPRO_PROFILE", "1")
    sdfg = scale_sdfg(2.0, name="exemplar_kernel")
    a = np.arange(8, dtype=np.float64)
    with SDFGServer(make_config(tmp_path)) as srv:
        with ServeClient(socket_path=srv.config.socket_path,
                         tenant="bob") as c:
            for _ in range(3):
                assert c.execute(sdfg, arrays={"A": a.copy()},
                                 symbols={"N": 8})["status"] == "ok"
            snap = c.metrics()["metrics"]
    ex = snap["exemplar"]
    assert ex is not None and ex["kernel"] == "exemplar_kernel"
    assert ex["tenant"] == "bob"
    report = InstrumentationReport.from_json(ex["report"])
    assert report.sdfg == "exemplar_kernel"
    assert not report.is_empty()
    assert "slowest traced request: exemplar_kernel" in render_dashboard(snap)
