"""Windowed-aggregation edge cases (ISSUE 7 satellite): empty windows,
clock-skewed events, overflow drop accounting, single-event percentiles,
plus the fold taxonomy (caches, tenants, breakers, hot spots)."""

from repro.telemetry.aggregate import (
    WindowedAggregator,
    merge_cache_counters,
    merge_tenant_counters,
    percentile,
)
from repro.telemetry.sink import TelemetrySink


def make_aggregator(capacity=64, window_seconds=10.0, max_windows=3):
    sink = TelemetrySink(capacity=capacity)
    return sink, WindowedAggregator(
        sink, window_seconds=window_seconds, max_windows=max_windows
    )


# ------------------------------------------------------------- percentiles
def test_percentile_of_nothing_is_none():
    assert percentile([], 50) is None


def test_single_sample_is_every_percentile_of_itself():
    for q in (0, 50, 95, 99, 100):
        assert percentile([0.25], q) == 0.25


def test_percentile_linear_interpolation():
    samples = [1.0, 2.0, 3.0, 4.0]
    assert percentile(samples, 50) == 2.5
    assert percentile(samples, 0) == 1.0
    assert percentile(samples, 100) == 4.0


# ------------------------------------------------------------ empty windows
def test_snapshot_with_no_events_is_empty_but_well_formed():
    _, agg = make_aggregator()
    snap = agg.snapshot()
    assert snap["windows"] == []
    assert snap["kernels"] == {}
    assert snap["totals"] == {
        "events": 0, "dropped": 0, "skewed": 0, "windows": 0,
    }
    assert snap["breaker_states"] == {}


def test_single_event_snapshot_percentiles():
    sink, agg = make_aggregator()
    sink.publish("kernel", "gemm", 0.125, ts=100.0, fields={"warm": True})
    snap = agg.snapshot()
    stats = snap["kernels"]["gemm"]
    assert stats["count"] == 1
    assert stats["p50"] == stats["p95"] == stats["p99"] == 0.125
    assert stats["mean"] == 0.125 and stats["max"] == 0.125
    assert stats["warm"] == 1 and stats["cold"] == 0


# ---------------------------------------------------------------- rotation
def test_windows_rotate_by_event_timestamp_and_evict():
    sink, agg = make_aggregator(window_seconds=10.0, max_windows=3)
    for window_idx in range(5):  # windows 0..4, retention 3 → keep 2,3,4
        sink.publish("kernel", "k", 0.01, ts=window_idx * 10.0 + 1.0)
    snap = agg.snapshot()
    assert len(snap["windows"]) == 3
    starts = [w["start"] for w in snap["windows"]]
    assert starts == [40.0, 30.0, 20.0]  # newest first
    # Merged kernels only see retained windows.
    assert snap["kernels"]["k"]["count"] == 3


def test_clock_skewed_events_fold_into_oldest_window():
    sink, agg = make_aggregator(window_seconds=10.0, max_windows=2)
    sink.publish("kernel", "fresh", 0.01, ts=100.0)
    sink.publish("kernel", "fresh", 0.01, ts=110.0)
    agg.collect()
    # An event from far before the retention horizon (late worker
    # propagation, clock skew) must not crash rotation or vanish.
    sink.publish("kernel", "late", 0.02, ts=5.0)
    snap = agg.snapshot()
    assert snap["totals"]["skewed"] == 1
    oldest = snap["windows"][-1]
    assert oldest["skewed"] == 1
    assert "late" in oldest["kernels"]
    # It did NOT open a new window in the past.
    assert all(w["start"] >= 100.0 for w in snap["windows"])


def test_ring_overflow_is_charged_to_totals_and_newest_window():
    sink, agg = make_aggregator(capacity=8, window_seconds=1e6)
    for i in range(30):
        sink.publish("kernel", "k", 0.001, ts=50.0)
    snap = agg.snapshot()
    assert snap["totals"]["dropped"] == 22
    assert snap["totals"]["events"] == 8
    assert snap["windows"][0]["dropped"] == 22
    assert snap["kernels"]["k"]["count"] == 8


def test_worker_drop_events_accumulate_into_totals():
    sink, agg = make_aggregator()
    # The supervisor republishes a worker's overflow as a "drop" event.
    sink.publish("drop", "w1", 17.0, ts=10.0)
    snap = agg.snapshot()
    assert snap["totals"]["dropped"] == 17


# ---------------------------------------------------------------- taxonomy
def test_cache_tenant_breaker_and_hotspot_folds():
    sink, agg = make_aggregator(window_seconds=100.0)
    ts = 10.0
    sink.publish("cache", "progcache", ts=ts, fields={"event": "hit", "n": 3})
    sink.publish("cache", "progcache", ts=ts, fields={"event": "miss"})
    sink.publish("cache", "progcache", ts=ts, fields={"event": "store"})
    sink.publish("request", "execute", ts=ts,
                 fields={"tenant": "alice", "status": "ok"})
    sink.publish("request", "execute", ts=ts,
                 fields={"tenant": "alice", "status": "rejected",
                         "shed": True})
    sink.publish("request", "execute", ts=ts,
                 fields={"tenant": "bob", "status": "error"})
    sink.publish("breaker", "alice", ts=ts,
                 fields={"old": "closed", "new": "open"})
    sink.publish("breaker", "alice", ts=ts + 1,
                 fields={"old": "open", "new": "half-open"})
    sink.publish("map", "state0/mm", 0.5, ts=ts,
                 fields={"volume_bytes": 4096})
    sink.publish("map", "state0/other", 0.1, ts=ts)

    snap = agg.snapshot()
    window = snap["windows"][0]

    caches = window["caches"]["progcache"]
    assert caches["hit"] == 3 and caches["miss"] == 1 and caches["store"] == 1
    assert caches["hit_rate"] == 0.75

    tenants = window["tenants"]
    assert tenants["alice"] == {
        "requests": 2, "ok": 1, "rejected": 1, "errors": 0, "shed": 1,
    }
    assert tenants["bob"]["errors"] == 1

    assert [t[1:] for t in window["breaker_transitions"]] == [
        ["alice", "closed", "open"], ["alice", "open", "half-open"],
    ]
    assert snap["breaker_states"] == {"alice": "half-open"}

    by_time = window["hotspots"]["by_time"]
    assert by_time[0]["element"] == "map:state0/mm"
    assert by_time[0]["seconds"] == 0.5
    by_volume = window["hotspots"]["by_volume"]
    assert by_volume == [{"element": "map:state0/mm", "bytes": 4096}]


def test_cross_window_merges():
    sink, agg = make_aggregator(window_seconds=10.0, max_windows=5)
    for window_idx in (0, 1):
        ts = window_idx * 10.0 + 1.0
        sink.publish("request", "execute", ts=ts,
                     fields={"tenant": "alice", "status": "ok"})
        sink.publish("cache", "tuning", ts=ts, fields={"event": "hit"})
        sink.publish("cache", "tuning", ts=ts, fields={"event": "miss"})
    snap = agg.snapshot()
    assert merge_tenant_counters(snap)["alice"]["requests"] == 2
    merged = merge_cache_counters(snap)["tuning"]
    assert merged["hit"] == 2 and merged["miss"] == 2
    assert merged["hit_rate"] == 0.5
