"""Case Study I (paper §6.2): interactively optimizing matrix multiply.

Reproduces the Fig. 15 workflow programmatically: start from the naive
map-reduce dataflow that `C = A @ B` expands to (Fig. 9b), apply the
transformation chain step by step, and watch performance climb toward
the tuned-library bound.  Also demonstrates the "optimization version
control" of §4.2: the recorded chain replays onto a fresh SDFG.

Run:  python examples/matmul_optimization.py
"""

import time

import numpy as np

import repro as rp
from repro.transformations import (
    MapCollapse,
    MapExpansion,
    MapReduceFusion,
    MapTiling,
    Vectorization,
    apply_transformations,
    replay,
)

M, K, N = rp.symbol("M"), rp.symbol("K"), rp.symbol("N")
SIZE = 192


@rp.program
def mm(A: rp.float64[M, K], B: rp.float64[K, N], C: rp.float64[M, N]):
    C = A @ B


def measure(sdfg, data, reps=3) -> float:
    comp = sdfg.compile()
    comp(**data)  # warm-up (and correctness check below)
    best = float("inf")
    for _ in range(reps):
        data["C"][:] = 0
        t0 = time.perf_counter()
        comp(**data)
        best = min(best, time.perf_counter() - t0)
    return best


def main():
    rng = np.random.RandomState(0)
    data = {
        "A": rng.rand(SIZE, SIZE),
        "B": rng.rand(SIZE, SIZE),
        "C": np.zeros((SIZE, SIZE)),
    }
    ref = data["A"] @ data["B"]
    flops = 2 * SIZE**3

    chain = [
        ("unoptimized (Fig. 9b)", None),
        ("MapReduceFusion", lambda s: apply_transformations(s, MapReduceFusion)),
        ("LoopReorder (expand+collapse)",
         lambda s: apply_transformations(s, [MapExpansion, MapCollapse])),
        ("MapTiling 32^3",
         lambda s: apply_transformations(s, MapTiling,
                                         options={"tile_sizes": (32, 32, 32)})),
        ("Vectorization", lambda s: apply_transformations(s, Vectorization)),
    ]

    mm._sdfg = None
    sdfg = mm.to_sdfg()
    print(f"{'step':34s} {'time':>12s} {'Gflop/s':>10s}")
    for label, step in chain:
        if step is not None:
            step(sdfg)
        secs = measure(sdfg, data)
        assert np.allclose(data["C"], ref)
        print(f"{label:34s} {secs * 1e3:9.2f} ms {flops / secs / 1e9:10.2f}")

    t0 = time.perf_counter()
    data["A"] @ data["B"]
    lib = time.perf_counter() - t0
    print(f"{'tuned library (np.dot, MKL role)':34s} {lib * 1e3:9.2f} ms "
          f"{flops / lib / 1e9:10.2f}")

    # Optimization version control: replay the recorded chain.
    print("\nrecorded chain:", sdfg.transformation_history)
    mm._sdfg = None
    fresh = mm.to_sdfg()
    replay(fresh, sdfg.transformation_history,
           options={"MapTiling": {"tile_sizes": (32, 32, 32)}})
    secs = measure(fresh, data)
    assert np.allclose(data["C"], ref)
    print(f"replayed chain: {secs * 1e3:.2f} ms — identical workflow, fresh SDFG")


if __name__ == "__main__":
    main()
