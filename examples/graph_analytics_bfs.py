"""Case Study II (paper §6.3): breadth-first search as stateful dataflow.

Builds the Fig. 16 data-driven push BFS — data-dependent map ranges over
the frontier, CSR-row indirection, stream pushes of discovered vertices,
and a Sum-WCR frontier counter — applies the LocalStream optimization
step, and compares against the framework-role baselines on the three
graph regimes of Table 5.

Run:  python examples/graph_analytics_bfs.py
"""

import time

import numpy as np

from repro.library.graphs import (
    bfs_direction_optimizing,
    bfs_level_sync,
    bfs_reference,
    kronecker_graph,
    road_network,
    social_network,
)
from repro.workloads.bfs import build_bfs_sdfg


def main():
    graphs = {
        "road (USA-like)": road_network(36, keep=0.7, seed=1),
        "social (LiveJournal-like)": social_network(1000, 12, seed=2),
        "kronecker (kron-like)": kronecker_graph(9, 8, seed=3),
    }

    sdfg = build_bfs_sdfg(optimized=True)
    print("BFS SDFG transformation history:", sdfg.transformation_history)
    comp = sdfg.compile()

    print(f"\n{'graph':28s} {'V':>7s} {'E':>8s} {'sdfg':>9s} "
          f"{'gluon-role':>11s} {'galois-role':>12s}")
    for name, g in graphs.items():
        ref = bfs_reference(g, 0)
        depth = np.zeros(g.num_vertices, np.int32)

        t0 = time.perf_counter()
        comp(G_row=g.indptr, G_col=g.indices, depth=depth, src=0,
             V=g.num_vertices, E=g.num_edges)
        t_sdfg = time.perf_counter() - t0
        assert np.array_equal(depth, ref)

        t0 = time.perf_counter()
        bfs_level_sync(g, 0)
        t_sync = time.perf_counter() - t0
        t0 = time.perf_counter()
        bfs_direction_optimizing(g, 0)
        t_opt = time.perf_counter() - t0

        print(f"{name:28s} {g.num_vertices:7d} {g.num_edges:8d} "
              f"{t_sdfg * 1e3:8.2f}ms {t_sync * 1e3:10.2f}ms {t_opt * 1e3:11.2f}ms")

    print("\nAll SDFG depths verified against the textbook BFS.")
    print("(Paper shape: frameworks shine on social graphs; the SDFG's "
          "fine-grained scheduling is relatively strongest on road maps.)")


if __name__ == "__main__":
    main()
