"""Quickstart: write a data-centric program, inspect its SDFG, run it.

Covers the paper's Fig. 2 development scheme end-to-end:
problem formulation (restricted Python) -> data-centric IR (SDFG) ->
transformation -> compilation -> execution.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro as rp

N = rp.symbol("N")


# 1) The domain scientist writes ordinary (restricted) Python.  Memlets
#    are declared explicitly inside tasklets: `<<` reads, `>>` writes.
@rp.program
def laplace(A: rp.float64[2, N], T: rp.int64):
    for t in range(T):
        for i in rp.map[1 : N - 1]:
            with rp.tasklet:
                w << A[t % 2, i - 1 : i + 2]
                out >> A[(t + 1) % 2, i]
                out = w[0] - 2 * w[1] + w[2]


def main():
    # 2) Parse into the data-centric IR and look at it.
    sdfg = laplace.to_sdfg()
    print(sdfg.summary())
    print("\nGraphViz available via sdfg.to_dot() "
          f"({len(sdfg.to_dot().splitlines())} lines)")

    # 3) Execute through the compiled backend.  Symbolic sizes (N) are
    #    inferred from the concrete array shapes at the call.
    a = np.random.rand(2, 2033)
    expected = a.copy()
    for t in range(50):
        expected[(t + 1) % 2, 1:-1] = (
            expected[t % 2, :-2] - 2 * expected[t % 2, 1:-1] + expected[t % 2, 2:]
        )
    laplace(a, 50)
    assert np.allclose(a, expected)
    print("\nLaplace(T=50) matches the NumPy reference.")

    # 4) The performance engineer's view: the same program, transformed
    #    without touching the source above.
    from repro.transformations import Vectorization, enumerate_matches

    matches = enumerate_matches(sdfg, Vectorization)
    print(f"\nVectorization applies at {len(matches)} site(s).")
    if matches:
        matches[0].apply_and_record()
        print("applied; transformation history:", sdfg.transformation_history)

    # 5) Inspect the generated code for each target.
    print("\n--- generated C++ (excerpt) ---")
    print("\n".join(sdfg.generate_code("cpp").splitlines()[:20]))


if __name__ == "__main__":
    main()
