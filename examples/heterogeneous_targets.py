"""Performance portability: one program, three targets (paper's thesis).

The same jacobi-2d program is (a) executed on the CPU backend,
(b) offloaded with GPUTransform and inspected as CUDA + simulated on the
P100 model, (c) offloaded with FPGATransform and inspected as HLS +
simulated on the VCU1525 model — without modifying the original code.

Run:  python examples/heterogeneous_targets.py
"""

import numpy as np

import repro as rp
from repro.runtime.perfmodel import simulate
from repro.transformations import FPGATransform, GPUTransform, apply_transformations
from repro.sdfg import SDFG

N = rp.symbol("N")


@rp.program
def jacobi(A: rp.float64[N, N], B: rp.float64[N, N], T: rp.int64):
    for t in range(T):
        for i, j in rp.map[1 : N - 1, 1 : N - 1]:
            B[i, j] = 0.2 * (A[i, j] + A[i - 1, j] + A[i + 1, j]
                             + A[i, j - 1] + A[i, j + 1])
        for i, j in rp.map[1 : N - 1, 1 : N - 1]:
            A[i, j] = B[i, j]


def main():
    base = jacobi.to_sdfg()
    syms = {"N": 2048, "T": 100}

    # --- CPU: measured execution -----------------------------------------
    a = np.random.rand(128, 128)
    b = np.zeros_like(a)
    jacobi(a, b, 4)
    print("CPU backend executed jacobi(N=128, T=4).")
    cpu = simulate(base, "cpu", syms)
    print(f"CPU model   @ N=2048, T=100: {cpu.time * 1e3:10.2f} ms")

    # --- GPU: transform, inspect CUDA, simulate ---------------------------
    gpu_sdfg = SDFG.from_json(base.to_json())
    apply_transformations(gpu_sdfg, GPUTransform)
    cuda = gpu_sdfg.generate_code("cuda")
    kernel_lines = [ln for ln in cuda.splitlines() if "__global__" in ln]
    print(f"\nGPU: {len(kernel_lines)} CUDA kernels generated; "
          "copies sized from propagated memlets:")
    for ln in cuda.splitlines():
        if "cudaMemcpyAsync" in ln:
            print("   ", ln.strip())
            break
    gpu = simulate(gpu_sdfg, "gpu", syms)
    print(f"P100 model  @ N=2048, T=100: {gpu.time * 1e3:10.2f} ms "
          f"(incl. {gpu.transfer_bytes / 1e6:.0f} MB PCIe)")

    # --- FPGA: transform, inspect HLS, simulate ---------------------------
    fpga_sdfg = SDFG.from_json(base.to_json())
    apply_transformations(fpga_sdfg, FPGATransform)
    hls = fpga_sdfg.generate_code("fpga")
    pragmas = [ln.strip() for ln in hls.splitlines() if "#pragma HLS" in ln]
    print(f"\nFPGA: {len(pragmas)} HLS pragmas; e.g. {pragmas[0]}")
    fpga = simulate(fpga_sdfg, "fpga", syms)
    naive = simulate(fpga_sdfg, "fpga", syms, naive_fpga=True)
    print(f"VCU1525 model @ N=2048, T=100: {fpga.time * 1e3:10.2f} ms pipelined, "
          f"{naive.time * 1e3:.0f} ms naive HLS "
          f"({naive.time / fpga.time:.0f}x gap — the paper's §6.1 story)")

    print("\nSame source program; three targets; zero source changes.")


if __name__ == "__main__":
    main()
