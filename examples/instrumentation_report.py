"""Observability walkthrough: instrument an SDFG, run it on two
backends, read the hot-spot report, and diff naive vs optimized.

The paper's toolchain injects instrumentation into generated code so
measured results feed the optimization loop (§4.4: DIODE displays the
instrumented performance of each element).  This example shows the
whole loop in four steps:

1. tag the GEMM SDFG with ``InstrumentationType.TIMER`` at the SDFG
   level and on every map scope;
2. execute on the generated-Python backend and on the reference
   interpreter — both attach an ``InstrumentationReport`` with the
   *same* event tree, iteration counts, and bytes moved (only the
   wall-clock numbers differ);
3. render the per-element hot-spot table and save the report as JSON
   (the format ``python -m repro.report`` renders and diffs);
4. auto-optimize the SDFG and diff the two reports to see where the
   transformations moved the time.

Run:  python examples/instrumentation_report.py
"""

import numpy as np

from repro.codegen.compiler import compile_sdfg
from repro.instrumentation import (
    InstrumentationType,
    instrument_map_scopes,
    render_diff,
)
from repro.transformations.auto import auto_optimize
from repro.workloads import kernels

SIZE = 96


def instrumented_gemm():
    sdfg = kernels.matmul_sdfg()
    sdfg.instrument = InstrumentationType.TIMER
    tagged = instrument_map_scopes(sdfg, InstrumentationType.TIMER)
    print(f"tagged {tagged} map scope(s) with TIMER instrumentation")
    return sdfg


def main():
    data = kernels.matmul_data(SIZE)
    ref = kernels.matmul_reference(data)

    # --- step 1+2: run the instrumented SDFG on both backends --------
    sdfg = instrumented_gemm()
    reports = {}
    for backend in ("python", "interpreter"):
        run_data = kernels.matmul_data(SIZE)
        compiled = compile_sdfg(sdfg, backend=backend)
        compiled(**run_data)
        np.testing.assert_allclose(run_data["C"], ref)
        reports[backend] = compiled.last_report

    # --- step 3: the hot-spot table ----------------------------------
    print()
    print(reports["python"].render())
    print()
    same = reports["python"].structure() == reports["interpreter"].structure()
    print(f"python and interpreter event trees identical: {same}")
    reports["python"].save("/tmp/gemm_naive_report.json")
    print("saved /tmp/gemm_naive_report.json "
          "(render it with: python -m repro.report /tmp/gemm_naive_report.json)")

    # --- step 4: optimize and diff -----------------------------------
    opt = instrumented_gemm()
    applied = auto_optimize(opt)
    print(f"\nauto_optimize applied {applied} transformation(s)")
    opt_data = kernels.matmul_data(SIZE)
    compiled = compile_sdfg(opt, backend="python")
    compiled(**opt_data)
    np.testing.assert_allclose(opt_data["C"], ref)

    print()
    print(render_diff(reports["python"], compiled.last_report))


if __name__ == "__main__":
    main()
