"""Case Study III (paper §6.4): quantum-transport scattering self-energy.

Computes Σ≷ three ways (Table 2's rows, scaled): OMEN-style per-point
small GEMM library calls, naive interpreted loops, and the data-centric
restructuring of Fig. 18 (layout batching + SBSMM).

Run:  python examples/quantum_transport_sse.py
"""

import time

import numpy as np

from repro.workloads.sse import (
    SSEProblem,
    build_sse_sdfg,
    make_sse_data,
    sse_dace,
    sse_numpy_naive,
    sse_omen,
)


def main():
    p = SSEProblem(nkz=4, ne=12, nqz=4, nw=4, nb=8)
    data = make_sse_data(p)
    print(f"problem: {p} -> {p.flops() / 1e6:.1f} Mflop useful work")

    rows = []
    ref = None
    for label, fn in (
        ("OMEN role (small library GEMMs)", sse_omen),
        ("Python naive (interpreted loops)", sse_numpy_naive),
        ("DaCe (Fig. 18: batch + SBSMM)", sse_dace),
    ):
        t0 = time.perf_counter()
        out = fn(p, data)
        secs = time.perf_counter() - t0
        if ref is None:
            ref = out
        assert np.allclose(out, ref)
        rows.append((label, secs))

    base = rows[0][1]
    print(f"\n{'variant':36s} {'time':>10s} {'speedup vs OMEN':>16s}")
    for label, secs in rows:
        print(f"{label:36s} {secs * 1e3:8.2f}ms {base / secs:15.2f}x")
    print("(paper Table 2: OMEN 1x, numpy 0.03x, DaCe 32.26x)")

    # The same computation as an SDFG, for structural analysis.
    sdfg = build_sse_sdfg(SSEProblem(nkz=2, ne=4, nqz=2, nw=2, nb=4))
    small = make_sse_data(SSEProblem(nkz=2, ne=4, nqz=2, nw=2, nb=4))
    sdfg.compile()(**small)
    print("\nSDFG variant executed; one parallel map with a Sum-WCR memlet "
          f"({sdfg.summary().count('map')} map nodes in the graph).")


if __name__ == "__main__":
    main()
